#include "json/serializer.h"

#include <cstdio>

namespace fsdm::json {

namespace {

void SerializeNode(const Dom& dom, Dom::NodeRef node,
                   const SerializeOptions& options, int indent,
                   std::string* out) {
  auto newline = [&](int level) {
    if (options.pretty) {
      out->push_back('\n');
      out->append(static_cast<size_t>(level) * 2, ' ');
    }
  };
  switch (dom.GetNodeType(node)) {
    case NodeKind::kObject: {
      size_t n = dom.GetFieldCount(node);
      out->push_back('{');
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) out->push_back(',');
        newline(indent + 1);
        std::string_view name;
        Dom::NodeRef child;
        dom.GetFieldAt(node, i, &name, &child);
        AppendQuoted(out, name);
        out->push_back(':');
        if (options.pretty) out->push_back(' ');
        SerializeNode(dom, child, options, indent + 1, out);
      }
      if (n > 0) newline(indent);
      out->push_back('}');
      break;
    }
    case NodeKind::kArray: {
      size_t n = dom.GetArrayLength(node);
      out->push_back('[');
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) out->push_back(',');
        newline(indent + 1);
        SerializeNode(dom, dom.GetArrayElement(node, i), options, indent + 1,
                      out);
      }
      if (n > 0) newline(indent);
      out->push_back(']');
      break;
    }
    case NodeKind::kScalar: {
      Value v;
      Status st = dom.GetScalarValue(node, &v);
      if (!st.ok()) {
        out->append("null");
        return;
      }
      AppendScalar(out, v);
      break;
    }
  }
}

}  // namespace

void AppendQuoted(std::string* out, std::string_view s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendScalar(std::string* out, const Value& value) {
  switch (value.type()) {
    case ScalarType::kNull:
      out->append("null");
      break;
    case ScalarType::kBool:
      out->append(value.AsBool() ? "true" : "false");
      break;
    case ScalarType::kInt64:
      out->append(std::to_string(value.AsInt64()));
      break;
    case ScalarType::kDouble:
      // Shortest round-trip form, via the shared Value formatter.
      out->append(value.ToDisplayString());
      break;
    case ScalarType::kDecimal:
      out->append(value.AsDecimal().ToString());
      break;
    case ScalarType::kString:
      AppendQuoted(out, value.AsString());
      break;
    case ScalarType::kDate: {
      char buf[24];
      snprintf(buf, sizeof(buf), "\"date:%d\"", value.AsDate());
      out->append(buf);
      break;
    }
    case ScalarType::kTimestamp: {
      char buf[40];
      snprintf(buf, sizeof(buf), "\"ts:%lld\"",
               static_cast<long long>(value.AsTimestamp()));
      out->append(buf);
      break;
    }
    case ScalarType::kBinary:
      AppendQuoted(out, value.AsBinary());
      break;
  }
}

std::string Serialize(const Dom& dom, const SerializeOptions& options) {
  std::string out;
  SerializeNode(dom, dom.root(), options, 0, &out);
  return out;
}

std::string Serialize(const JsonNode& node, const SerializeOptions& options) {
  TreeDom dom(&node);
  return Serialize(dom, options);
}

}  // namespace fsdm::json
