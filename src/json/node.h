#ifndef FSDM_JSON_NODE_H_
#define FSDM_JSON_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/value.h"

namespace fsdm::json {

/// The three JSON tree node kinds of the paper's data model (§3.1).
enum class NodeKind : uint8_t { kObject = 0, kArray = 1, kScalar = 2 };

std::string_view NodeKindName(NodeKind kind);

/// Mutable in-memory JSON DOM node. Objects preserve insertion order of
/// fields (serialization fidelity); lookup is linear, which is fine for the
/// build/encode path — query-time navigation goes through OsonDom instead.
class JsonNode {
 public:
  static std::unique_ptr<JsonNode> MakeObject() {
    return std::unique_ptr<JsonNode>(new JsonNode(NodeKind::kObject));
  }
  static std::unique_ptr<JsonNode> MakeArray() {
    return std::unique_ptr<JsonNode>(new JsonNode(NodeKind::kArray));
  }
  static std::unique_ptr<JsonNode> MakeScalar(Value value) {
    auto n = std::unique_ptr<JsonNode>(new JsonNode(NodeKind::kScalar));
    n->scalar_ = std::move(value);
    return n;
  }
  static std::unique_ptr<JsonNode> MakeString(std::string s) {
    return MakeScalar(Value::String(std::move(s)));
  }
  static std::unique_ptr<JsonNode> MakeNumber(int64_t v) {
    return MakeScalar(Value::Int64(v));
  }
  static std::unique_ptr<JsonNode> MakeNumber(double v) {
    return MakeScalar(Value::Double(v));
  }
  static std::unique_ptr<JsonNode> MakeBool(bool v) {
    return MakeScalar(Value::Bool(v));
  }
  static std::unique_ptr<JsonNode> MakeNull() {
    return MakeScalar(Value::Null());
  }

  JsonNode(const JsonNode&) = delete;
  JsonNode& operator=(const JsonNode&) = delete;

  NodeKind kind() const { return kind_; }
  bool is_object() const { return kind_ == NodeKind::kObject; }
  bool is_array() const { return kind_ == NodeKind::kArray; }
  bool is_scalar() const { return kind_ == NodeKind::kScalar; }

  // --- Object API ---
  size_t field_count() const { return fields_.size(); }
  const std::string& field_name(size_t i) const { return fields_[i].first; }
  const JsonNode* field_value(size_t i) const { return fields_[i].second.get(); }
  JsonNode* mutable_field_value(size_t i) { return fields_[i].second.get(); }
  /// nullptr when absent.
  const JsonNode* GetField(std::string_view name) const;
  /// Appends (does not replace duplicates; parser rejects duplicates).
  JsonNode* AddField(std::string name, std::unique_ptr<JsonNode> child);

  // --- Array API ---
  size_t array_size() const { return elements_.size(); }
  const JsonNode* element(size_t i) const { return elements_[i].get(); }
  JsonNode* mutable_element(size_t i) { return elements_[i].get(); }
  JsonNode* Append(std::unique_ptr<JsonNode> child);

  // --- Scalar API ---
  const Value& scalar() const { return scalar_; }
  void set_scalar(Value v) { scalar_ = std::move(v); }

  /// Deep structural + value equality.
  bool Equals(const JsonNode& other) const;

  /// Deep copy.
  std::unique_ptr<JsonNode> Clone() const;

 private:
  explicit JsonNode(NodeKind kind) : kind_(kind) {}

  NodeKind kind_;
  std::vector<std::pair<std::string, std::unique_ptr<JsonNode>>> fields_;
  std::vector<std::unique_ptr<JsonNode>> elements_;
  Value scalar_;
};

}  // namespace fsdm::json

#endif  // FSDM_JSON_NODE_H_
