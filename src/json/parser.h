#ifndef FSDM_JSON_PARSER_H_
#define FSDM_JSON_PARSER_H_

#include <memory>
#include <string_view>

#include "common/status.h"
#include "json/node.h"

namespace fsdm::json {

/// SAX-style event sink for the streaming parser. The paper's TEXT-mode
/// query engine (§5.1) consumes these events; the DOM parser is a builder
/// layered on top of the same event stream.
class JsonEventHandler {
 public:
  virtual ~JsonEventHandler() = default;

  virtual Status OnStartObject() = 0;
  virtual Status OnEndObject() = 0;
  virtual Status OnStartArray() = 0;
  virtual Status OnEndArray() = 0;
  /// Key of the upcoming member value. View valid only during the call.
  virtual Status OnKey(std::string_view key) = 0;
  virtual Status OnString(std::string_view value) = 0;
  /// Raw number text (JSON grammar); handler decides the numeric type.
  virtual Status OnNumber(std::string_view text) = 0;
  virtual Status OnBool(bool value) = 0;
  virtual Status OnNull() = 0;
};

struct ParseOptions {
  /// Maximum container nesting depth before kParseError.
  int max_depth = 512;
  /// Reject objects containing duplicate keys.
  bool reject_duplicate_keys = false;
};

/// Streaming parse: drives `handler` over `text`. Strict RFC 8259 grammar,
/// full \uXXXX escape handling with surrogate pairs.
Status ParseEvents(std::string_view text, JsonEventHandler* handler,
                   const ParseOptions& options = {});

/// DOM parse. Numbers become Value::Int64 when integral and in range,
/// otherwise exact Decimal.
Result<std::unique_ptr<JsonNode>> Parse(std::string_view text,
                                        const ParseOptions& options = {});

/// Converts raw JSON number text into the engine Value (int64 fast path,
/// Decimal otherwise). Shared by the DOM builder and the binary encoders.
Result<Value> NumberTextToValue(std::string_view text);

/// Validates without building a DOM — the IS JSON check constraint path.
Status Validate(std::string_view text, const ParseOptions& options = {});

}  // namespace fsdm::json

#endif  // FSDM_JSON_PARSER_H_
