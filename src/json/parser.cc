#include "json/parser.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace fsdm::json {

namespace {

/// Recursive-descent tokenizer/parser over the raw text. Escaped strings are
/// decoded into a scratch buffer; unescaped strings are passed as views into
/// the input to avoid copies on the hot TEXT-mode path.
class EventParser {
 public:
  EventParser(std::string_view text, JsonEventHandler* handler,
              const ParseOptions& options)
      : p_(text.data()),
        end_(text.data() + text.size()),
        begin_(text.data()),
        handler_(handler),
        options_(options) {}

  Status Run() {
    SkipWs();
    FSDM_RETURN_NOT_OK(ParseValue(0));
    SkipWs();
    if (p_ != end_) return Error("trailing content after JSON value");
    return Status::Ok();
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(p_ - begin_));
  }

  void SkipWs() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  Status ParseValue(int depth) {
    if (depth > options_.max_depth) return Error("nesting too deep");
    if (p_ >= end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        std::string_view s;
        FSDM_RETURN_NOT_OK(ParseString(&s));
        return handler_->OnString(s);
      }
      case 't':
        return ParseLiteral("true", [&] { return handler_->OnBool(true); });
      case 'f':
        return ParseLiteral("false", [&] { return handler_->OnBool(false); });
      case 'n':
        return ParseLiteral("null", [&] { return handler_->OnNull(); });
      default:
        return ParseNumber();
    }
  }

  template <typename Emit>
  Status ParseLiteral(std::string_view lit, Emit emit) {
    if (static_cast<size_t>(end_ - p_) < lit.size() ||
        std::string_view(p_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    p_ += lit.size();
    return emit();
  }

  Status ParseObject(int depth) {
    ++p_;  // '{'
    FSDM_RETURN_NOT_OK(handler_->OnStartObject());
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return handler_->OnEndObject();
    }
    std::vector<std::string> seen_keys;
    while (true) {
      SkipWs();
      if (p_ >= end_ || *p_ != '"') return Error("expected object key");
      std::string_view key;
      FSDM_RETURN_NOT_OK(ParseString(&key));
      if (options_.reject_duplicate_keys) {
        for (const std::string& k : seen_keys) {
          if (k == key) return Error("duplicate object key '" +
                                     std::string(key) + "'");
        }
        seen_keys.emplace_back(key);
      }
      FSDM_RETURN_NOT_OK(handler_->OnKey(key));
      SkipWs();
      if (p_ >= end_ || *p_ != ':') return Error("expected ':'");
      ++p_;
      SkipWs();
      FSDM_RETURN_NOT_OK(ParseValue(depth + 1));
      SkipWs();
      if (p_ >= end_) return Error("unterminated object");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return handler_->OnEndObject();
      }
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(int depth) {
    ++p_;  // '['
    FSDM_RETURN_NOT_OK(handler_->OnStartArray());
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return handler_->OnEndArray();
    }
    while (true) {
      SkipWs();
      FSDM_RETURN_NOT_OK(ParseValue(depth + 1));
      SkipWs();
      if (p_ >= end_) return Error("unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return handler_->OnEndArray();
      }
      return Error("expected ',' or ']'");
    }
  }

  // Decodes a string token. Fast path: no escapes -> view into input.
  Status ParseString(std::string_view* out) {
    ++p_;  // opening quote
    const char* start = p_;
    while (p_ < end_) {
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        *out = std::string_view(start, p_ - start);
        ++p_;
        return Status::Ok();
      }
      if (c == '\\') break;
      if (c < 0x20) return Error("unescaped control character in string");
      ++p_;
    }
    if (p_ >= end_) return Error("unterminated string");

    // Slow path with escapes.
    scratch_.assign(start, p_ - start);
    while (p_ < end_) {
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        ++p_;
        *out = scratch_;
        return Status::Ok();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        scratch_.push_back(static_cast<char>(c));
        ++p_;
        continue;
      }
      ++p_;
      if (p_ >= end_) return Error("unterminated escape");
      switch (*p_) {
        case '"':
          scratch_.push_back('"');
          break;
        case '\\':
          scratch_.push_back('\\');
          break;
        case '/':
          scratch_.push_back('/');
          break;
        case 'b':
          scratch_.push_back('\b');
          break;
        case 'f':
          scratch_.push_back('\f');
          break;
        case 'n':
          scratch_.push_back('\n');
          break;
        case 'r':
          scratch_.push_back('\r');
          break;
        case 't':
          scratch_.push_back('\t');
          break;
        case 'u': {
          // ParseHex4 leaves p_ on the last hex digit; the shared ++p_
          // below then steps past the escape.
          uint32_t cp;
          FSDM_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate; require a following \uXXXX low surrogate.
            if (end_ - p_ < 3 || p_[1] != '\\' || p_[2] != 'u') {
              return Error("unpaired surrogate");
            }
            p_ += 3;  // now on the second 'u'
            uint32_t low;
            FSDM_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp);
          break;
        }
        default:
          return Error("invalid escape character");
      }
      ++p_;
    }
    return Error("unterminated string");
  }

  // Parses 4 hex digits following "\u"; on entry p_ points at 'u'.
  // On exit p_ points at the last hex digit.
  Status ParseHex4(uint32_t* out) {
    if (end_ - p_ < 5) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 1; i <= 4; ++i) {
      char c = p_[i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    p_ += 4;  // now at last hex digit
    *out = v;
    return Status::Ok();
  }

  void AppendUtf8(uint32_t cp) {
    if (cp < 0x80) {
      scratch_.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      scratch_.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      scratch_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      scratch_.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      scratch_.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      scratch_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      scratch_.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      scratch_.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      scratch_.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      scratch_.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseNumber() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    if (p_ >= end_ || *p_ < '0' || *p_ > '9') return Error("invalid number");
    if (*p_ == '0') {
      ++p_;
    } else {
      while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      if (p_ >= end_ || *p_ < '0' || *p_ > '9') {
        return Error("digits required after decimal point");
      }
      while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      if (p_ >= end_ || *p_ < '0' || *p_ > '9') {
        return Error("digits required in exponent");
      }
      while (p_ < end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    return handler_->OnNumber(std::string_view(start, p_ - start));
  }

  const char* p_;
  const char* end_;
  const char* begin_;
  JsonEventHandler* handler_;
  const ParseOptions& options_;
  std::string scratch_;
};

/// Builds a JsonNode tree from the event stream.
class DomBuilder final : public JsonEventHandler {
 public:
  std::unique_ptr<JsonNode> TakeRoot() { return std::move(root_); }

  Status OnStartObject() override {
    return Push(JsonNode::MakeObject());
  }
  Status OnEndObject() override {
    stack_.pop_back();
    return Status::Ok();
  }
  Status OnStartArray() override {
    return Push(JsonNode::MakeArray());
  }
  Status OnEndArray() override {
    stack_.pop_back();
    return Status::Ok();
  }
  Status OnKey(std::string_view key) override {
    pending_key_.assign(key);
    has_key_ = true;
    return Status::Ok();
  }
  Status OnString(std::string_view value) override {
    return Attach(JsonNode::MakeString(std::string(value)));
  }
  Status OnNumber(std::string_view text) override {
    FSDM_ASSIGN_OR_RETURN(Value v, NumberTextToValue(text));
    return Attach(JsonNode::MakeScalar(std::move(v)));
  }
  Status OnBool(bool value) override {
    return Attach(JsonNode::MakeBool(value));
  }
  Status OnNull() override { return Attach(JsonNode::MakeNull()); }

 private:
  // Containers both attach to the parent and become the new top of stack.
  Status Push(std::unique_ptr<JsonNode> node) {
    JsonNode* raw = node.get();
    FSDM_RETURN_NOT_OK(Attach(std::move(node)));
    stack_.push_back(raw);
    return Status::Ok();
  }

  Status Attach(std::unique_ptr<JsonNode> node) {
    if (stack_.empty()) {
      root_ = std::move(node);
      return Status::Ok();
    }
    JsonNode* parent = stack_.back();
    if (parent->is_object()) {
      if (!has_key_) return Status::Internal("object value without key");
      parent->AddField(std::move(pending_key_), std::move(node));
      pending_key_.clear();
      has_key_ = false;
    } else {
      parent->Append(std::move(node));
    }
    return Status::Ok();
  }

  std::unique_ptr<JsonNode> root_;
  std::vector<JsonNode*> stack_;
  std::string pending_key_;
  bool has_key_ = false;
};

/// Discards all events; used by Validate().
class NullHandler final : public JsonEventHandler {
 public:
  Status OnStartObject() override { return Status::Ok(); }
  Status OnEndObject() override { return Status::Ok(); }
  Status OnStartArray() override { return Status::Ok(); }
  Status OnEndArray() override { return Status::Ok(); }
  Status OnKey(std::string_view) override { return Status::Ok(); }
  Status OnString(std::string_view) override { return Status::Ok(); }
  Status OnNumber(std::string_view) override { return Status::Ok(); }
  Status OnBool(bool) override { return Status::Ok(); }
  Status OnNull() override { return Status::Ok(); }
};

}  // namespace

Status ParseEvents(std::string_view text, JsonEventHandler* handler,
                   const ParseOptions& options) {
  return EventParser(text, handler, options).Run();
}

Result<Value> NumberTextToValue(std::string_view text) {
  // Fast path: plain integer that fits int64 (<= 18 digits avoids overflow
  // checks entirely).
  bool plain_int = true;
  size_t digits = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '-' && i == 0) continue;
    if (c < '0' || c > '9') {
      plain_int = false;
      break;
    }
    ++digits;
  }
  if (plain_int && digits <= 18) {
    int64_t v = 0;
    bool neg = text[0] == '-';
    for (char c : text.substr(neg ? 1 : 0)) v = v * 10 + (c - '0');
    return Value::Int64(neg ? -v : v);
  }
  FSDM_ASSIGN_OR_RETURN(Decimal d, Decimal::FromString(text));
  // Keep integral values on the int64 fast path when they fit.
  if (d.IsInteger()) {
    Result<int64_t> i = d.ToInt64();
    if (i.ok()) return Value::Int64(i.value());
  }
  return Value::Dec(std::move(d));
}

Result<std::unique_ptr<JsonNode>> Parse(std::string_view text,
                                        const ParseOptions& options) {
  DomBuilder builder;
  FSDM_RETURN_NOT_OK(ParseEvents(text, &builder, options));
  return builder.TakeRoot();
}

Status Validate(std::string_view text, const ParseOptions& options) {
  NullHandler sink;
  return ParseEvents(text, &sink, options);
}

}  // namespace fsdm::json
