#ifndef FSDM_JSON_SERIALIZER_H_
#define FSDM_JSON_SERIALIZER_H_

#include <string>

#include "json/dom.h"
#include "json/node.h"

namespace fsdm::json {

struct SerializeOptions {
  /// Pretty-print with 2-space indentation; default is the compact form the
  /// paper benchmarks against (all non-significant whitespace removed).
  bool pretty = false;
};

/// Serializes any Dom back to JSON text. Round-trips with Parse() up to
/// number canonicalization (1e2 -> 100).
std::string Serialize(const Dom& dom, const SerializeOptions& options = {});

/// Convenience over a node tree.
std::string Serialize(const JsonNode& node, const SerializeOptions& options = {});

/// Appends the JSON string-literal form of `s` (with quotes and escapes).
void AppendQuoted(std::string* out, std::string_view s);

/// Appends the JSON text for a scalar Value (dates/timestamps/binary render
/// as strings since JSON has no native form for them).
void AppendScalar(std::string* out, const Value& value);

}  // namespace fsdm::json

#endif  // FSDM_JSON_SERIALIZER_H_
