#ifndef FSDM_JSON_DOM_H_
#define FSDM_JSON_DOM_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "common/value.h"
#include "json/node.h"

namespace fsdm::json {

/// Read-only navigation interface over any JSON representation. This is the
/// paper's JSON DOM path-engine contract (§5.1): the SQL/JSON path evaluator
/// is written once against this interface and runs unchanged over
///   - TreeDom  (in-memory node tree built by the text parser),
///   - OsonDom  (zero-copy navigation of serialized OSON bytes),
///   - BsonDom  (serial-scan navigation of BSON bytes).
/// Node handles are opaque 64-bit "addresses"; for OSON they are byte
/// offsets into the tree-node navigation segment, mirroring the paper.
class Dom {
 public:
  using NodeRef = uint64_t;
  static constexpr NodeRef kInvalidNode = ~0ull;

  virtual ~Dom() = default;

  /// Root node of the document.
  virtual NodeRef root() const = 0;

  /// JsonDomGetNodeType(treeNodeAddress).
  virtual NodeKind GetNodeType(NodeRef node) const = 0;

  /// Number of key/value pairs in an object node.
  virtual size_t GetFieldCount(NodeRef object) const = 0;

  /// i-th field (for wildcard steps and full iteration). Name views remain
  /// valid while the Dom is alive.
  virtual void GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                          NodeRef* child) const = 0;

  /// JsonDomGetFieldValue(treeNodeAddress, fieldName): child node for a
  /// field name, or kInvalidNode when the field is absent.
  virtual NodeRef GetFieldValue(NodeRef object,
                                std::string_view name) const = 0;

  /// Number of elements in an array node.
  virtual size_t GetArrayLength(NodeRef array) const = 0;

  /// JsonDomGetArrayElement: positional access, kInvalidNode out of range.
  virtual NodeRef GetArrayElement(NodeRef array, size_t index) const = 0;

  /// Field lookup with query-compile-time hints: `hash` is the field name's
  /// FieldNameHash computed when the path was parsed, and *cached_field_id
  /// is a caller-owned slot remembering the id this name resolved to on the
  /// previous document (the paper's single-row look-back, §4.2.1). The
  /// default implementation ignores the hints; OsonDom overrides it.
  /// Pass cached_field_id = nullptr to disable caching.
  virtual NodeRef GetFieldValueHashed(NodeRef object, std::string_view name,
                                      uint32_t hash,
                                      uint32_t* cached_field_id) const {
    (void)hash;
    (void)cached_field_id;
    return GetFieldValue(object, name);
  }

  /// Scalar type without materializing the value.
  virtual ScalarType GetScalarType(NodeRef scalar) const = 0;

  /// JsonDomGetScalarInfo: materializes the scalar as an engine Value.
  virtual Status GetScalarValue(NodeRef scalar, Value* out) const = 0;
};

/// Dom over a JsonNode tree; NodeRef is the node pointer.
class TreeDom final : public Dom {
 public:
  /// Does not take ownership; `root` must outlive this Dom.
  explicit TreeDom(const JsonNode* root) : root_(root) {}

  NodeRef root() const override { return ToRef(root_); }
  NodeKind GetNodeType(NodeRef node) const override {
    return FromRef(node)->kind();
  }
  size_t GetFieldCount(NodeRef object) const override {
    return FromRef(object)->field_count();
  }
  void GetFieldAt(NodeRef object, size_t i, std::string_view* name,
                  NodeRef* child) const override {
    const JsonNode* obj = FromRef(object);
    *name = obj->field_name(i);
    *child = ToRef(obj->field_value(i));
  }
  NodeRef GetFieldValue(NodeRef object, std::string_view name) const override {
    const JsonNode* child = FromRef(object)->GetField(name);
    return child ? ToRef(child) : kInvalidNode;
  }
  size_t GetArrayLength(NodeRef array) const override {
    return FromRef(array)->array_size();
  }
  NodeRef GetArrayElement(NodeRef array, size_t index) const override {
    const JsonNode* arr = FromRef(array);
    if (index >= arr->array_size()) return kInvalidNode;
    return ToRef(arr->element(index));
  }
  ScalarType GetScalarType(NodeRef scalar) const override {
    return FromRef(scalar)->scalar().type();
  }
  Status GetScalarValue(NodeRef scalar, Value* out) const override {
    *out = FromRef(scalar)->scalar();
    return Status::Ok();
  }

 private:
  static NodeRef ToRef(const JsonNode* node) {
    return reinterpret_cast<NodeRef>(node);
  }
  static const JsonNode* FromRef(NodeRef ref) {
    return reinterpret_cast<const JsonNode*>(ref);
  }

  const JsonNode* root_;
};

}  // namespace fsdm::json

#endif  // FSDM_JSON_DOM_H_
