#ifndef FSDM_JSONPATH_EVALUATOR_H_
#define FSDM_JSONPATH_EVALUATOR_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "json/dom.h"
#include "jsonpath/path.h"

namespace fsdm::jsonpath {

/// DOM-based SQL/JSON path engine (paper §5.1). Works against the abstract
/// json::Dom interface, so the same compiled path runs over TreeDom (text
/// mode), BsonDom and OsonDom. Field steps call Dom::GetFieldValueHashed
/// with the hash precomputed at parse time and the step's cached field id,
/// which OsonDom turns into a dictionary binary search with single-document
/// look-back (§4.2.1).
///
/// Lax-mode semantics: member steps applied to an array iterate its
/// elements (one implicit unwrap level); subscript steps applied to a
/// non-array treat the node as a singleton array.
class PathEvaluator {
 public:
  /// The path must outlive the evaluator. The evaluator may be reused
  /// across documents (and should be — that is what makes the field-id
  /// cache effective).
  explicit PathEvaluator(const PathExpression* path) : path_(path) {}

  /// Calls `visit` for every node the path selects, in document order.
  /// The visitor may set *stop to end the traversal early.
  using Visitor = std::function<Status(json::Dom::NodeRef, bool* stop)>;
  Status Evaluate(const json::Dom& dom, const Visitor& visit) const;

  /// Evaluates with `context` standing in for '$' — JSON_TABLE NESTED PATH
  /// applies column and child row paths relative to the current row node.
  Status EvaluateFrom(const json::Dom& dom, json::Dom::NodeRef context,
                      const Visitor& visit) const;

  /// FirstScalar relative to a context node.
  Result<std::optional<Value>> FirstScalarFrom(const json::Dom& dom,
                                               json::Dom::NodeRef context) const;

  /// JSON_EXISTS: true when the path selects at least one node.
  Result<bool> Exists(const json::Dom& dom) const;

  /// JSON_VALUE: the first selected node's scalar value, or nullopt when
  /// the path selects nothing or selects a non-scalar.
  Result<std::optional<Value>> FirstScalar(const json::Dom& dom) const;

  /// All selected nodes (materialized; for JSON_QUERY and tests).
  Result<std::vector<json::Dom::NodeRef>> Select(const json::Dom& dom) const;

  const PathExpression& path() const { return *path_; }

 private:
  Status EvalSteps(const json::Dom& dom, json::Dom::NodeRef node,
                   const std::vector<Step>& steps, size_t idx,
                   const Visitor& visit, bool* stop) const;
  bool EvalFilter(const json::Dom& dom, json::Dom::NodeRef node,
                  const FilterExpr& expr) const;
  // True if the relative path from `node` yields any node satisfying
  // `pred` (pred == nullptr means mere existence).
  bool AnyRelMatch(const json::Dom& dom, json::Dom::NodeRef node,
                   const std::vector<Step>& rel,
                   const std::function<bool(json::Dom::NodeRef)>& pred) const;

  const PathExpression* path_;
};

}  // namespace fsdm::jsonpath

#endif  // FSDM_JSONPATH_EVALUATOR_H_
