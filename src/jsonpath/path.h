#ifndef FSDM_JSONPATH_PATH_H_
#define FSDM_JSONPATH_PATH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace fsdm::jsonpath {

/// One step of a SQL/JSON path. The grammar implemented here is the subset
/// the paper's evaluation exercises plus the usual conveniences:
///
///   path      := '$' step*
///   step      := '.' name | '."..."' | '.*' | '..' name
///              | '[' subscript (',' subscript)* ']' | '[*]'
///              | '?(' filter ')'
///   subscript := int | int 'to' int
///   filter    := or; or := and ('||' and)*; and := prim ('&&' prim)*
///   prim      := '!' prim | '(' or ')' | 'exists' '(' relpath ')'
///              | relpath cmp literal
///   relpath   := '@' ('.' name | '[' int ']' | '[*]')*
///   cmp       := '==' | '!=' | '<' | '<=' | '>' | '>=' ;
///                ('=' accepted as '==')
///
/// Member steps follow Oracle's lax-mode semantics: applied to an array they
/// iterate its elements (one level of implicit unwrapping). This matches the
/// paper's DataGuide path vocabulary, where "$.purchaseOrder.items.name" has
/// type "array of string".
enum class StepKind : uint8_t {
  kMember,          ///< .name
  kMemberWildcard,  ///< .*
  kDescendant,      ///< ..name — all descendants with the field name
  kArraySubscript,  ///< [0], [1 to 3], [0, 2]
  kArrayWildcard,   ///< [*]
  kFilter,          ///< ?( ... ) predicate on the current node
};

struct FilterExpr;

/// Inclusive element range; a single index has lo == hi.
struct ArrayRange {
  int64_t lo = 0;
  int64_t hi = 0;
};

struct Step {
  StepKind kind = StepKind::kMember;
  std::string name;     // kMember/kDescendant
  uint32_t name_hash = 0;  // precomputed at parse (query-compile) time
  std::vector<ArrayRange> ranges;       // kArraySubscript
  std::shared_ptr<const FilterExpr> filter;  // kFilter

  /// Per-step field-id resolution cache for OSON navigation (§4.2.1's
  /// single-row look-back): remembers the id this name resolved to on the
  /// previous document. Mutable execution state, not part of the compiled
  /// path's identity.
  mutable uint32_t cached_field_id = kNoCachedId;
  static constexpr uint32_t kNoCachedId = ~0u;
};

/// Filter predicate AST.
struct FilterExpr {
  enum class Kind : uint8_t {
    kAnd,
    kOr,
    kNot,
    kExists,
    kCompare,
  };
  enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

  Kind kind = Kind::kExists;
  std::vector<std::shared_ptr<const FilterExpr>> children;  // and/or/not
  std::vector<Step> rel_path;  // exists/compare: steps after '@'
  CompareOp op = CompareOp::kEq;
  Value literal;  // compare RHS
};

/// A compiled SQL/JSON path expression. Parsing happens once per query
/// (compile time); evaluation reuses the compiled form across documents.
class PathExpression {
 public:
  static Result<PathExpression> Parse(std::string_view text);

  const std::vector<Step>& steps() const { return steps_; }

  /// Canonical text form ("$.a[*].b").
  std::string ToString() const;

  /// True when every step is a plain member step — such a path addresses at
  /// most one node in any document (the paper's "singleton scalar" notion
  /// used for virtual columns, §3.3.1).
  bool IsSingleton() const;

 private:
  std::vector<Step> steps_;
};

}  // namespace fsdm::jsonpath

#endif  // FSDM_JSONPATH_PATH_H_
