#ifndef FSDM_JSONPATH_STREAMING_H_
#define FSDM_JSONPATH_STREAMING_H_

#include <optional>

#include "common/status.h"
#include "common/value.h"
#include "jsonpath/path.h"

namespace fsdm::jsonpath {

/// Streaming SQL/JSON evaluation over raw text (§5.1): simple operators run
/// directly on the parser's event stream, with no DOM materialization at
/// all. Supported paths are chains of member steps (lax array unwrapping
/// included), optionally ending in a single [*] — the JSON_VALUE /
/// JSON_EXISTS shapes. Richer paths (filters, subscripts, descendants,
/// mid-path wildcards) return kUnsupported, and callers fall back to the
/// DOM engine — mirroring the paper's split between the streaming engine
/// and the DOM-based engine for complex operators.
class StreamingPathEngine {
 public:
  /// True when the path's shape is streamable by this engine.
  static bool CanStream(const PathExpression& path);

  /// JSON_EXISTS over text: stops parsing at the first match when
  /// possible. kUnsupported when the path isn't streamable; kParseError on
  /// malformed text.
  static Result<bool> Exists(std::string_view json_text,
                             const PathExpression& path);

  /// JSON_VALUE over text: the first scalar the path selects, nullopt when
  /// the path misses or selects a container.
  static Result<std::optional<Value>> FirstScalar(std::string_view json_text,
                                                  const PathExpression& path);
};

}  // namespace fsdm::jsonpath

#endif  // FSDM_JSONPATH_STREAMING_H_
