#include "jsonpath/evaluator.h"

namespace fsdm::jsonpath {

namespace {

using json::Dom;
using json::NodeKind;

}  // namespace

Status PathEvaluator::Evaluate(const Dom& dom, const Visitor& visit) const {
  bool stop = false;
  return EvalSteps(dom, dom.root(), path_->steps(), 0, visit, &stop);
}

Status PathEvaluator::EvaluateFrom(const Dom& dom, Dom::NodeRef context,
                                   const Visitor& visit) const {
  bool stop = false;
  return EvalSteps(dom, context, path_->steps(), 0, visit, &stop);
}

Result<std::optional<Value>> PathEvaluator::FirstScalarFrom(
    const Dom& dom, Dom::NodeRef context) const {
  std::optional<Value> out;
  Status st = EvaluateFrom(dom, context, [&](Dom::NodeRef node, bool* stop) {
    *stop = true;
    if (dom.GetNodeType(node) != NodeKind::kScalar) return Status::Ok();
    Value v;
    FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
    out = std::move(v);
    return Status::Ok();
  });
  FSDM_RETURN_NOT_OK(st);
  return out;
}

Status PathEvaluator::EvalSteps(const Dom& dom, Dom::NodeRef node,
                                const std::vector<Step>& steps, size_t idx,
                                const Visitor& visit, bool* stop) const {
  if (*stop) return Status::Ok();
  if (idx == steps.size()) {
    return visit(node, stop);
  }
  const Step& step = steps[idx];
  NodeKind kind = dom.GetNodeType(node);

  switch (step.kind) {
    case StepKind::kMember: {
      // Lax mode: unwrap one array level.
      if (kind == NodeKind::kArray) {
        size_t n = dom.GetArrayLength(node);
        for (size_t i = 0; i < n && !*stop; ++i) {
          Dom::NodeRef el = dom.GetArrayElement(node, i);
          if (dom.GetNodeType(el) != NodeKind::kObject) continue;
          Dom::NodeRef child = dom.GetFieldValueHashed(
              el, step.name, step.name_hash, &step.cached_field_id);
          if (child == Dom::kInvalidNode) continue;
          FSDM_RETURN_NOT_OK(
              EvalSteps(dom, child, steps, idx + 1, visit, stop));
        }
        return Status::Ok();
      }
      if (kind != NodeKind::kObject) return Status::Ok();
      Dom::NodeRef child = dom.GetFieldValueHashed(
          node, step.name, step.name_hash, &step.cached_field_id);
      if (child == Dom::kInvalidNode) return Status::Ok();
      return EvalSteps(dom, child, steps, idx + 1, visit, stop);
    }

    case StepKind::kMemberWildcard: {
      if (kind == NodeKind::kArray) {
        size_t n = dom.GetArrayLength(node);
        for (size_t i = 0; i < n && !*stop; ++i) {
          Dom::NodeRef el = dom.GetArrayElement(node, i);
          if (dom.GetNodeType(el) != NodeKind::kObject) continue;
          size_t fields = dom.GetFieldCount(el);
          for (size_t f = 0; f < fields && !*stop; ++f) {
            std::string_view name;
            Dom::NodeRef child;
            dom.GetFieldAt(el, f, &name, &child);
            FSDM_RETURN_NOT_OK(
                EvalSteps(dom, child, steps, idx + 1, visit, stop));
          }
        }
        return Status::Ok();
      }
      if (kind != NodeKind::kObject) return Status::Ok();
      size_t fields = dom.GetFieldCount(node);
      for (size_t f = 0; f < fields && !*stop; ++f) {
        std::string_view name;
        Dom::NodeRef child;
        dom.GetFieldAt(node, f, &name, &child);
        FSDM_RETURN_NOT_OK(EvalSteps(dom, child, steps, idx + 1, visit, stop));
      }
      return Status::Ok();
    }

    case StepKind::kDescendant: {
      // DFS over the whole subtree; every field with the name matches.
      struct Walker {
        const Dom& dom;
        const PathEvaluator* self;
        const std::vector<Step>& steps;
        size_t idx;
        const Visitor& visit;
        bool* stop;
        const Step& step;

        Status Walk(Dom::NodeRef n) {
          if (*stop) return Status::Ok();
          NodeKind k = dom.GetNodeType(n);
          if (k == NodeKind::kObject) {
            Dom::NodeRef hit = dom.GetFieldValueHashed(
                n, step.name, step.name_hash, &step.cached_field_id);
            if (hit != Dom::kInvalidNode) {
              FSDM_RETURN_NOT_OK(
                  self->EvalSteps(dom, hit, steps, idx + 1, visit, stop));
            }
            size_t fields = dom.GetFieldCount(n);
            for (size_t f = 0; f < fields && !*stop; ++f) {
              std::string_view name;
              Dom::NodeRef child;
              dom.GetFieldAt(n, f, &name, &child);
              FSDM_RETURN_NOT_OK(Walk(child));
            }
          } else if (k == NodeKind::kArray) {
            size_t n_el = dom.GetArrayLength(n);
            for (size_t i = 0; i < n_el && !*stop; ++i) {
              FSDM_RETURN_NOT_OK(Walk(dom.GetArrayElement(n, i)));
            }
          }
          return Status::Ok();
        }
      };
      Walker w{dom, this, steps, idx, visit, stop, step};
      return w.Walk(node);
    }

    case StepKind::kArraySubscript: {
      // Lax mode: a non-array is a singleton array.
      if (kind != NodeKind::kArray) {
        for (const ArrayRange& r : step.ranges) {
          if (r.lo == 0) {
            return EvalSteps(dom, node, steps, idx + 1, visit, stop);
          }
        }
        return Status::Ok();
      }
      size_t n = dom.GetArrayLength(node);
      for (const ArrayRange& r : step.ranges) {
        for (int64_t i = r.lo; i <= r.hi && !*stop; ++i) {
          if (i < 0 || static_cast<size_t>(i) >= n) break;
          FSDM_RETURN_NOT_OK(EvalSteps(dom, dom.GetArrayElement(node, i),
                                       steps, idx + 1, visit, stop));
        }
      }
      return Status::Ok();
    }

    case StepKind::kArrayWildcard: {
      if (kind != NodeKind::kArray) {
        return EvalSteps(dom, node, steps, idx + 1, visit, stop);
      }
      size_t n = dom.GetArrayLength(node);
      for (size_t i = 0; i < n && !*stop; ++i) {
        FSDM_RETURN_NOT_OK(EvalSteps(dom, dom.GetArrayElement(node, i), steps,
                                     idx + 1, visit, stop));
      }
      return Status::Ok();
    }

    case StepKind::kFilter: {
      // Lax mode: filter an array by filtering its elements.
      if (kind == NodeKind::kArray) {
        size_t n = dom.GetArrayLength(node);
        for (size_t i = 0; i < n && !*stop; ++i) {
          Dom::NodeRef el = dom.GetArrayElement(node, i);
          if (EvalFilter(dom, el, *step.filter)) {
            FSDM_RETURN_NOT_OK(
                EvalSteps(dom, el, steps, idx + 1, visit, stop));
          }
        }
        return Status::Ok();
      }
      if (EvalFilter(dom, node, *step.filter)) {
        return EvalSteps(dom, node, steps, idx + 1, visit, stop);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled step kind");
}

bool PathEvaluator::AnyRelMatch(
    const Dom& dom, Dom::NodeRef node, const std::vector<Step>& rel,
    const std::function<bool(Dom::NodeRef)>& pred) const {
  bool found = false;
  Visitor visitor = [&](Dom::NodeRef n, bool* stop) {
    if (pred == nullptr || pred(n)) {
      found = true;
      *stop = true;
    }
    return Status::Ok();
  };
  bool stop = false;
  Status st = EvalSteps(dom, node, rel, 0, visitor, &stop);
  return st.ok() && found;
}

bool PathEvaluator::EvalFilter(const Dom& dom, Dom::NodeRef node,
                               const FilterExpr& expr) const {
  switch (expr.kind) {
    case FilterExpr::Kind::kAnd:
      for (const auto& child : expr.children) {
        if (!EvalFilter(dom, node, *child)) return false;
      }
      return true;
    case FilterExpr::Kind::kOr:
      for (const auto& child : expr.children) {
        if (EvalFilter(dom, node, *child)) return true;
      }
      return false;
    case FilterExpr::Kind::kNot:
      return !EvalFilter(dom, node, *expr.children[0]);
    case FilterExpr::Kind::kExists:
      return AnyRelMatch(dom, node, expr.rel_path, nullptr);
    case FilterExpr::Kind::kCompare: {
      // "Exists some" semantics: true if any selected scalar satisfies the
      // comparison; type-mismatched comparisons are false, not errors.
      return AnyRelMatch(dom, node, expr.rel_path, [&](Dom::NodeRef n) {
        if (dom.GetNodeType(n) != NodeKind::kScalar) return false;
        Value v;
        if (!dom.GetScalarValue(n, &v).ok()) return false;
        if (v.is_null() || expr.literal.is_null()) {
          // Only == null / != null are meaningful.
          bool equal = v.is_null() && expr.literal.is_null();
          if (expr.op == FilterExpr::CompareOp::kEq) return equal;
          if (expr.op == FilterExpr::CompareOp::kNe) return !equal;
          return false;
        }
        Result<int> cmp = v.CompareTo(expr.literal);
        if (!cmp.ok()) return false;
        switch (expr.op) {
          case FilterExpr::CompareOp::kEq:
            return cmp.value() == 0;
          case FilterExpr::CompareOp::kNe:
            return cmp.value() != 0;
          case FilterExpr::CompareOp::kLt:
            return cmp.value() < 0;
          case FilterExpr::CompareOp::kLe:
            return cmp.value() <= 0;
          case FilterExpr::CompareOp::kGt:
            return cmp.value() > 0;
          case FilterExpr::CompareOp::kGe:
            return cmp.value() >= 0;
        }
        return false;
      });
    }
  }
  return false;
}

Result<bool> PathEvaluator::Exists(const Dom& dom) const {
  bool found = false;
  Status st = Evaluate(dom, [&](Dom::NodeRef, bool* stop) {
    found = true;
    *stop = true;
    return Status::Ok();
  });
  FSDM_RETURN_NOT_OK(st);
  return found;
}

Result<std::optional<Value>> PathEvaluator::FirstScalar(const Dom& dom) const {
  std::optional<Value> out;
  Status inner = Status::Ok();
  Status st = Evaluate(dom, [&](Dom::NodeRef node, bool* stop) {
    *stop = true;
    if (dom.GetNodeType(node) != NodeKind::kScalar) return Status::Ok();
    Value v;
    FSDM_RETURN_NOT_OK(dom.GetScalarValue(node, &v));
    out = std::move(v);
    return Status::Ok();
  });
  FSDM_RETURN_NOT_OK(st);
  FSDM_RETURN_NOT_OK(inner);
  return out;
}

Result<std::vector<Dom::NodeRef>> PathEvaluator::Select(const Dom& dom) const {
  std::vector<Dom::NodeRef> nodes;
  Status st = Evaluate(dom, [&](Dom::NodeRef node, bool*) {
    nodes.push_back(node);
    return Status::Ok();
  });
  FSDM_RETURN_NOT_OK(st);
  return nodes;
}

}  // namespace fsdm::jsonpath
