#include "jsonpath/streaming.h"

#include <vector>

#include "json/parser.h"

namespace fsdm::jsonpath {

namespace {

// Handler-internal sentinel: aborts the parse once the answer is known.
constexpr const char* kDoneMarker = "__fsdm_stream_done__";

bool IsDone(const Status& st) {
  return st.code() == StatusCode::kInternal && st.message() == kDoneMarker;
}

constexpr int kDead = -1;

/// Event-stream matcher for member-only paths (optional trailing [*]).
/// Mirrors the DOM engine's lax semantics: member steps unwrap one array
/// level (object elements inherit the match progress; nested arrays and
/// scalar elements go dead), and a trailing [*] on a non-array selects the
/// node itself.
class Matcher final : public json::JsonEventHandler {
 public:
  Matcher(const PathExpression& path, bool want_value)
      : want_value_(want_value) {
    for (const Step& s : path.steps()) {
      if (s.kind == StepKind::kMember) {
        names_.push_back(s.name);
      } else {
        trailing_star_ = true;  // validated by CanStream
      }
    }
    k_ = static_cast<int>(names_.size());
  }

  bool found() const { return found_; }
  const std::optional<Value>& value() const { return value_; }

  Status OnStartObject() override {
    int p = TakeValueProgress();
    // A selected object: the node itself is the result (a container).
    if (IsResult(p, /*is_array=*/false)) return Emit(std::nullopt);
    frames_.push_back(Frame{/*is_object=*/true, /*progress=*/p,
                            /*emit_elements=*/false});
    return Status::Ok();
  }

  Status OnEndObject() override {
    frames_.pop_back();
    return Status::Ok();
  }

  Status OnStartArray() override {
    int p = TakeValueProgress();
    bool emit_elements = false;
    if (p == k_) {
      if (trailing_star_) {
        // Selected array + [*]: its elements are the results.
        emit_elements = true;
      } else {
        // Selected array without [*]: the array itself is the result.
        return Emit(std::nullopt);
      }
    }
    frames_.push_back(Frame{/*is_object=*/false, p, emit_elements});
    return Status::Ok();
  }

  Status OnEndArray() override {
    frames_.pop_back();
    return Status::Ok();
  }

  Status OnKey(std::string_view key) override {
    const Frame& frame = frames_.back();
    if (frame.progress >= 0 && frame.progress < k_ &&
        key == names_[frame.progress]) {
      next_progress_ = frame.progress + 1;
    } else {
      next_progress_ = kDead;
    }
    return Status::Ok();
  }

  Status OnString(std::string_view s) override {
    return ScalarEvent([&] { return Value::String(std::string(s)); });
  }
  Status OnNumber(std::string_view text) override {
    return ScalarEvent([&]() -> Value {
      Result<Value> v = json::NumberTextToValue(text);
      return v.ok() ? v.MoveValue() : Value::Null();
    });
  }
  Status OnBool(bool b) override {
    return ScalarEvent([&] { return Value::Bool(b); });
  }
  Status OnNull() override {
    return ScalarEvent([] { return Value::Null(); });
  }

 private:
  struct Frame {
    bool is_object;
    int progress;        // match progress for members/elements within
    bool emit_elements;  // selected array with trailing [*]
  };

  // Progress assigned to the value event happening now, derived from the
  // enclosing frame (or the root).
  int TakeValueProgress() {
    if (frames_.empty()) return 0;  // root value
    const Frame& frame = frames_.back();
    if (frame.is_object) {
      int p = next_progress_;
      next_progress_ = kDead;
      return p;
    }
    // Array element.
    if (frame.emit_elements) return kEmitElement;
    return frame.progress;  // lax unwrap: inherited by object elements;
                            // scalar/array element cases handled by caller
  }

  // Is a node with progress p (possibly kEmitElement) a result?
  bool IsResult(int p, bool is_array) {
    if (p == kEmitElement) return true;
    if (p != k_) return false;
    if (!trailing_star_) return true;
    // Trailing [*]: arrays defer to their elements; handled in
    // OnStartArray. Non-arrays select the node itself (lax).
    return !is_array;
  }

  template <typename MakeValue>
  Status ScalarEvent(const MakeValue& make_value) {
    int p = TakeValueProgress();
    // A fully-matched scalar is a result; a trailing [*] on a scalar also
    // selects the scalar itself (lax singleton treatment).
    if (p == kEmitElement || p == k_) return Emit(make_value());
    return Status::Ok();
  }

  Status Emit(std::optional<Value> v) {
    found_ = true;
    if (want_value_) value_ = std::move(v);
    return Status::Internal(kDoneMarker);
  }

  static constexpr int kEmitElement = -2;

  std::vector<std::string> names_;
  int k_ = 0;
  bool trailing_star_ = false;
  bool want_value_;
  std::vector<Frame> frames_;
  int next_progress_ = kDead;
  bool found_ = false;
  std::optional<Value> value_;
};

}  // namespace

bool StreamingPathEngine::CanStream(const PathExpression& path) {
  const std::vector<Step>& steps = path.steps();
  for (size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].kind == StepKind::kMember) continue;
    if (steps[i].kind == StepKind::kArrayWildcard && i + 1 == steps.size()) {
      continue;  // single trailing [*]
    }
    return false;
  }
  return true;
}

namespace {

Result<Matcher> RunMatcher(std::string_view json_text,
                           const PathExpression& path, bool want_value) {
  if (!StreamingPathEngine::CanStream(path)) {
    return Status::Unsupported("path not streamable: " + path.ToString());
  }
  Matcher matcher(path, want_value);
  Status st = json::ParseEvents(json_text, &matcher);
  if (!st.ok() && !IsDone(st)) return st;
  return matcher;
}

}  // namespace

Result<bool> StreamingPathEngine::Exists(std::string_view json_text,
                                         const PathExpression& path) {
  FSDM_ASSIGN_OR_RETURN(Matcher matcher,
                        RunMatcher(json_text, path, /*want_value=*/false));
  return matcher.found();
}

Result<std::optional<Value>> StreamingPathEngine::FirstScalar(
    std::string_view json_text, const PathExpression& path) {
  FSDM_ASSIGN_OR_RETURN(Matcher matcher,
                        RunMatcher(json_text, path, /*want_value=*/true));
  if (!matcher.found()) return std::optional<Value>(std::nullopt);
  return matcher.value();
}

}  // namespace fsdm::jsonpath
