#include <cctype>

#include "common/hash.h"
#include "jsonpath/path.h"

namespace fsdm::jsonpath {

namespace {

/// Recursive-descent parser for the path grammar in path.h.
class Parser {
 public:
  explicit Parser(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()), begin_(text.data()) {}

  Status Run(std::vector<Step>* steps) {
    SkipWs();
    if (p_ >= end_ || *p_ != '$') return Error("path must start with '$'");
    ++p_;
    FSDM_RETURN_NOT_OK(ParseSteps(steps, /*relative=*/false));
    SkipWs();
    if (p_ != end_) return Error("trailing characters in path");
    return Status::Ok();
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError("path: " + msg + " at offset " +
                              std::to_string(p_ - begin_));
  }

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t')) ++p_;
  }

  bool NameChar(char c) const {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || static_cast<unsigned char>(c) >= 0x80;
  }

  Status ParseName(std::string* out) {
    SkipWs();
    if (p_ < end_ && *p_ == '"') {
      ++p_;
      out->clear();
      while (p_ < end_ && *p_ != '"') {
        if (*p_ == '\\' && p_ + 1 < end_) ++p_;
        out->push_back(*p_++);
      }
      if (p_ >= end_) return Error("unterminated quoted name");
      ++p_;
      if (out->empty()) return Error("empty quoted name");
      return Status::Ok();
    }
    const char* start = p_;
    while (p_ < end_ && NameChar(*p_)) ++p_;
    if (p_ == start) return Error("expected field name");
    out->assign(start, p_ - start);
    return Status::Ok();
  }

  Status ParseInt(int64_t* out) {
    SkipWs();
    bool neg = false;
    if (p_ < end_ && *p_ == '-') {
      neg = true;
      ++p_;
    }
    if (p_ >= end_ || !std::isdigit(static_cast<unsigned char>(*p_))) {
      return Error("expected integer");
    }
    int64_t v = 0;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) {
      v = v * 10 + (*p_ - '0');
      ++p_;
    }
    *out = neg ? -v : v;
    return Status::Ok();
  }

  // `relative` restricts the grammar for '@' paths inside filters (no
  // nested filters / descendants).
  Status ParseSteps(std::vector<Step>* steps, bool relative) {
    while (true) {
      SkipWs();
      if (p_ >= end_) return Status::Ok();
      if (*p_ == '.') {
        ++p_;
        if (p_ < end_ && *p_ == '.') {
          if (relative) return Error("descendant step not allowed after '@'");
          ++p_;
          Step s;
          s.kind = StepKind::kDescendant;
          FSDM_RETURN_NOT_OK(ParseName(&s.name));
          s.name_hash = FieldNameHash(s.name);
          steps->push_back(std::move(s));
          continue;
        }
        if (p_ < end_ && *p_ == '*') {
          ++p_;
          Step s;
          s.kind = StepKind::kMemberWildcard;
          steps->push_back(std::move(s));
          continue;
        }
        Step s;
        s.kind = StepKind::kMember;
        FSDM_RETURN_NOT_OK(ParseName(&s.name));
        s.name_hash = FieldNameHash(s.name);
        steps->push_back(std::move(s));
        continue;
      }
      if (*p_ == '[') {
        ++p_;
        SkipWs();
        if (p_ < end_ && *p_ == '*') {
          ++p_;
          SkipWs();
          if (p_ >= end_ || *p_ != ']') return Error("expected ']'");
          ++p_;
          Step s;
          s.kind = StepKind::kArrayWildcard;
          steps->push_back(std::move(s));
          continue;
        }
        Step s;
        s.kind = StepKind::kArraySubscript;
        while (true) {
          ArrayRange r;
          FSDM_RETURN_NOT_OK(ParseInt(&r.lo));
          r.hi = r.lo;
          SkipWs();
          if (end_ - p_ >= 2 && p_[0] == 't' && p_[1] == 'o') {
            p_ += 2;
            FSDM_RETURN_NOT_OK(ParseInt(&r.hi));
            SkipWs();
          }
          if (r.lo < 0 || r.hi < r.lo) return Error("invalid subscript range");
          s.ranges.push_back(r);
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != ']') return Error("expected ']'");
        ++p_;
        steps->push_back(std::move(s));
        continue;
      }
      if (*p_ == '?') {
        if (relative) return Error("nested filter not allowed");
        ++p_;
        SkipWs();
        if (p_ >= end_ || *p_ != '(') return Error("expected '(' after '?'");
        ++p_;
        Step s;
        s.kind = StepKind::kFilter;
        std::shared_ptr<const FilterExpr> expr;
        FSDM_RETURN_NOT_OK(ParseOr(&expr));
        SkipWs();
        if (p_ >= end_ || *p_ != ')') return Error("expected ')'");
        ++p_;
        s.filter = std::move(expr);
        steps->push_back(std::move(s));
        continue;
      }
      return Status::Ok();  // caller checks for trailing characters
    }
  }

  Status ParseOr(std::shared_ptr<const FilterExpr>* out) {
    std::shared_ptr<const FilterExpr> left;
    FSDM_RETURN_NOT_OK(ParseAnd(&left));
    SkipWs();
    if (end_ - p_ >= 2 && p_[0] == '|' && p_[1] == '|') {
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kOr;
      node->children.push_back(std::move(left));
      while (end_ - p_ >= 2 && p_[0] == '|' && p_[1] == '|') {
        p_ += 2;
        std::shared_ptr<const FilterExpr> right;
        FSDM_RETURN_NOT_OK(ParseAnd(&right));
        node->children.push_back(std::move(right));
        SkipWs();
      }
      *out = std::move(node);
      return Status::Ok();
    }
    *out = std::move(left);
    return Status::Ok();
  }

  Status ParseAnd(std::shared_ptr<const FilterExpr>* out) {
    std::shared_ptr<const FilterExpr> left;
    FSDM_RETURN_NOT_OK(ParsePrimary(&left));
    SkipWs();
    if (end_ - p_ >= 2 && p_[0] == '&' && p_[1] == '&') {
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kAnd;
      node->children.push_back(std::move(left));
      while (end_ - p_ >= 2 && p_[0] == '&' && p_[1] == '&') {
        p_ += 2;
        std::shared_ptr<const FilterExpr> right;
        FSDM_RETURN_NOT_OK(ParsePrimary(&right));
        node->children.push_back(std::move(right));
        SkipWs();
      }
      *out = std::move(node);
      return Status::Ok();
    }
    *out = std::move(left);
    return Status::Ok();
  }

  Status ParsePrimary(std::shared_ptr<const FilterExpr>* out) {
    SkipWs();
    if (p_ >= end_) return Error("unexpected end of filter");
    if (*p_ == '!') {
      ++p_;
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kNot;
      std::shared_ptr<const FilterExpr> child;
      FSDM_RETURN_NOT_OK(ParsePrimary(&child));
      node->children.push_back(std::move(child));
      *out = std::move(node);
      return Status::Ok();
    }
    if (*p_ == '(') {
      ++p_;
      FSDM_RETURN_NOT_OK(ParseOr(out));
      SkipWs();
      if (p_ >= end_ || *p_ != ')') return Error("expected ')'");
      ++p_;
      return Status::Ok();
    }
    if (end_ - p_ >= 6 && std::string_view(p_, 6) == "exists") {
      p_ += 6;
      SkipWs();
      if (p_ >= end_ || *p_ != '(') return Error("expected '(' after exists");
      ++p_;
      auto node = std::make_shared<FilterExpr>();
      node->kind = FilterExpr::Kind::kExists;
      FSDM_RETURN_NOT_OK(ParseRelPath(&node->rel_path));
      SkipWs();
      if (p_ >= end_ || *p_ != ')') return Error("expected ')'");
      ++p_;
      *out = std::move(node);
      return Status::Ok();
    }
    // Comparison: @relpath op literal.
    auto node = std::make_shared<FilterExpr>();
    node->kind = FilterExpr::Kind::kCompare;
    FSDM_RETURN_NOT_OK(ParseRelPath(&node->rel_path));
    SkipWs();
    FSDM_RETURN_NOT_OK(ParseCompareOp(&node->op));
    FSDM_RETURN_NOT_OK(ParseLiteral(&node->literal));
    *out = std::move(node);
    return Status::Ok();
  }

  Status ParseRelPath(std::vector<Step>* steps) {
    SkipWs();
    if (p_ >= end_ || *p_ != '@') return Error("expected '@'");
    ++p_;
    return ParseSteps(steps, /*relative=*/true);
  }

  Status ParseCompareOp(FilterExpr::CompareOp* op) {
    SkipWs();
    if (p_ >= end_) return Error("expected comparison operator");
    if (*p_ == '=') {
      ++p_;
      if (p_ < end_ && *p_ == '=') ++p_;
      *op = FilterExpr::CompareOp::kEq;
      return Status::Ok();
    }
    if (*p_ == '!') {
      ++p_;
      if (p_ >= end_ || *p_ != '=') return Error("expected '=' after '!'");
      ++p_;
      *op = FilterExpr::CompareOp::kNe;
      return Status::Ok();
    }
    if (*p_ == '<') {
      ++p_;
      if (p_ < end_ && *p_ == '=') {
        ++p_;
        *op = FilterExpr::CompareOp::kLe;
      } else {
        *op = FilterExpr::CompareOp::kLt;
      }
      return Status::Ok();
    }
    if (*p_ == '>') {
      ++p_;
      if (p_ < end_ && *p_ == '=') {
        ++p_;
        *op = FilterExpr::CompareOp::kGe;
      } else {
        *op = FilterExpr::CompareOp::kGt;
      }
      return Status::Ok();
    }
    return Error("expected comparison operator");
  }

  Status ParseLiteral(Value* out) {
    SkipWs();
    if (p_ >= end_) return Error("expected literal");
    if (*p_ == '"' || *p_ == '\'') {
      char quote = *p_++;
      std::string s;
      while (p_ < end_ && *p_ != quote) {
        if (*p_ == '\\' && p_ + 1 < end_) ++p_;
        s.push_back(*p_++);
      }
      if (p_ >= end_) return Error("unterminated string literal");
      ++p_;
      *out = Value::String(std::move(s));
      return Status::Ok();
    }
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
      p_ += 4;
      *out = Value::Bool(true);
      return Status::Ok();
    }
    if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
      p_ += 5;
      *out = Value::Bool(false);
      return Status::Ok();
    }
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "null") {
      p_ += 4;
      *out = Value::Null();
      return Status::Ok();
    }
    // Number literal.
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Error("expected literal");
    Result<Decimal> d = Decimal::FromString(std::string_view(start, p_ - start));
    if (!d.ok()) return Error("bad number literal");
    if (d.value().IsInteger()) {
      Result<int64_t> i = d.value().ToInt64();
      if (i.ok()) {
        *out = Value::Int64(i.value());
        return Status::Ok();
      }
    }
    *out = Value::Dec(d.MoveValue());
    return Status::Ok();
  }

  const char* p_;
  const char* end_;
  const char* begin_;
};

std::string StepToString(const Step& step);

std::string FilterToString(const FilterExpr& f) {
  auto rel = [](const std::vector<Step>& steps) {
    std::string s = "@";
    for (const Step& st : steps) s += StepToString(st);
    return s;
  };
  switch (f.kind) {
    case FilterExpr::Kind::kAnd:
    case FilterExpr::Kind::kOr: {
      std::string s = "(";
      const char* sep = f.kind == FilterExpr::Kind::kAnd ? " && " : " || ";
      for (size_t i = 0; i < f.children.size(); ++i) {
        if (i) s += sep;
        s += FilterToString(*f.children[i]);
      }
      s += ")";
      return s;
    }
    case FilterExpr::Kind::kNot:
      return "!" + FilterToString(*f.children[0]);
    case FilterExpr::Kind::kExists:
      return "exists(" + rel(f.rel_path) + ")";
    case FilterExpr::Kind::kCompare: {
      const char* ops[] = {"==", "!=", "<", "<=", ">", ">="};
      std::string lit =
          f.literal.type() == ScalarType::kString
              ? "\"" + f.literal.AsString() + "\""
              : f.literal.ToDisplayString();
      return rel(f.rel_path) + " " + ops[static_cast<int>(f.op)] + " " + lit;
    }
  }
  return "?";
}

std::string StepToString(const Step& step) {
  switch (step.kind) {
    case StepKind::kMember: {
      // Quote names that need it.
      bool plain = !step.name.empty();
      for (char c : step.name) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '-' || static_cast<unsigned char>(c) >= 0x80)) {
          plain = false;
          break;
        }
      }
      return plain ? "." + step.name : ".\"" + step.name + "\"";
    }
    case StepKind::kMemberWildcard:
      return ".*";
    case StepKind::kDescendant:
      return ".." + step.name;
    case StepKind::kArrayWildcard:
      return "[*]";
    case StepKind::kArraySubscript: {
      std::string s = "[";
      for (size_t i = 0; i < step.ranges.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(step.ranges[i].lo);
        if (step.ranges[i].hi != step.ranges[i].lo) {
          s += " to " + std::to_string(step.ranges[i].hi);
        }
      }
      s += "]";
      return s;
    }
    case StepKind::kFilter:
      return "?(" + FilterToString(*step.filter) + ")";
  }
  return "";
}

}  // namespace

Result<PathExpression> PathExpression::Parse(std::string_view text) {
  PathExpression expr;
  Parser parser(text);
  FSDM_RETURN_NOT_OK(parser.Run(&expr.steps_));
  return expr;
}

std::string PathExpression::ToString() const {
  std::string s = "$";
  for (const Step& step : steps_) s += StepToString(step);
  return s;
}

bool PathExpression::IsSingleton() const {
  for (const Step& step : steps_) {
    if (step.kind != StepKind::kMember) return false;
  }
  return true;
}

}  // namespace fsdm::jsonpath
