#ifndef FSDM_WAL_WAL_H_
#define FSDM_WAL_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"

/// Per-collection segmented write-ahead log (ISSUE 8 tentpole). The unit of
/// logging is one DML operation against one shard, with the document
/// payload carried as a self-contained OSON image — the same bytes the
/// hidden OSON virtual column materializes, which makes the log replayable
/// without re-parsing JSON text through collection-specific options.
///
/// On-disk layout (everything little-endian, fixed-width):
///
///   segment file "wal-<seq 8 digits>.walseg":
///     [magic "FSDMWAL1" (8)] [seq u32] [masked CRC32C of bytes 0..11 (4)]
///     record*
///
///   record:
///     [masked CRC32C over length..payload (4)] [payload_len u32]
///     [lsn u64] [type u8] [shard u32] [payload payload_len bytes]
///
/// LSNs are assigned by the writer, strictly increasing across the whole
/// log (all segments). Recovery (Wal::Open on a non-empty directory) scans
/// segments in sequence order and stops at the first bad CRC, short
/// record, or non-monotonic LSN — the *torn-tail rule*: everything before
/// the stop point is the durable prefix, everything at and after it is
/// treated as a clean truncation point (the file is truncated there and
/// later segments unlinked), never as an error. A record is therefore
/// atomic: either its CRC validates and it replays, or it never happened.
///
/// Durability policies (FSDM_WAL_FSYNC=always|group|off):
///   always — fsync after every append; an acknowledged DML is durable.
///   group  — group commit: fsync once per `group_ops` appends (and on
///            rotation/checkpoint/Flush). A crash may lose the un-synced
///            tail of acknowledged ops, never a synced one.
///   off    — no fsyncs; the OS decides. For benchmarks and tests.
///
/// Checkpointing: CheckpointBegin/Doc/End write a full snapshot of the
/// collection (every live document with its row id, plus the auto-key
/// cursor and per-shard row high-water marks) into a fresh segment, fsync
/// it, and unlink every older segment. Replay then starts at the last
/// *complete* checkpoint; an interrupted checkpoint (no End record) is
/// skipped entirely and replay falls back to the previous one.
///
/// Failure injection (ISSUE 8's robustness headline): the append path
/// carries fault points "wal.append.short_write" (a partial record reaches
/// the file and the writer poisons itself, as a crashed process would),
/// "wal.append.torn_write" (one seeded byte of the record is corrupted but
/// the append *succeeds silently* — recovery must catch it by CRC), and
/// "wal.fsync" (the fsync fails with an injected — typically errno-style —
/// status). The collection layer adds "wal.apply.crash" between append and
/// apply.
///
/// Threading: single-writer, like the DML path it serves. Not thread-safe.

namespace fsdm::wal {

inline constexpr char kSegmentMagic[8] = {'F', 'S', 'D', 'M',
                                          'W', 'A', 'L', '1'};
inline constexpr size_t kSegmentHeaderSize = 16;
inline constexpr size_t kRecordHeaderSize = 4 + 4 + 8 + 1 + 4;
inline constexpr const char* kSegmentSuffix = ".walseg";

/// When acknowledged appends hit the platter. See file comment.
enum class FsyncPolicy : uint8_t { kAlways = 0, kGroup, kOff };

const char* FsyncPolicyName(FsyncPolicy p);
/// Parses "always" / "group" / "off" (case-sensitive, like the other FSDM_*
/// envs); anything else (including unset) returns `fallback`.
FsyncPolicy FsyncPolicyFromEnv(FsyncPolicy fallback = FsyncPolicy::kAlways);

enum class RecordType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kReplace = 3,
  /// Compensation: the operation logged at `ref_id` (an LSN here) was
  /// appended but failed to apply (observer fan-out, constraint). Replay
  /// must skip the referenced record or recovery would resurrect an
  /// operation the client saw fail.
  kAbort = 4,
  /// Checkpoint framing. Begin carries the auto-key cursor and the
  /// per-shard row high-water marks; one Doc per live document (ref_id =
  /// its global row id); End carries the document count. Only a
  /// Begin..End pair with every Doc in between counts as a checkpoint.
  kCheckpointBegin = 5,
  kCheckpointDoc = 6,
  kCheckpointEnd = 7,
};

const char* RecordTypeName(RecordType t);

/// One decoded log record (the writer's append API takes the fields
/// directly; this is the replay-side representation).
struct Record {
  uint64_t lsn = 0;
  RecordType type = RecordType::kInsert;
  uint32_t shard = 0;
  /// kDelete/kReplace/kCheckpointDoc: global row id. kAbort: the aborted
  /// LSN. kCheckpointEnd: the document count. Unused otherwise.
  uint64_t ref_id = 0;
  /// kInsert/kReplace/kCheckpointDoc: the document key.
  Value key;
  /// kInsert/kReplace/kCheckpointDoc: self-contained OSON image.
  std::string oson;
  /// kCheckpointBegin only.
  uint64_t next_auto_key = 0;
  std::vector<uint64_t> shard_highwater;
};

struct WalOptions {
  std::string dir;
  /// Segment rotation threshold. A record larger than this still goes into
  /// one segment (segments are record-aligned, records never split).
  size_t segment_bytes = 1u << 20;
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// kGroup: fsync once per this many appends.
  size_t group_ops = 32;
};

/// What Open() found and repaired; kept by the Wal for TELEMETRY$WAL, the
/// crash-chaos report artifact, and the recovery bench.
struct RecoveryInfo {
  size_t segments_scanned = 0;
  size_t records_scanned = 0;
  /// Filled by the collection layer after replay.
  size_t records_applied = 0;
  size_t aborted_skipped = 0;
  double replay_ms = 0.0;
  uint64_t max_lsn = 0;
  bool torn_tail = false;
  /// Bytes discarded by the torn-tail truncation (including later
  /// segments unlinked whole).
  uint64_t torn_bytes = 0;
  std::vector<std::string> notes;

  std::string ToString() const;
};

class Wal {
 public:
  struct OpenResult {
    std::unique_ptr<Wal> wal;
    /// The durable prefix, in LSN order, for the owner to replay. Empty on
    /// a fresh directory.
    std::vector<Record> replay;
  };

  /// Creates `options.dir` if needed, scans any existing segments
  /// (repairing a torn tail in place), and positions the writer after the
  /// last durable record. IO errors surface as Status::Unavailable;
  /// corruption never fails Open — it truncates, per the torn-tail rule.
  static Result<OpenResult> Open(WalOptions options);

  /// Flushes (best-effort) and closes the segment file.
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // --- Append (one call per DML, before the engine applies it) ----------
  Result<uint64_t> AppendInsert(uint32_t shard, const Value& key,
                                std::string_view oson);
  Result<uint64_t> AppendDelete(uint32_t shard, uint64_t row_id);
  Result<uint64_t> AppendReplace(uint32_t shard, uint64_t row_id,
                                 const Value& key, std::string_view oson);
  /// Best-effort compensation record (see RecordType::kAbort): never
  /// fails the caller — if the abort itself cannot be made durable the
  /// recovery may redo an unacknowledged op, which is the documented
  /// (safe) direction of the ambiguity.
  void AppendAbort(uint64_t aborted_lsn);

  // --- Checkpoint --------------------------------------------------------
  Status CheckpointBegin(uint64_t next_auto_key,
                         const std::vector<uint64_t>& shard_highwater);
  Status CheckpointDoc(uint32_t shard, uint64_t row_id, const Value& key,
                       std::string_view oson);
  /// Fsyncs the checkpoint and unlinks every segment older than the one
  /// CheckpointBegin started.
  Status CheckpointEnd(uint64_t doc_count);

  /// Fsyncs pending appends regardless of policy (kOff included — Flush is
  /// the explicit escape hatch).
  Status Flush();

  // --- Introspection (TELEMETRY$WAL) -------------------------------------
  const WalOptions& options() const { return options_; }
  uint64_t last_lsn() const { return last_lsn_; }
  /// Highest LSN known to have hit the platter (== last_lsn under kAlways).
  uint64_t durable_lsn() const { return durable_lsn_; }
  size_t segment_count() const { return segments_.size(); }
  uint64_t current_segment_seq() const { return cur_seq_; }
  /// True after an unrecoverable append failure: the log refuses further
  /// appends rather than writing after a hole.
  bool failed() const { return failed_; }
  const RecoveryInfo& recovery() const { return recovery_; }
  RecoveryInfo* mutable_recovery() { return &recovery_; }

  /// In-memory writer state (ISSUE 9 memory attribution): the WAL streams
  /// records straight to the segment fd — it keeps no record buffers — so
  /// this is the writer object, the live segment list, the directory path
  /// string and the retained recovery notes. Small and deterministic.
  uint64_t MemoryBytes() const;

  uint64_t appends() const { return appends_; }
  uint64_t append_bytes() const { return append_bytes_; }
  uint64_t fsyncs() const { return fsyncs_; }
  uint64_t rotations() const { return rotations_; }
  uint64_t checkpoints() const { return checkpoints_; }
  uint64_t aborts() const { return aborts_; }

 private:
  explicit Wal(WalOptions options) : options_(std::move(options)) {}

  std::string SegmentPath(uint64_t seq) const;
  Status OpenSegmentForAppend(uint64_t seq, bool fresh, size_t size);
  Status Rotate();
  Status Fsync();
  Result<uint64_t> AppendRecord(RecordType type, uint32_t shard,
                                std::string payload);

  WalOptions options_;
  int fd_ = -1;
  uint64_t cur_seq_ = 0;
  size_t cur_size_ = 0;
  std::vector<uint64_t> segments_;  // sorted live segment sequence numbers
  uint64_t next_lsn_ = 1;
  uint64_t last_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  size_t pending_appends_ = 0;  // appended since the last fsync
  uint64_t checkpoint_seq_ = 0;  // segment the open checkpoint started in
  bool in_checkpoint_ = false;
  bool failed_ = false;
  RecoveryInfo recovery_;

  uint64_t appends_ = 0;
  uint64_t append_bytes_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t rotations_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace fsdm::wal

#endif  // FSDM_WAL_WAL_H_
