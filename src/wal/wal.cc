#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/crc32c.h"
#include "common/decimal.h"
#include "fault/fault.h"
#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/incident.h"
#include "telemetry/log.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace fsdm::wal {

namespace fs = std::filesystem;

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kOff:
      return "off";
  }
  return "unknown";
}

FsyncPolicy FsyncPolicyFromEnv(FsyncPolicy fallback) {
  const char* env = std::getenv("FSDM_WAL_FSYNC");
  if (env == nullptr) return fallback;
  if (std::strcmp(env, "always") == 0) return FsyncPolicy::kAlways;
  if (std::strcmp(env, "group") == 0) return FsyncPolicy::kGroup;
  if (std::strcmp(env, "off") == 0) return FsyncPolicy::kOff;
  return fallback;
}

const char* RecordTypeName(RecordType t) {
  switch (t) {
    case RecordType::kInsert:
      return "insert";
    case RecordType::kDelete:
      return "delete";
    case RecordType::kReplace:
      return "replace";
    case RecordType::kAbort:
      return "abort";
    case RecordType::kCheckpointBegin:
      return "checkpoint-begin";
    case RecordType::kCheckpointDoc:
      return "checkpoint-doc";
    case RecordType::kCheckpointEnd:
      return "checkpoint-end";
  }
  return "unknown";
}

std::string RecoveryInfo::ToString() const {
  std::string out = "wal recovery: segments=" + std::to_string(segments_scanned) +
                    " records=" + std::to_string(records_scanned) +
                    " applied=" + std::to_string(records_applied) +
                    " aborted_skipped=" + std::to_string(aborted_skipped) +
                    " max_lsn=" + std::to_string(max_lsn) +
                    " torn_tail=" + (torn_tail ? "yes" : "no") +
                    " torn_bytes=" + std::to_string(torn_bytes) + "\n";
  for (const std::string& n : notes) out += "  - " + n + "\n";
  return out;
}

// --- Little-endian scalar framing --------------------------------------------

namespace {

void PutU8(std::string* b, uint8_t v) { b->push_back(static_cast<char>(v)); }

void PutU32(std::string* b, uint32_t v) {
  char tmp[4];
  std::memcpy(tmp, &v, 4);
  b->append(tmp, 4);
}

void PutU64(std::string* b, uint64_t v) {
  char tmp[8];
  std::memcpy(tmp, &v, 8);
  b->append(tmp, 8);
}

void PutBytes(std::string* b, std::string_view bytes) {
  PutU32(b, static_cast<uint32_t>(bytes.size()));
  b->append(bytes.data(), bytes.size());
}

/// Bounded little-endian reader over one record payload (or header).
/// Every Get* returns false on underflow, which recovery treats as a torn
/// record and corruption fuzz relies on: a decoder must never read past
/// the buffer no matter what the bytes say.
struct Reader {
  const char* p;
  const char* end;

  size_t remaining() const { return static_cast<size_t>(end - p); }
  bool GetU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(*p++);
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (remaining() < 4) return false;
    std::memcpy(v, p, 4);
    p += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (remaining() < 8) return false;
    std::memcpy(v, p, 8);
    p += 8;
    return true;
  }
  bool GetBytes(std::string* out) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (remaining() < n) return false;
    out->assign(p, n);
    p += n;
    return true;
  }
};

// Key framing: one kind byte + a fixed or length-prefixed body. Only the
// scalar kinds a NUMBER/text key column can actually hold are supported;
// decimals travel as their canonical display string (Decimal::ToString
// round-trips through FromString exactly).
enum KeyKind : uint8_t {
  kKeyNull = 0,
  kKeyBool = 1,
  kKeyInt64 = 2,
  kKeyDouble = 3,
  kKeyDecimal = 4,
  kKeyString = 5,
};

Status EncodeKey(std::string* b, const Value& key) {
  switch (key.type()) {
    case ScalarType::kNull:
      PutU8(b, kKeyNull);
      return Status::Ok();
    case ScalarType::kBool:
      PutU8(b, kKeyBool);
      PutU8(b, key.AsBool() ? 1 : 0);
      return Status::Ok();
    case ScalarType::kInt64: {
      PutU8(b, kKeyInt64);
      PutU64(b, static_cast<uint64_t>(key.AsInt64()));
      return Status::Ok();
    }
    case ScalarType::kDouble: {
      PutU8(b, kKeyDouble);
      uint64_t bits = 0;
      const double d = key.AsDouble();
      std::memcpy(&bits, &d, 8);
      PutU64(b, bits);
      return Status::Ok();
    }
    case ScalarType::kDecimal:
      PutU8(b, kKeyDecimal);
      PutBytes(b, key.AsDecimal().ToString());
      return Status::Ok();
    case ScalarType::kString:
      PutU8(b, kKeyString);
      PutBytes(b, key.AsString());
      return Status::Ok();
    default:
      return Status::Unsupported("WAL cannot frame key of this type: " +
                                 key.ToDisplayString());
  }
}

bool DecodeKey(Reader* r, Value* out) {
  uint8_t kind = 0;
  if (!r->GetU8(&kind)) return false;
  switch (kind) {
    case kKeyNull:
      *out = Value::Null();
      return true;
    case kKeyBool: {
      uint8_t v = 0;
      if (!r->GetU8(&v)) return false;
      *out = Value::Bool(v != 0);
      return true;
    }
    case kKeyInt64: {
      uint64_t v = 0;
      if (!r->GetU64(&v)) return false;
      *out = Value::Int64(static_cast<int64_t>(v));
      return true;
    }
    case kKeyDouble: {
      uint64_t bits = 0;
      if (!r->GetU64(&bits)) return false;
      double d = 0;
      std::memcpy(&d, &bits, 8);
      *out = Value::Double(d);
      return true;
    }
    case kKeyDecimal: {
      std::string text;
      if (!r->GetBytes(&text)) return false;
      Result<Decimal> dec = Decimal::FromString(text);
      if (!dec.ok()) return false;
      *out = Value::Dec(std::move(dec).value());
      return true;
    }
    case kKeyString: {
      std::string text;
      if (!r->GetBytes(&text)) return false;
      *out = Value::String(std::move(text));
      return true;
    }
    default:
      return false;
  }
}

Status ErrnoStatus(const std::string& what, int err) {
  return Status::Unavailable(what + ": " + std::strerror(err));
}

/// Parses one payload into `rec` (type/lsn/shard already filled from the
/// header). False = malformed, which the scanner treats as a tear.
bool DecodePayload(std::string_view payload, Record* rec) {
  Reader r{payload.data(), payload.data() + payload.size()};
  switch (rec->type) {
    case RecordType::kInsert:
      if (!DecodeKey(&r, &rec->key)) return false;
      if (!r.GetBytes(&rec->oson)) return false;
      break;
    case RecordType::kDelete:
      if (!r.GetU64(&rec->ref_id)) return false;
      break;
    case RecordType::kReplace:
      if (!r.GetU64(&rec->ref_id)) return false;
      if (!DecodeKey(&r, &rec->key)) return false;
      if (!r.GetBytes(&rec->oson)) return false;
      break;
    case RecordType::kAbort:
      if (!r.GetU64(&rec->ref_id)) return false;
      break;
    case RecordType::kCheckpointBegin: {
      if (!r.GetU64(&rec->next_auto_key)) return false;
      uint32_t shard_count = 0;
      if (!r.GetU32(&shard_count)) return false;
      if (shard_count > 1u << 16) return false;  // sanity bound
      rec->shard_highwater.resize(shard_count);
      for (uint32_t i = 0; i < shard_count; ++i) {
        if (!r.GetU64(&rec->shard_highwater[i])) return false;
      }
      break;
    }
    case RecordType::kCheckpointDoc:
      if (!r.GetU64(&rec->ref_id)) return false;
      if (!DecodeKey(&r, &rec->key)) return false;
      if (!r.GetBytes(&rec->oson)) return false;
      break;
    case RecordType::kCheckpointEnd:
      if (!r.GetU64(&rec->ref_id)) return false;
      break;
    default:
      return false;
  }
  return r.remaining() == 0;
}

/// Upper bound on a single record's payload — anything larger in a length
/// field is treated as corruption, so a flipped bit in the length can
/// never make the scanner allocate gigabytes.
constexpr uint32_t kMaxPayload = 256u << 20;

}  // namespace

// --- Open / recovery scan ----------------------------------------------------

std::string Wal::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name + kSegmentSuffix;
}

Result<Wal::OpenResult> Wal::Open(WalOptions options) {
  FSDM_TRACE_SPAN(span, "wal", "wal.open");
  if (options.dir.empty()) {
    return Status::InvalidArgument("WalOptions::dir is empty");
  }
  if (options.segment_bytes < kSegmentHeaderSize + kRecordHeaderSize) {
    return Status::InvalidArgument("WalOptions::segment_bytes too small");
  }
  if (options.group_ops == 0) options.group_ops = 1;

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create WAL dir " + options.dir + ": " +
                               ec.message());
  }

  std::unique_ptr<Wal> wal(new Wal(std::move(options)));
  OpenResult result;

  // Enumerate segments: "wal-<seq>.walseg", scanned in sequence order.
  std::vector<uint64_t> seqs;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(wal->options_.dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.size() <= 4 + std::strlen(kSegmentSuffix)) continue;
    if (fname.rfind("wal-", 0) != 0) continue;
    if (fname.size() < std::strlen(kSegmentSuffix) ||
        fname.substr(fname.size() - std::strlen(kSegmentSuffix)) !=
            kSegmentSuffix) {
      continue;
    }
    const std::string digits =
        fname.substr(4, fname.size() - 4 - std::strlen(kSegmentSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    seqs.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(seqs.begin(), seqs.end());

  RecoveryInfo& info = wal->recovery_;
  uint64_t prev_lsn = 0;
  // Tear bookkeeping: index into `seqs` of the segment the scan stopped
  // in, and the byte offset of the first bad record there.
  size_t tear_seg = seqs.size();
  size_t tear_offset = 0;

  for (size_t si = 0; si < seqs.size() && tear_seg == seqs.size(); ++si) {
    const std::string path = wal->SegmentPath(seqs[si]);
    std::string contents;
    {
      const int fd = ::open(path.c_str(), O_RDONLY);
      if (fd < 0) {
        info.notes.push_back("cannot read segment " + path + ": " +
                             std::strerror(errno));
        tear_seg = si;
        tear_offset = 0;
        break;
      }
      char buf[1 << 16];
      ssize_t n = 0;
      while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
        contents.append(buf, static_cast<size_t>(n));
      }
      ::close(fd);
    }
    ++info.segments_scanned;

    // Segment header.
    if (contents.size() < kSegmentHeaderSize ||
        std::memcmp(contents.data(), kSegmentMagic, 8) != 0) {
      info.notes.push_back("segment " + path + ": bad header");
      tear_seg = si;
      tear_offset = 0;
      break;
    }
    uint32_t hdr_seq = 0;
    uint32_t hdr_crc = 0;
    std::memcpy(&hdr_seq, contents.data() + 8, 4);
    std::memcpy(&hdr_crc, contents.data() + 12, 4);
    if (hdr_seq != seqs[si] ||
        Crc32cUnmask(hdr_crc) != Crc32c(contents.data(), 12)) {
      info.notes.push_back("segment " + path + ": header CRC/seq mismatch");
      tear_seg = si;
      tear_offset = 0;
      break;
    }

    size_t off = kSegmentHeaderSize;
    while (off < contents.size()) {
      const size_t left = contents.size() - off;
      if (left < kRecordHeaderSize) {
        info.notes.push_back("segment " + path + ": short record header at " +
                             std::to_string(off));
        tear_seg = si;
        tear_offset = off;
        break;
      }
      const char* hdr = contents.data() + off;
      uint32_t crc = 0;
      uint32_t len = 0;
      uint64_t lsn = 0;
      uint8_t type = 0;
      uint32_t shard = 0;
      std::memcpy(&crc, hdr, 4);
      std::memcpy(&len, hdr + 4, 4);
      std::memcpy(&lsn, hdr + 8, 8);
      std::memcpy(&type, hdr + 16, 1);
      std::memcpy(&shard, hdr + 17, 4);
      if (len > kMaxPayload || left - kRecordHeaderSize < len) {
        info.notes.push_back("segment " + path + ": truncated record at " +
                             std::to_string(off));
        tear_seg = si;
        tear_offset = off;
        break;
      }
      if (Crc32cUnmask(crc) !=
          Crc32c(hdr + 4, kRecordHeaderSize - 4 + len)) {
        info.notes.push_back("segment " + path + ": CRC mismatch at " +
                             std::to_string(off));
        tear_seg = si;
        tear_offset = off;
        break;
      }
      if (lsn <= prev_lsn) {
        // A duplicated tail (a copied block re-appearing later in the
        // log) shows up as an LSN that goes backwards; the prefix up to
        // here is intact, everything after is discarded.
        info.notes.push_back("segment " + path + ": non-monotonic LSN " +
                             std::to_string(lsn) + " at " +
                             std::to_string(off));
        tear_seg = si;
        tear_offset = off;
        break;
      }
      Record rec;
      rec.lsn = lsn;
      rec.type = static_cast<RecordType>(type);
      rec.shard = shard;
      if (!DecodePayload({hdr + kRecordHeaderSize, len}, &rec)) {
        info.notes.push_back("segment " + path + ": malformed payload at " +
                             std::to_string(off));
        tear_seg = si;
        tear_offset = off;
        break;
      }
      prev_lsn = lsn;
      ++info.records_scanned;
      result.replay.push_back(std::move(rec));
      off += kRecordHeaderSize + len;
    }
  }

  // Torn-tail repair: truncate the segment the scan stopped in at the
  // stop offset (drop it entirely when even the header was bad) and
  // unlink every later segment, so the next generation of appends never
  // lands after garbage.
  if (tear_seg < seqs.size()) {
    info.torn_tail = true;
    FSDM_COUNT("fsdm_wal_torn_tails_total", 1);
    for (size_t si = tear_seg; si < seqs.size(); ++si) {
      const std::string path = wal->SegmentPath(seqs[si]);
      std::error_code size_ec;
      const uint64_t file_size = fs::file_size(path, size_ec);
      if (si == tear_seg && tear_offset >= kSegmentHeaderSize) {
        if (!size_ec && file_size > tear_offset) {
          info.torn_bytes += file_size - tear_offset;
        }
        if (::truncate(path.c_str(), static_cast<off_t>(tear_offset)) != 0) {
          return ErrnoStatus("cannot repair torn WAL segment " + path, errno);
        }
      } else {
        if (!size_ec) info.torn_bytes += file_size;
        std::error_code rm_ec;
        fs::remove(path, rm_ec);
        if (rm_ec) {
          return Status::Unavailable("cannot unlink torn WAL segment " +
                                     path + ": " + rm_ec.message());
        }
      }
    }
    seqs.resize(tear_offset >= kSegmentHeaderSize ? tear_seg + 1 : tear_seg);
    const std::string why =
        info.notes.empty() ? std::string("torn tail") : info.notes.back();
    FSDM_LOG(telemetry::LogLevel::kWarn, "wal", 2002,
             "torn tail repaired: " + why,
             telemetry::LogNum("torn_bytes",
                               static_cast<double>(info.torn_bytes)),
             telemetry::LogNum("records_kept",
                               static_cast<double>(info.records_scanned)));
    telemetry::IncidentManager::Global().Raise("torn-tail",
                                               wal->options_.dir, why);
  }
  info.max_lsn = prev_lsn;
  if (info.records_scanned > 0) FSDM_COUNT("fsdm_wal_recoveries_total", 1);
  FSDM_COUNT("fsdm_wal_recovered_records_total", info.records_scanned);

  wal->segments_ = seqs;
  wal->next_lsn_ = prev_lsn + 1;
  wal->last_lsn_ = prev_lsn;
  wal->durable_lsn_ = prev_lsn;

  // Position the writer: continue the last surviving segment if it still
  // has room, else start a fresh one.
  if (!seqs.empty()) {
    const std::string path = wal->SegmentPath(seqs.back());
    std::error_code size_ec;
    const uint64_t size = fs::file_size(path, size_ec);
    if (size_ec) {
      return Status::Unavailable("cannot stat WAL segment " + path + ": " +
                                 size_ec.message());
    }
    if (size + kRecordHeaderSize <= wal->options_.segment_bytes) {
      FSDM_RETURN_NOT_OK(wal->OpenSegmentForAppend(
          seqs.back(), /*fresh=*/false, static_cast<size_t>(size)));
    } else {
      FSDM_RETURN_NOT_OK(
          wal->OpenSegmentForAppend(seqs.back() + 1, /*fresh=*/true, 0));
    }
  } else {
    FSDM_RETURN_NOT_OK(wal->OpenSegmentForAppend(1, /*fresh=*/true, 0));
  }

  FSDM_LOG(telemetry::LogLevel::kInfo, "wal", 2001,
           "WAL opened: " + wal->options_.dir,
           telemetry::LogNum("segments",
                             static_cast<double>(wal->segments_.size())),
           telemetry::LogNum("recovered_records",
                             static_cast<double>(info.records_scanned)));
  result.wal = std::move(wal);
  return result;
}

Status Wal::OpenSegmentForAppend(uint64_t seq, bool fresh, size_t size) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = SegmentPath(seq);
  const int flags = O_WRONLY | O_CREAT | O_APPEND | (fresh ? O_TRUNC : 0);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("cannot open WAL segment " + path, errno);
  fd_ = fd;
  cur_seq_ = seq;
  cur_size_ = size;
  if (fresh) {
    std::string header;
    header.append(kSegmentMagic, 8);
    PutU32(&header, static_cast<uint32_t>(seq));
    PutU32(&header, Crc32cMask(Crc32c(header.data(), header.size())));
    const ssize_t n = ::write(fd_, header.data(), header.size());
    if (n != static_cast<ssize_t>(header.size())) {
      return ErrnoStatus("cannot write WAL segment header " + path,
                         n < 0 ? errno : EIO);
    }
    cur_size_ = header.size();
    segments_.push_back(seq);
  }
  return Status::Ok();
}

Wal::~Wal() {
  if (fd_ >= 0) {
    if (pending_appends_ > 0) (void)::fsync(fd_);
    ::close(fd_);
  }
}

// --- Append path -------------------------------------------------------------

Status Wal::Fsync() {
  FSDM_TRACE_SPAN(span, "wal", "wal.fsync");
  FSDM_TIME_SCOPE_US("fsdm_wal_fsync_us");
  telemetry::ScopedWaitState wait(telemetry::WaitState::kWalFsync);
  Status st = FSDM_FAULT_STATUS("wal.fsync");
  if (st.ok() && ::fsync(fd_) != 0) {
    st = ErrnoStatus("WAL fsync failed", errno);
  }
  if (!st.ok()) {
    FSDM_COUNT("fsdm_wal_fsync_failures_total", 1);
    FSDM_LOG(telemetry::LogLevel::kError, "wal", 2005,
             "WAL fsync failed: " + st.message());
    return st;
  }
  ++fsyncs_;
  FSDM_COUNT("fsdm_wal_fsyncs_total", 1);
  durable_lsn_ = last_lsn_;
  pending_appends_ = 0;
  return Status::Ok();
}

Status Wal::Rotate() {
  FSDM_TRACE_SPAN(span, "wal", "wal.rotate");
  // A completed segment is sealed with an fsync (even under kGroup): once
  // the writer moves on, the old segment's bytes never change again, so
  // making them durable here keeps "torn tail" confined to the newest
  // segment.
  if (options_.fsync != FsyncPolicy::kOff && pending_appends_ > 0) {
    FSDM_RETURN_NOT_OK(Fsync());
  }
  FSDM_RETURN_NOT_OK(OpenSegmentForAppend(cur_seq_ + 1, /*fresh=*/true, 0));
  ++rotations_;
  FSDM_COUNT("fsdm_wal_segments_rotated_total", 1);
  FSDM_LOG(telemetry::LogLevel::kInfo, "wal", 2003,
           "WAL segment rotated: " + options_.dir,
           telemetry::LogNum("segment", static_cast<double>(cur_seq_)),
           telemetry::LogNum("segments",
                             static_cast<double>(segments_.size())));
  return Status::Ok();
}

Result<uint64_t> Wal::AppendRecord(RecordType type, uint32_t shard,
                                   std::string payload) {
  if (fd_ < 0 || failed_) {
    return Status::Unavailable(
        "WAL is poisoned by an earlier append failure; reopen to recover");
  }
  const uint64_t lsn = next_lsn_;

  std::string buf;
  buf.reserve(kRecordHeaderSize + payload.size());
  PutU32(&buf, 0);  // CRC placeholder
  PutU32(&buf, static_cast<uint32_t>(payload.size()));
  PutU64(&buf, lsn);
  PutU8(&buf, static_cast<uint8_t>(type));
  PutU32(&buf, shard);
  buf += payload;
  const uint32_t crc =
      Crc32cMask(Crc32c(buf.data() + 4, buf.size() - 4));
  std::memcpy(buf.data(), &crc, 4);

  if (cur_size_ + buf.size() > options_.segment_bytes &&
      cur_size_ > kSegmentHeaderSize && !in_checkpoint_) {
    FSDM_RETURN_NOT_OK(Rotate());
  }

  // Injected short write: a prefix of the record reaches the file and the
  // writer refuses further work — the on-disk state is exactly what a
  // crash mid-write leaves behind, and recovery must truncate it away.
  Status short_write = FSDM_FAULT_STATUS("wal.append.short_write");
  if (!short_write.ok()) {
    (void)!::write(fd_, buf.data(), buf.size() / 2);
    cur_size_ += buf.size() / 2;
    failed_ = true;
    FSDM_COUNT("fsdm_wal_short_writes_total", 1);
    FSDM_LOG(telemetry::LogLevel::kError, "wal", 2007,
             "WAL poisoned by short write: " + short_write.message(),
             telemetry::LogNum("lsn", static_cast<double>(lsn)));
    telemetry::IncidentManager::Global().Raise(
        "wal-poisoned", options_.dir,
        "short append write: " + short_write.message());
    return short_write;
  }

  // Injected torn write: one seeded byte of the record is flipped but the
  // append *succeeds silently* — the client gets an ack for a record the
  // CRC will reject at recovery. This is the silent-corruption case the
  // fuzz suite drives; nothing in the process notices until reopen.
  Status torn = FSDM_FAULT_STATUS("wal.append.torn_write");
  if (!torn.ok()) {
    buf[lsn % buf.size()] = static_cast<char>(buf[lsn % buf.size()] ^ 0x40);
    FSDM_COUNT("fsdm_wal_torn_writes_total", 1);
  }

  const ssize_t n = ::write(fd_, buf.data(), buf.size());
  if (n != static_cast<ssize_t>(buf.size())) {
    const int err = n < 0 ? errno : EIO;
    // Claw the partial record back; if even that fails the log has a hole
    // and the writer poisons itself.
    if (n > 0 &&
        ::ftruncate(fd_, static_cast<off_t>(cur_size_)) != 0) {
      failed_ = true;
      FSDM_LOG(telemetry::LogLevel::kError, "wal", 2006,
               "WAL poisoned: partial append could not be repaired",
               telemetry::LogNum("lsn", static_cast<double>(lsn)));
      telemetry::IncidentManager::Global().Raise(
          "wal-poisoned", options_.dir,
          "partial append write could not be truncated away");
    }
    return ErrnoStatus("WAL append failed", err);
  }
  cur_size_ += buf.size();
  next_lsn_ = lsn + 1;
  last_lsn_ = lsn;
  ++pending_appends_;
  ++appends_;
  append_bytes_ += buf.size();
  FSDM_COUNT("fsdm_wal_appends_total", 1);
  FSDM_COUNT("fsdm_wal_append_bytes_total", buf.size());

  const bool group_due = options_.fsync == FsyncPolicy::kGroup &&
                         pending_appends_ >= options_.group_ops;
  if (options_.fsync == FsyncPolicy::kAlways || group_due) {
    Status synced = Fsync();
    if (!synced.ok()) {
      // The record is written but not durable; compensate so replay skips
      // the op the caller is about to see fail. Best-effort: if the abort
      // cannot be written either, recovery may redo an unacknowledged op
      // — the safe direction. Then the writer poisons itself: after a
      // failed fsync the kernel may have dropped the dirty pages, so
      // acking any LATER append would claim durability this file can no
      // longer promise (the DESIGN.md fsync-gate rule). Reopen to
      // recover.
      AppendAbort(lsn);
      failed_ = true;
      FSDM_LOG(telemetry::LogLevel::kError, "wal", 2008,
               "WAL poisoned by fsync failure: " + synced.message(),
               telemetry::LogNum("lsn", static_cast<double>(lsn)));
      telemetry::IncidentManager::Global().Raise(
          "wal-poisoned", options_.dir,
          "fsync failure: " + synced.message());
      return synced;
    }
  }
  return lsn;
}

Result<uint64_t> Wal::AppendInsert(uint32_t shard, const Value& key,
                                   std::string_view oson) {
  FSDM_TRACE_SPAN(span, "wal", "wal.append");
  std::string payload;
  payload.reserve(1 + 8 + 4 + oson.size());
  FSDM_RETURN_NOT_OK(EncodeKey(&payload, key));
  PutBytes(&payload, oson);
  return AppendRecord(RecordType::kInsert, shard, std::move(payload));
}

Result<uint64_t> Wal::AppendDelete(uint32_t shard, uint64_t row_id) {
  FSDM_TRACE_SPAN(span, "wal", "wal.append");
  std::string payload;
  PutU64(&payload, row_id);
  return AppendRecord(RecordType::kDelete, shard, std::move(payload));
}

Result<uint64_t> Wal::AppendReplace(uint32_t shard, uint64_t row_id,
                                    const Value& key, std::string_view oson) {
  FSDM_TRACE_SPAN(span, "wal", "wal.append");
  std::string payload;
  payload.reserve(8 + 1 + 8 + 4 + oson.size());
  PutU64(&payload, row_id);
  FSDM_RETURN_NOT_OK(EncodeKey(&payload, key));
  PutBytes(&payload, oson);
  return AppendRecord(RecordType::kReplace, shard, std::move(payload));
}

void Wal::AppendAbort(uint64_t aborted_lsn) {
  if (fd_ < 0 || failed_) return;
  std::string payload;
  PutU64(&payload, aborted_lsn);
  // Bypass AppendRecord's policy fsync: the abort is an opportunistic
  // marker, and an fsync failure in the failure path must not recurse.
  const uint64_t lsn = next_lsn_;
  std::string buf;
  PutU32(&buf, 0);
  PutU32(&buf, static_cast<uint32_t>(payload.size()));
  PutU64(&buf, lsn);
  PutU8(&buf, static_cast<uint8_t>(RecordType::kAbort));
  PutU32(&buf, 0);
  buf += payload;
  const uint32_t crc = Crc32cMask(Crc32c(buf.data() + 4, buf.size() - 4));
  std::memcpy(buf.data(), &crc, 4);
  const ssize_t n = ::write(fd_, buf.data(), buf.size());
  if (n != static_cast<ssize_t>(buf.size())) {
    if (n > 0) (void)::ftruncate(fd_, static_cast<off_t>(cur_size_));
    return;
  }
  cur_size_ += buf.size();
  next_lsn_ = lsn + 1;
  last_lsn_ = lsn;
  ++pending_appends_;
  ++aborts_;
  FSDM_COUNT("fsdm_wal_aborts_total", 1);
  if (options_.fsync != FsyncPolicy::kOff) {
    if (Fsync().ok()) durable_lsn_ = lsn;
  }
}

uint64_t Wal::MemoryBytes() const {
  uint64_t total = sizeof(Wal) + telemetry::OwnedStringBytes(options_.dir) -
                   sizeof(std::string);  // dir's object header is in sizeof(Wal)
  total += segments_.size() * sizeof(uint64_t);
  for (const std::string& note : recovery_.notes) {
    total += telemetry::OwnedStringBytes(note);
  }
  return total;
}

Status Wal::Flush() {
  if (fd_ < 0) return Status::Unavailable("WAL is closed");
  if (failed_) {
    return Status::Unavailable("WAL is poisoned by an earlier append failure");
  }
  if (pending_appends_ == 0) return Status::Ok();
  return Fsync();
}

// --- Checkpoint --------------------------------------------------------------

Status Wal::CheckpointBegin(uint64_t next_auto_key,
                            const std::vector<uint64_t>& shard_highwater) {
  FSDM_TRACE_SPAN(span, "wal", "wal.checkpoint");
  if (in_checkpoint_) {
    return Status::InvalidArgument("checkpoint already in progress");
  }
  // The checkpoint gets its own fresh segment so CheckpointEnd can unlink
  // everything older wholesale.
  if (pending_appends_ > 0 && options_.fsync != FsyncPolicy::kOff) {
    FSDM_RETURN_NOT_OK(Fsync());
  }
  if (cur_size_ > kSegmentHeaderSize) {
    FSDM_RETURN_NOT_OK(OpenSegmentForAppend(cur_seq_ + 1, /*fresh=*/true, 0));
    ++rotations_;
  }
  in_checkpoint_ = true;
  checkpoint_seq_ = cur_seq_;
  std::string payload;
  PutU64(&payload, next_auto_key);
  PutU32(&payload, static_cast<uint32_t>(shard_highwater.size()));
  for (uint64_t hw : shard_highwater) PutU64(&payload, hw);
  Status appended =
      AppendRecord(RecordType::kCheckpointBegin, 0, std::move(payload))
          .status();
  if (!appended.ok()) in_checkpoint_ = false;
  return appended;
}

Status Wal::CheckpointDoc(uint32_t shard, uint64_t row_id, const Value& key,
                          std::string_view oson) {
  if (!in_checkpoint_) {
    return Status::InvalidArgument("CheckpointDoc outside a checkpoint");
  }
  std::string payload;
  payload.reserve(8 + 1 + 8 + 4 + oson.size());
  PutU64(&payload, row_id);
  Status encoded = EncodeKey(&payload, key);
  if (!encoded.ok()) {
    in_checkpoint_ = false;
    return encoded;
  }
  PutBytes(&payload, oson);
  Status appended =
      AppendRecord(RecordType::kCheckpointDoc, shard, std::move(payload))
          .status();
  if (!appended.ok()) in_checkpoint_ = false;
  return appended;
}

Status Wal::CheckpointEnd(uint64_t doc_count) {
  FSDM_TRACE_SPAN(span, "wal", "wal.checkpoint");
  if (!in_checkpoint_) {
    return Status::InvalidArgument("CheckpointEnd outside a checkpoint");
  }
  std::string payload;
  PutU64(&payload, doc_count);
  // The flag clears only AFTER the End record is in: rotation stays
  // suppressed for the append itself, so Begin..End can never straddle a
  // segment boundary (replay would otherwise see an End whose Begin was
  // unlinked).
  Result<uint64_t> appended =
      AppendRecord(RecordType::kCheckpointEnd, 0, std::move(payload));
  in_checkpoint_ = false;
  FSDM_RETURN_NOT_OK(appended.status());
  // The checkpoint must be durable BEFORE the history it replaces is
  // unlinked, or a crash in between would leave neither.
  if (pending_appends_ > 0) FSDM_RETURN_NOT_OK(Fsync());
  std::vector<uint64_t> keep;
  for (uint64_t seq : segments_) {
    if (seq >= checkpoint_seq_) {
      keep.push_back(seq);
      continue;
    }
    std::error_code ec;
    std::filesystem::remove(SegmentPath(seq), ec);
    if (ec) {
      return Status::Unavailable("cannot unlink WAL segment " +
                                 SegmentPath(seq) + ": " + ec.message());
    }
  }
  segments_ = std::move(keep);
  ++checkpoints_;
  FSDM_COUNT("fsdm_wal_checkpoints_total", 1);
  FSDM_LOG(telemetry::LogLevel::kInfo, "wal", 2004,
           "WAL checkpoint complete: " + options_.dir,
           telemetry::LogNum("docs", static_cast<double>(doc_count)),
           telemetry::LogNum("segments",
                             static_cast<double>(segments_.size())));
  return Status::Ok();
}

}  // namespace fsdm::wal
