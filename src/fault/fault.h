#ifndef FSDM_FAULT_FAULT_H_
#define FSDM_FAULT_FAULT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

/// Fault-injection framework (ISSUE 3 tentpole): named injection points
/// compiled into failure-prone code paths (DML observer fan-out, index
/// maintenance, OSON codec, IMC population) and armed at runtime from
/// tests. A disarmed point costs one cached pointer load plus a predicted
/// branch; configuring with -DFSDM_FAULTS=OFF defines FSDM_FAULTS_DISABLED
/// and compiles every point out entirely.
///
/// Usage at an instrumentation site (the enclosing function must return
/// Status or Result<T>):
///
///   Status Table::Delete(size_t row_id) {
///     FSDM_FAULT_POINT("table.delete.apply");
///     ...
///
/// and from a test:
///
///   fault::FaultRegistry::Global().Arm("table.delete.apply",
///                                      fault::FaultSpec::Once());
///
/// Undo/compensation paths that must not early-return use the
/// Status-valued FSDM_FAULT_STATUS(name) form instead and decide what to
/// do with the injected failure themselves.
///
/// Naming convention: <subsystem>.<operation>[.<step>], e.g.
/// "index.insert.postings", "collection.create.search_index".

namespace fsdm::fault {

#if defined(FSDM_FAULTS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// How an armed point decides which hits fail.
enum class TriggerMode : uint8_t {
  kAlways,       ///< every hit fails until disarmed
  kOnce,         ///< the next hit fails, then the point self-disarms
  kNth,          ///< the Nth hit from arming (1-based) fails, then disarms
  kProbability,  ///< each hit fails with probability p (seeded RNG)
};

/// What an armed point injects and when.
struct FaultSpec {
  TriggerMode mode = TriggerMode::kOnce;
  /// kNth: the 1-based hit index that fails.
  uint64_t nth = 1;
  /// kProbability: failure probability per hit, in [0, 1].
  double probability = 0.0;
  /// kProbability: seed for the point's private deterministic RNG.
  uint64_t seed = 42;
  /// kAlways / kProbability: self-disarm after this many injected
  /// failures (0 = never).
  uint64_t max_triggers = 0;
  /// Status the injected failure carries. kOk makes the fault latency-only:
  /// the point stalls (see stall_us) but the site continues normally.
  StatusCode code = StatusCode::kInternal;
  /// Error message; empty = "injected fault at <point>".
  std::string message;
  /// Sleep this long inside Fire() when the fault triggers, published to
  /// the ASH sampler as a fault-stall wait. Combine with code = kOk for
  /// pure latency injection (no error surfaces).
  uint64_t stall_us = 0;
  /// Errno-style I/O failure payload (ISSUE 8): when non-zero, the injected
  /// status message carries strerror(err_no) — e.g. "Input/output error",
  /// "No space left on device" — so filesystem fault points (WAL append,
  /// fsync) surface errors indistinguishable from the real kernel ones
  /// their handlers are written for. The code defaults to kUnavailable,
  /// matching what the WAL's own errno paths return.
  int err_no = 0;

  static FaultSpec Once(StatusCode code = StatusCode::kInternal) {
    FaultSpec s;
    s.mode = TriggerMode::kOnce;
    s.code = code;
    return s;
  }
  static FaultSpec Always(StatusCode code = StatusCode::kInternal) {
    FaultSpec s;
    s.mode = TriggerMode::kAlways;
    s.code = code;
    return s;
  }
  static FaultSpec Nth(uint64_t nth, StatusCode code = StatusCode::kInternal) {
    FaultSpec s;
    s.mode = TriggerMode::kNth;
    s.nth = nth;
    s.code = code;
    return s;
  }
  static FaultSpec WithProbability(double p, uint64_t seed,
                                   StatusCode code = StatusCode::kInternal) {
    FaultSpec s;
    s.mode = TriggerMode::kProbability;
    s.probability = p;
    s.seed = seed;
    s.code = code;
    return s;
  }
  /// Latency-only fault: every hit stalls `stall_us` microseconds and then
  /// proceeds (code kOk never early-returns at the site).
  static FaultSpec StallUs(uint64_t stall_us,
                           TriggerMode mode = TriggerMode::kAlways) {
    FaultSpec s;
    s.mode = mode;
    s.code = StatusCode::kOk;
    s.stall_us = stall_us;
    return s;
  }
  /// Realistic filesystem failure: the injected status reads like the
  /// kernel produced it, e.g. Errno(ENOSPC) at "wal.fsync" yields
  /// Unavailable("injected fault at wal.fsync: No space left on device").
  static FaultSpec Errno(int err_no, TriggerMode mode = TriggerMode::kOnce,
                         StatusCode code = StatusCode::kUnavailable) {
    FaultSpec s;
    s.mode = mode;
    s.code = code;
    s.err_no = err_no;
    return s;
  }
};

/// One named injection point. Pointers returned by the registry are stable
/// for the process lifetime, so instrumentation sites cache them in
/// function-local statics.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  /// Hot-path guard: false while disarmed (the steady state).
  bool armed() const { return armed_; }

  /// Called on every hit of an *armed* point: decides whether this hit
  /// fails, applying the armed FaultSpec. Returns the injected error or
  /// OK to let the site continue.
  Status Fire();

  /// Hits seen while armed (Fire() calls) since the last Arm().
  uint64_t hits() const { return hits_; }
  /// Injected failures over the point's lifetime (not reset by Arm()).
  uint64_t triggers() const { return triggers_; }

 private:
  friend class FaultRegistry;

  std::string name_;
  bool armed_ = false;
  FaultSpec spec_;
  uint64_t hits_ = 0;
  uint64_t triggers_ = 0;
  /// Injected failures since the last Arm(); max_triggers compares against
  /// this, not the lifetime count.
  uint64_t armed_triggers_ = 0;
  Rng rng_{42};
};

/// Process-wide registry of injection points. Single-threaded like the
/// engine underneath. Points register lazily on first hit (or first Arm),
/// and stay registered for the process lifetime.
class FaultRegistry {
 public:
  static FaultRegistry& Global();

  /// Create-or-get; the returned pointer never moves.
  FaultPoint* Register(const std::string& name);

  /// Arms `name` (registering it if needed) with `spec`, resetting the
  /// point's armed-hit counter.
  void Arm(const std::string& name, FaultSpec spec);
  /// Disarms one point / every point. Counters survive.
  void Disarm(const std::string& name);
  void DisarmAll();

  /// nullptr when the point was never registered.
  const FaultPoint* Find(const std::string& name) const;

  /// Registered point names, sorted (the injection-point catalog).
  std::vector<std::string> PointNames() const;

  /// Total injected failures across all points since process start.
  uint64_t triggers_total() const { return triggers_total_; }

 private:
  friend class FaultPoint;

  std::map<std::string, std::unique_ptr<FaultPoint>> points_;
  uint64_t triggers_total_ = 0;
};

/// Arms a fault in its constructor and disarms *all* faults in its
/// destructor — keeps tests exception/early-return safe and guarantees no
/// armed fault leaks into the next test.
class ScopedFault {
 public:
  ScopedFault(const std::string& name, FaultSpec spec) {
    FaultRegistry::Global().Arm(name, std::move(spec));
  }
  ~ScopedFault() { FaultRegistry::Global().DisarmAll(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

}  // namespace fsdm::fault

#if !defined(FSDM_FAULTS_DISABLED)

/// Early-returns the injected Status (convertible to Result<T>) when the
/// point is armed and fires. Near-zero cost disarmed: one function-local
/// static pointer load plus a not-taken branch.
#define FSDM_FAULT_POINT(point_name)                                        \
  do {                                                                      \
    static ::fsdm::fault::FaultPoint* FSDM_CONCAT_(fsdm_fp_, __LINE__) =    \
        ::fsdm::fault::FaultRegistry::Global().Register(point_name);        \
    if (FSDM_CONCAT_(fsdm_fp_, __LINE__)->armed()) {                        \
      ::fsdm::Status FSDM_CONCAT_(fsdm_fp_st_, __LINE__) =                  \
          FSDM_CONCAT_(fsdm_fp_, __LINE__)->Fire();                         \
      if (!FSDM_CONCAT_(fsdm_fp_st_, __LINE__).ok())                        \
        return FSDM_CONCAT_(fsdm_fp_st_, __LINE__);                         \
    }                                                                       \
  } while (0)

/// Status-valued form for compensation paths that must not early-return:
/// evaluates to the injected Status when armed and firing, OK otherwise.
#define FSDM_FAULT_STATUS(point_name)                                       \
  ([&]() -> ::fsdm::Status {                                                \
    static ::fsdm::fault::FaultPoint* fsdm_fp =                             \
        ::fsdm::fault::FaultRegistry::Global().Register(point_name);        \
    return fsdm_fp->armed() ? fsdm_fp->Fire() : ::fsdm::Status::Ok();       \
  }())

#else  // FSDM_FAULTS_DISABLED

#define FSDM_FAULT_POINT(point_name) \
  do {                               \
  } while (0)
#define FSDM_FAULT_STATUS(point_name) (::fsdm::Status::Ok())

#endif  // FSDM_FAULTS_DISABLED

#endif  // FSDM_FAULT_FAULT_H_
