#include "fault/fault.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/log.h"
#include "telemetry/telemetry.h"

namespace fsdm::fault {

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kConstraintViolation:
      return Status::ConstraintViolation(std::move(msg));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

Status FaultPoint::Fire() {
  if (!armed_) return Status::Ok();
  ++hits_;
  bool fire = false;
  bool disarm_after = false;
  switch (spec_.mode) {
    case TriggerMode::kAlways:
      fire = true;
      break;
    case TriggerMode::kOnce:
      fire = true;
      disarm_after = true;
      break;
    case TriggerMode::kNth:
      if (hits_ == spec_.nth) {
        fire = true;
        disarm_after = true;
      }
      break;
    case TriggerMode::kProbability:
      fire = rng_.NextBool(spec_.probability);
      break;
  }
  if (!fire) return Status::Ok();
  ++triggers_;
  ++armed_triggers_;
  ++FaultRegistry::Global().triggers_total_;
  FSDM_COUNT("fsdm_fault_injections_total", 1);
  FSDM_TRACE_INSTANT_TEXT("fault", "fault.fire", "point", name_);
  FSDM_LOG(telemetry::LogLevel::kWarn, "fault", 3001,
           "fault fired at " + name_, telemetry::LogText("point", name_),
           telemetry::LogNum("trigger", triggers_));
  if (spec_.stall_us > 0) {
    // Latency injection: park the site for the configured stall, charged
    // to the fault wait class so it shows up in the ASH time model.
    telemetry::ScopedWaitState wait(telemetry::WaitState::kFaultStall);
    FSDM_COUNT("fsdm_fault_stall_us_total", spec_.stall_us);
    std::this_thread::sleep_for(std::chrono::microseconds(spec_.stall_us));
  }
  if (disarm_after ||
      (spec_.max_triggers != 0 && armed_triggers_ >= spec_.max_triggers)) {
    armed_ = false;
  }
  std::string msg =
      spec_.message.empty() ? "injected fault at " + name_ : spec_.message;
  if (spec_.err_no != 0) {
    // Errno payload: make the message read like the kernel produced it, so
    // error-handling paths written for real EIO/ENOSPC see the same text
    // shape they would in production.
    msg += ": ";
    msg += std::strerror(spec_.err_no);
  }
  return MakeStatus(spec_.code, std::move(msg));
}

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

FaultPoint* FaultRegistry::Register(const std::string& name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(name, std::make_unique<FaultPoint>(name)).first;
  }
  return it->second.get();
}

void FaultRegistry::Arm(const std::string& name, FaultSpec spec) {
  FaultPoint* p = Register(name);
  p->spec_ = std::move(spec);
  p->hits_ = 0;
  p->armed_triggers_ = 0;
  p->rng_ = Rng(p->spec_.seed);
  p->armed_ = true;
}

void FaultRegistry::Disarm(const std::string& name) {
  auto it = points_.find(name);
  if (it != points_.end()) it->second->armed_ = false;
}

void FaultRegistry::DisarmAll() {
  for (auto& [name, p] : points_) p->armed_ = false;
}

const FaultPoint* FaultRegistry::Find(const std::string& name) const {
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : it->second.get();
}

std::vector<std::string> FaultRegistry::PointNames() const {
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, p] : points_) names.push_back(name);
  return names;
}

}  // namespace fsdm::fault
