#include "stats/path_stats.h"

#include <algorithm>

#include "telemetry/memory_tracker.h"

namespace fsdm::stats {

// --- ValueHistogram ---------------------------------------------------------

void ValueHistogram::Add(double v) {
  ++total_;
  if (!frozen()) {
    buffer_.push_back(v);
    if (buffer_.size() >= kSeedCapacity) Freeze();
    return;
  }
  size_t bucket;
  if (hi_ == lo_) {
    bucket = 0;
  } else {
    double pos = (v - lo_) / (hi_ - lo_);
    pos = std::min(1.0, std::max(0.0, pos));
    bucket = std::min(counts_.size() - 1,
                      static_cast<size_t>(pos * static_cast<double>(
                                                    counts_.size())));
  }
  ++counts_[bucket];
}

void ValueHistogram::Freeze() {
  lo_ = *std::min_element(buffer_.begin(), buffer_.end());
  hi_ = *std::max_element(buffer_.begin(), buffer_.end());
  counts_.assign(hi_ == lo_ ? 1 : kBuckets, 0);
  std::vector<double> seed = std::move(buffer_);
  buffer_.clear();
  total_ -= seed.size();  // Add() re-counts them
  for (double v : seed) Add(v);
}

double ValueHistogram::FractionBelow(double x, bool inclusive) const {
  if (total_ == 0) return 0.0;
  if (!frozen()) {
    uint64_t below = 0;
    for (double v : buffer_) {
      if (v < x || (inclusive && v == x)) ++below;
    }
    return static_cast<double>(below) / static_cast<double>(total_);
  }
  if (hi_ == lo_) {
    return (x > lo_ || (inclusive && x == lo_)) ? 1.0 : 0.0;
  }
  if (x <= lo_) return (inclusive && x == lo_) ? 0.0 : 0.0;
  if (x >= hi_) return 1.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const size_t hit = std::min(counts_.size() - 1,
                              static_cast<size_t>((x - lo_) / width));
  uint64_t below = 0;
  for (size_t i = 0; i < hit; ++i) below += counts_[i];
  const double in_bucket_frac =
      (x - (lo_ + static_cast<double>(hit) * width)) / width;
  const double partial = static_cast<double>(counts_[hit]) * in_bucket_frac;
  return (static_cast<double>(below) + partial) / static_cast<double>(total_);
}

void ValueHistogram::Clear() {
  buffer_.clear();
  counts_.clear();
  lo_ = hi_ = 0;
  total_ = 0;
}

// --- PathStatsRepository ----------------------------------------------------

void PathStatsRepository::OnScalar(const std::string& path, bool /*under_array*/,
                                   const Value& v) {
  PathStats& s = paths_[path];
  // Per-document frequency via the stamp trick: the current document's
  // stamp is docs_seen_ + 1 (OnDocumentEnd increments docs_seen_ after the
  // walk).
  const uint64_t stamp = docs_seen_ + 1;
  if (s.last_doc_stamp != stamp) {
    s.last_doc_stamp = stamp;
    ++s.doc_frequency;
  }
  if (v.is_null()) {
    ++s.null_count;
    return;
  }
  ++s.value_count;
  s.ndv.Add(v.ToDisplayString());
  // Min/max keep the first comparable extremes; a heterogeneous path
  // (string vs number) simply stops updating across the incomparable pair.
  if (!s.min_value.has_value()) {
    s.min_value = v;
    s.max_value = v;
  } else {
    Result<int> lo = v.CompareTo(*s.min_value);
    if (lo.ok() && lo.value() < 0) s.min_value = v;
    Result<int> hi = v.CompareTo(*s.max_value);
    if (hi.ok() && hi.value() > 0) s.max_value = v;
  }
  if (v.IsNumeric()) s.histogram.Add(v.NumericAsDouble());
}

void PathStatsRepository::OnDocumentEnd() { ++docs_seen_; }

const PathStats* PathStatsRepository::Find(const std::string& path) const {
  auto it = paths_.find(path);
  return it == paths_.end() ? nullptr : &it->second;
}

std::optional<double> PathStatsRepository::ExistenceSelectivity(
    const std::string& path) const {
  if (docs_seen_ == 0) return std::nullopt;
  const PathStats* s = Find(path);
  if (s == nullptr) return 0.0;
  return std::min(1.0, static_cast<double>(s->doc_frequency) /
                           static_cast<double>(docs_seen_));
}

double PathStatsRepository::NdvEstimate(const std::string& path) const {
  const PathStats* s = Find(path);
  return s == nullptr ? 0.0 : s->ndv.Estimate();
}

uint64_t PathStatsRepository::MemoryBytes() const {
  // Map node overhead (parent/child pointers + color) per entry.
  constexpr uint64_t kNodeBytes = 4 * sizeof(void*);
  uint64_t total = 0;
  for (const auto& [path, stats] : paths_) {
    total += kNodeBytes + telemetry::OwnedStringBytes(path) +
             sizeof(PathStats) + stats.histogram.HeapBytes();
  }
  return total;
}

void PathStatsRepository::Clear() {
  paths_.clear();
  docs_seen_ = 0;
}

}  // namespace fsdm::stats
