#include "stats/operator_costs.h"

#include <algorithm>
#include <atomic>

namespace fsdm::stats {

namespace {

/// Seed us/row defaults, roughly ordered by how much work one row costs:
/// replaying an IMC vector is nearly free, posting lookups materialize one
/// base row, a full-scan row is cheaper than that, and a residual Filter
/// re-parses the document to evaluate JSON_VALUE/JSON_EXISTS.
constexpr struct {
  const char* name;
  double us_per_row;
} kSeeds[] = {
    {"ImcFilterScan", 0.05},       // vectorized compare per stored row
    {"ParallelUnion", 0.05},       // per-row merge cost of the shard union
    {"PostingIntersect", 0.05},    // sorted-list merge step per posting
    {"Scan", 0.5},                 // base-table row materialization
    {"IndexedValueScan", 0.8},     // posting fetch + row materialization
    {"IndexedPathScan", 0.8},
    {"PostingIntersectScan", 0.8},
    {"Filter", 2.0},               // JSON parse + path navigation per row
};

}  // namespace

OperatorCostModel::OperatorCostModel() { SeedLocked(); }

void OperatorCostModel::SeedLocked() {
  for (const auto& seed : kSeeds) {
    Entry e;
    e.us_per_row = seed.us_per_row;
    e.seed_us_per_row = seed.us_per_row;
    entries_[seed.name] = e;
  }
}

OperatorCostModel& OperatorCostModel::Global() {
  static OperatorCostModel* model = new OperatorCostModel();
  return *model;
}

double OperatorCostModel::UsPerRow(const std::string& op_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(op_name);
  return it == entries_.end() ? 1.0 : it->second.us_per_row;
}

void OperatorCostModel::Record(const std::string& op_name, uint64_t rows,
                               double us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (frozen_ || rows == 0) return;
  const double obs = std::min(
      1000.0, std::max(0.001, us / static_cast<double>(rows)));
  auto [it, inserted] = entries_.try_emplace(op_name);
  Entry& e = it->second;
  if (inserted || e.samples == 0) {
    // First measurement replaces the seed outright instead of blending
    // into it — the seed is a prior, not a data point.
    e.us_per_row = obs;
  } else {
    e.us_per_row = (1.0 - kAlpha) * e.us_per_row + kAlpha * obs;
  }
  ++e.samples;
  e.rows_total += rows;
  e.last_us_per_row = obs;
}

void OperatorCostModel::RecordSpanTree(const telemetry::OperatorSpan& root) {
  if (frozen()) return;
  double child_us = 0;
  for (const auto& c : root.children) {
    child_us += c->elapsed_us;
    RecordSpanTree(*c);
  }
  if (root.name == "ImcFilterScan") return;  // see header
  const uint64_t rows = root.children.empty()
                            ? root.rows_out.load(std::memory_order_relaxed)
                            : root.RowsIn();
  const double exclusive_us = std::max(0.0, root.elapsed_us - child_us);
  Record(root.name, rows, exclusive_us);
}

void OperatorCostModel::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  frozen_ = false;
  entries_.clear();
  SeedLocked();
}

std::map<std::string, OperatorCostModel::Entry> OperatorCostModel::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace fsdm::stats
