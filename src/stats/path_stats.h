#ifndef FSDM_STATS_PATH_STATS_H_
#define FSDM_STATS_PATH_STATS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "dataguide/dataguide.h"
#include "stats/hll.h"

/// Per-collection path statistics repository (ISSUE 5 tentpole): value-level
/// statistics the DataGuide's structural walk cannot see — NDV sketches,
/// value histograms — maintained from the dataguide::ScalarSink hook the
/// guide fires on the DML path it already pays for. The router's cost model
/// turns these into selectivity estimates.

namespace fsdm::stats {

/// Bounded equi-width histogram over the numeric values of one path.
/// Buffers the first kSeedCapacity values exactly, then freezes the
/// observed [min, max] range into kBuckets equal-width buckets. Later
/// values outside the frozen range clamp into the edge buckets, so the
/// frozen range is a documented staleness: a drifting value distribution
/// flattens the edges until Clear() (RebuildIndex) re-seeds it. Memory is
/// O(kBuckets) per path regardless of stream length.
class ValueHistogram {
 public:
  static constexpr size_t kBuckets = 32;
  static constexpr size_t kSeedCapacity = 64;

  void Add(double v);

  uint64_t total() const { return total_; }
  bool frozen() const { return !counts_.empty(); }
  /// Frozen bucket range; meaningful only once frozen().
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bucket_count() const { return counts_.size(); }

  /// Estimated fraction of observed values below `x` (`<= x` when
  /// `inclusive`). Exact while buffering; linear interpolation inside the
  /// hit bucket once frozen (where inclusive/exclusive coincide except on
  /// a degenerate single-value range). Returns 0 when empty.
  double FractionBelow(double x, bool inclusive) const;

  void Clear();

  /// Heap bytes behind the seed buffer / frozen buckets (size-based, for
  /// the ISSUE 9 memory attribution; the object header is the owner's).
  uint64_t HeapBytes() const {
    return buffer_.size() * sizeof(double) + counts_.size() * sizeof(uint64_t);
  }

 private:
  void Freeze();

  std::vector<double> buffer_;    // exact values until frozen
  std::vector<uint64_t> counts_;  // equi-width buckets once frozen
  double lo_ = 0;
  double hi_ = 0;
  uint64_t total_ = 0;
};

/// Value-level statistics for one DataGuide path.
struct PathStats {
  uint64_t doc_frequency = 0;  // documents containing the path
  uint64_t value_count = 0;    // non-null scalar occurrences
  uint64_t null_count = 0;     // null scalar occurrences
  Hll ndv;                     // distinct non-null values (by display form)
  std::optional<Value> min_value;
  std::optional<Value> max_value;
  ValueHistogram histogram;  // numeric values only

  /// Internal: stamp of the last document that touched this path, used to
  /// count per-document frequency without a per-document set (the same
  /// trick dataguide::PathEntry uses).
  uint64_t last_doc_stamp = 0;
};

/// The repository: one PathStats per scalar path, fed by the DataGuide's
/// instance walk. Like the guide itself the statistics are *additive*
/// (§3.4): deletes and rollbacks never retract them, so absolute counts
/// drift high over a churning workload while the ratios the router
/// consumes (frequency / docs_seen, histogram fractions) stay
/// approximately right. RebuildIndex() clears and re-feeds it.
class PathStatsRepository final : public dataguide::ScalarSink {
 public:
  // --- dataguide::ScalarSink -------------------------------------------
  void OnScalar(const std::string& path, bool under_array,
                const Value& v) override;
  void OnDocumentEnd() override;

  /// Documents whose scalars this repository has observed.
  uint64_t docs_seen() const { return docs_seen_; }

  const PathStats* Find(const std::string& path) const;
  const std::map<std::string, PathStats>& paths() const { return paths_; }

  /// Estimated fraction of documents containing `path` in [0, 1]. Empty
  /// when the repository has seen no documents at all (caller falls back
  /// to DataGuide frequencies); 0 for a path no observed document had.
  std::optional<double> ExistenceSelectivity(const std::string& path) const;

  /// NDV estimate for the path's non-null values; 0 when unknown.
  double NdvEstimate(const std::string& path) const;

  /// In-memory footprint (ISSUE 9 memory attribution): per-path map node
  /// overhead + owned path string (by size()) + the PathStats payload
  /// (the Hll registers are an inline array) + histogram heap bytes.
  /// Min/max sample Values excluded, as in DataGuide::MemoryBytes().
  uint64_t MemoryBytes() const;

  void Clear();

 private:
  std::map<std::string, PathStats> paths_;
  uint64_t docs_seen_ = 0;
};

}  // namespace fsdm::stats

#endif  // FSDM_STATS_PATH_STATS_H_
