#ifndef FSDM_STATS_HLL_H_
#define FSDM_STATS_HLL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace fsdm::stats {

/// Small fixed-precision HyperLogLog sketch for per-path NDV estimates
/// (ISSUE 5 tentpole). Precision p = 10 gives 1024 one-byte registers per
/// path; the documented relative standard error of raw HLL at that size is
/// 1.04 / sqrt(1024) ~= 3.25%. Linear counting takes over while most
/// registers are still zero, so the small-cardinality regime most JSON
/// paths live in is near-exact.
///
/// Deterministic by construction: values are hashed with FNV-1a over their
/// canonical display form (the same canonicalization the search index's
/// value postings key on), so the same stream always produces the same
/// estimate — the router determinism test relies on this.
class Hll {
 public:
  static constexpr int kPrecision = 10;
  static constexpr size_t kRegisters = size_t{1} << kPrecision;
  /// Documented relative standard error: 1.04 / sqrt(kRegisters).
  static constexpr double kStdError = 0.0325;

  /// Adds one value by its canonical display form.
  void Add(std::string_view canonical);
  /// Adds a pre-computed 64-bit hash (exposed for tests).
  void AddHash(uint64_t hash);

  /// Distinct-count estimate: linear counting while zero registers remain
  /// and the raw estimate is small, bias-corrected raw HLL otherwise.
  double Estimate() const;

  /// Register-wise max. After Merge(other), Estimate() equals that of a
  /// sketch fed the union of both input streams.
  void Merge(const Hll& other);

  void Clear() { registers_.fill(0); }

 private:
  std::array<uint8_t, kRegisters> registers_{};
};

}  // namespace fsdm::stats

#endif  // FSDM_STATS_HLL_H_
