#include "stats/hll.h"

#include <cmath>

#include "common/hash.h"

namespace fsdm::stats {

namespace {

// FNV-1a's high bits barely avalanche on short sequential keys (the
// bucket index below reads the TOP p bits), so finalize with the murmur3
// fmix64 mixer before splitting the hash.
uint64_t Mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

}  // namespace

void Hll::Add(std::string_view canonical) { AddHash(Hash64(canonical)); }

void Hll::AddHash(uint64_t hash) {
  hash = Mix(hash);
  const size_t idx = static_cast<size_t>(hash >> (64 - kPrecision));
  // Rank of the first set bit in the remaining 64-p bits (1-based); an
  // all-zero suffix ranks 64-p+1.
  uint64_t rest = hash << kPrecision;
  uint8_t rank = 1;
  while (rank <= 64 - kPrecision && (rest & (uint64_t{1} << 63)) == 0) {
    ++rank;
    rest <<= 1;
  }
  if (rank > registers_[idx]) registers_[idx] = rank;
}

double Hll::Estimate() const {
  constexpr double m = static_cast<double>(kRegisters);
  // alpha_m for m >= 128 (Flajolet et al., 2007).
  constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inverse_sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha * m * m / inverse_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: linear counting over the zero registers.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void Hll::Merge(const Hll& other) {
  for (size_t i = 0; i < kRegisters; ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
}

}  // namespace fsdm::stats
