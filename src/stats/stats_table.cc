#include "stats/stats_table.h"

#include <memory>
#include <utility>
#include <vector>

#include "stats/operator_costs.h"

namespace fsdm::stats {

namespace {

class OperatorCostsScanOp final : public rdbms::Operator {
 public:
  OperatorCostsScanOp() {
    schema_ = rdbms::Schema({"OPERATOR", "US_PER_ROW", "SEED_US_PER_ROW",
                             "SAMPLES", "ROWS_OBSERVED", "LAST_US_PER_ROW"});
  }

  Status Open() override {
    rows_.clear();
    next_ = 0;
    for (const auto& [name, e] : OperatorCostModel::Global().Snapshot()) {
      rows_.push_back(
          {Value::String(name), Value::Double(e.us_per_row),
           Value::Double(e.seed_us_per_row),
           Value::Int64(static_cast<int64_t>(e.samples)),
           Value::Int64(static_cast<int64_t>(e.rows_total)),
           e.samples == 0 ? Value::Null() : Value::Double(e.last_us_per_row)});
    }
    return Status::Ok();
  }

  Result<bool> Next(rdbms::Row* out) override {
    if (next_ >= rows_.size()) return false;
    *out = std::move(rows_[next_++]);
    return true;
  }

  void Close() override { rows_.clear(); }

 private:
  std::vector<rdbms::Row> rows_;
  size_t next_ = 0;
};

}  // namespace

rdbms::OperatorPtr OperatorCostsScan() {
  return std::make_unique<OperatorCostsScanOp>();
}

}  // namespace fsdm::stats
