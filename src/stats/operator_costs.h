#ifndef FSDM_STATS_OPERATOR_COSTS_H_
#define FSDM_STATS_OPERATOR_COSTS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "telemetry/trace.h"

/// Measured per-operator throughputs (ISSUE 5 tentpole): exponentially
/// weighted us/row estimates per operator name, harvested from the
/// OperatorSpan trees rdbms::Instrument already fills on every routed
/// query. The router's cost model multiplies these by estimated row counts;
/// seeded defaults keep routing sensible before the first measurement.

namespace fsdm::stats {

class OperatorCostModel {
 public:
  static OperatorCostModel& Global();

  /// Current estimate of microseconds spent per row processed by the named
  /// operator: the EWMA when measurements exist, the seed default
  /// otherwise (1.0 us/row for unseeded names).
  double UsPerRow(const std::string& op_name) const;

  /// Feeds one measurement: `rows` rows processed in `us` microseconds.
  /// No-op while frozen or when rows == 0; the per-row observation is
  /// clamped to [0.001, 1000] us so clock-granularity zeros cannot
  /// collapse an estimate.
  void Record(const std::string& op_name, uint64_t rows, double us);

  /// Harvests an executed span tree: each span contributes its *exclusive*
  /// time (elapsed minus children's elapsed) over its row basis — leaves
  /// process the rows they emit, interior operators the rows they consume.
  /// Spans named "ImcFilterScan" are skipped: the routed plan only replays
  /// pre-materialized rows there, and the router records the route-time
  /// scan directly with the scanned-row basis.
  void RecordSpanTree(const telemetry::OperatorSpan& root);

  /// Freezing makes Record()/RecordSpanTree() no-ops, pinning every
  /// estimate — the router determinism test routes under a frozen model.
  void set_frozen(bool frozen) {
    std::lock_guard<std::mutex> lock(mu_);
    frozen_ = frozen;
  }
  bool frozen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frozen_;
  }

  /// Drops all measurements back to the seed defaults (and unfreezes).
  void Reset();

  struct Entry {
    double us_per_row = 1.0;       // live EWMA (== seed until a sample)
    double seed_us_per_row = 1.0;  // the pre-measurement default
    uint64_t samples = 0;
    uint64_t rows_total = 0;
    double last_us_per_row = 0.0;  // most recent raw observation
  };

  /// Seeded + measured entries, for TELEMETRY$OPERATOR_COSTS.
  std::map<std::string, Entry> Snapshot() const;

 private:
  OperatorCostModel();

  void SeedLocked();

  static constexpr double kAlpha = 0.2;  // EWMA weight of a new sample

  // Guards entries_ and frozen_: routed sub-plans on different worker
  // threads can feed measurements concurrently (ISSUE 6).
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // seeds pre-inserted
  bool frozen_ = false;
};

}  // namespace fsdm::stats

#endif  // FSDM_STATS_OPERATOR_COSTS_H_
