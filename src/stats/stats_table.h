#ifndef FSDM_STATS_STATS_TABLE_H_
#define FSDM_STATS_STATS_TABLE_H_

#include "rdbms/executor.h"

namespace fsdm::stats {

/// TELEMETRY$OPERATOR_COSTS (ISSUE 5): the operator cost model as a SQL
/// relation, one row per operator name. Schema: (OPERATOR, US_PER_ROW,
/// SEED_US_PER_ROW, SAMPLES, ROWS_OBSERVED, LAST_US_PER_ROW) — SAMPLES is 0
/// for seeded entries no measurement has touched yet.
inline constexpr const char* kOperatorCostsTableName =
    "TELEMETRY$OPERATOR_COSTS";

rdbms::OperatorPtr OperatorCostsScan();

}  // namespace fsdm::stats

#endif  // FSDM_STATS_STATS_TABLE_H_
