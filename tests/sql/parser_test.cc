#include "sql/parser.h"

#include <gtest/gtest.h>

#include "telemetry/telemetry.h"

namespace fsdm::sql {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;

constexpr const char* kPo1 =
    R"({"purchaseOrder":{"id":1,"costcenter":"CC1","reference":"r-1",
        "items":[{"partno":"p1","quantity":2,"unitprice":10.5},
                 {"partno":"p2","quantity":1,"unitprice":3}]}})";
constexpr const char* kPo2 =
    R"({"purchaseOrder":{"id":2,"costcenter":"CC2","reference":"r-2",
        "items":[{"partno":"p1","quantity":4,"unitprice":2.25}]}})";
constexpr const char* kPo3 =
    R"({"purchaseOrder":{"id":3,"costcenter":"CC1","reference":"r-3",
        "items":[]}})";

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = db_.CreateTable(
                   "PO", {{.name = "DID", .type = ColumnType::kNumber},
                          {.name = "AMOUNT", .type = ColumnType::kNumber},
                          {.name = "NAME", .type = ColumnType::kString},
                          {.name = "JDOC",
                           .type = ColumnType::kJson,
                           .check_is_json = true}})
                 .MoveValue();
    auto ins = [&](int64_t id, int64_t amt, const char* name,
                   const char* doc) {
      ASSERT_TRUE(table_
                      ->Insert({Value::Int64(id), Value::Int64(amt),
                                Value::String(name), Value::String(doc)})
                      .ok());
    };
    ins(1, 100, "alpha", kPo1);
    ins(2, 250, "beta", kPo2);
    ins(3, 75, "alpha", kPo3);
  }

  std::vector<std::string> Q(const std::string& sql) {
    SqlSession session(&db_);
    Result<std::vector<std::string>> r = session.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
    return r.ok() ? r.MoveValue() : std::vector<std::string>{};
  }

  rdbms::Database db_;
  rdbms::Table* table_ = nullptr;
};

TEST_F(SqlTest, SelectStar) {
  std::vector<std::string> rows = Q("SELECT * FROM PO");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].substr(0, 12), "1|100|alpha|");
}

TEST_F(SqlTest, ProjectionAndAliases) {
  EXPECT_EQ(Q("SELECT DID, AMOUNT * 2 AS doubled FROM PO LIMIT 2"),
            (std::vector<std::string>{"1|200", "2|500"}));
  EXPECT_EQ(Q("SELECT NAME FROM PO WHERE DID = 3"),
            std::vector<std::string>{"alpha"});
}

TEST_F(SqlTest, WherePredicates) {
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE AMOUNT > 80 AND NAME = 'alpha'"),
            std::vector<std::string>{"1"});
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE AMOUNT BETWEEN 80 AND 260"),
            (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE NAME IN ('beta', 'gamma')"),
            std::vector<std::string>{"2"});
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE NOT (AMOUNT < 100)"),
            (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE NAME IS NOT NULL AND AMOUNT <> 100"),
            (std::vector<std::string>{"2", "3"}));
}

TEST_F(SqlTest, OrderByAndLimit) {
  EXPECT_EQ(Q("SELECT DID FROM PO ORDER BY AMOUNT DESC"),
            (std::vector<std::string>{"2", "1", "3"}));
  EXPECT_EQ(Q("SELECT DID, AMOUNT FROM PO ORDER BY 2 ASC LIMIT 2"),
            (std::vector<std::string>{"3|75", "1|100"}));
}

TEST_F(SqlTest, GlobalAggregates) {
  EXPECT_EQ(Q("SELECT COUNT(*) FROM PO"), std::vector<std::string>{"3"});
  EXPECT_EQ(Q("SELECT SUM(AMOUNT), MIN(AMOUNT), MAX(AMOUNT) FROM PO"),
            std::vector<std::string>{"425|75|250"});
  EXPECT_EQ(Q("SELECT COUNT(*) FROM PO WHERE AMOUNT >= 100"),
            std::vector<std::string>{"2"});
}

TEST_F(SqlTest, GroupByWithOrderByOrdinal) {
  // Table 13's Q2 shape.
  EXPECT_EQ(Q("SELECT NAME, COUNT(*) FROM PO GROUP BY NAME ORDER BY 1"),
            (std::vector<std::string>{"alpha|2", "beta|1"}));
  EXPECT_EQ(Q("SELECT NAME, SUM(AMOUNT) AS total FROM PO GROUP BY NAME "
              "ORDER BY total DESC"),
            (std::vector<std::string>{"beta|250", "alpha|175"}));
}

TEST_F(SqlTest, ScalarFunctions) {
  EXPECT_EQ(Q("SELECT SUBSTR(NAME, 1, 3) FROM PO WHERE DID = 1"),
            std::vector<std::string>{"alp"});
  EXPECT_EQ(Q("SELECT UPPER(NAME) FROM PO WHERE DID = 2"),
            std::vector<std::string>{"BETA"});
  EXPECT_EQ(Q("SELECT INSTR(NAME, 'e') FROM PO WHERE DID = 2"),
            std::vector<std::string>{"2"});
}

TEST_F(SqlTest, JsonValueAndExists) {
  EXPECT_EQ(
      Q("SELECT JSON_VALUE(JDOC, '$.purchaseOrder.costcenter') FROM PO "
        "WHERE DID = 2"),
      std::vector<std::string>{"CC2"});
  EXPECT_EQ(
      Q("SELECT DID FROM PO WHERE "
        "JSON_EXISTS(JDOC, '$.purchaseOrder.items[*]?(@.quantity > 3)')"),
      std::vector<std::string>{"2"});
  EXPECT_EQ(
      Q("SELECT JSON_VALUE(JDOC, '$.purchaseOrder.id' RETURNING NUMBER) + 10 "
        "FROM PO WHERE DID = 1"),
      std::vector<std::string>{"11"});
  EXPECT_EQ(Q("SELECT DID FROM PO WHERE "
              "JSON_TEXTCONTAINS(JDOC, '$.purchaseOrder.reference', 'r')"),
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(SqlTest, GroupByJsonValue) {
  EXPECT_EQ(
      Q("SELECT JSON_VALUE(JDOC, '$.purchaseOrder.costcenter') AS cc, "
        "COUNT(*) FROM PO GROUP BY JSON_VALUE(JDOC, "
        "'$.purchaseOrder.costcenter') ORDER BY 1"),
      (std::vector<std::string>{"CC1|2", "CC2|1"}));
}

TEST_F(SqlTest, OsonRewrite) {
  SqlSession session(&db_);
  ASSERT_TRUE(session.UseOsonFor("PO", "JDOC").ok());
  // Same SQL text, now transparently evaluated over the hidden OSON column.
  Result<std::vector<std::string>> rows = session.Query(
      "SELECT DID FROM PO WHERE "
      "JSON_EXISTS(JDOC, '$.purchaseOrder.items[*]?(@.partno == \"p1\")') "
      "ORDER BY DID");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), (std::vector<std::string>{"1", "2"}));
}

TEST_F(SqlTest, ErrorsAreParseErrors) {
  SqlSession session(&db_);
  for (const char* bad :
       {"", "SELECT", "SELECT FROM PO", "SELECT * FROM", "SELECT * FROM NOPE",
        "INSERT INTO PO", "SELECT * FROM PO WHERE", "SELECT * FROM PO GROUP",
        "SELECT * FROM PO ORDER BY 9", "SELECT * FROM PO extra",
        "SELECT COUNT( FROM PO", "SELECT 'unterminated FROM PO",
        "SELECT JSON_VALUE(JDOC) FROM PO",
        "SELECT COUNT(*) FROM PO WHERE COUNT(*) > 1"}) {
    EXPECT_FALSE(session.Query(bad).ok()) << "should reject: " << bad;
  }
}

TEST_F(SqlTest, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(Q("select DID from PO where AMOUNT > 200"),
            std::vector<std::string>{"2"});
}

TEST_F(SqlTest, QuotedIdentifiersAndStringEscapes) {
  EXPECT_EQ(Q("SELECT \"NAME\" FROM PO WHERE NAME = 'alpha' AND DID = 1"),
            std::vector<std::string>{"alpha"});
  // Doubled single quote inside a string literal.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM PO WHERE NAME = 'it''s'"),
            std::vector<std::string>{"0"});
}

TEST_F(SqlTest, TableQualifiedColumns) {
  EXPECT_EQ(Q("SELECT PO.DID FROM PO WHERE PO.AMOUNT = 250"),
            std::vector<std::string>{"2"});
}

TEST_F(SqlTest, TelemetryMetricsVirtualTable) {
  // The virtual relation works regardless of the FSDM_TELEMETRY kill
  // switch (only the instrumentation macros are gated), so seed a counter
  // through the registry API directly.
  telemetry::MetricsRegistry::Global()
      .GetCounter("fsdm_test_sql_counter_total")
      ->Add(5);
  EXPECT_EQ(Q("SELECT NAME, KIND, VALUE FROM TELEMETRY$METRICS "
              "WHERE NAME = 'fsdm_test_sql_counter_total'"),
            std::vector<std::string>{"fsdm_test_sql_counter_total|counter|5"});
  // Case-insensitive like every other table name, and real tables still
  // shadow nothing: unknown names keep failing.
  EXPECT_EQ(Q("SELECT COUNT(*) FROM telemetry$metrics "
              "WHERE KIND = 'counter' AND NAME = 'fsdm_test_sql_counter_total'"),
            std::vector<std::string>{"1"});
  SqlSession session(&db_);
  EXPECT_FALSE(session.Query("SELECT * FROM TELEMETRY$NOPE").ok());
}

}  // namespace
}  // namespace fsdm::sql
