#include "common/decimal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fsdm {
namespace {

Decimal Dec(const std::string& s) {
  Result<Decimal> r = Decimal::FromString(s);
  EXPECT_TRUE(r.ok()) << s << ": " << r.status().ToString();
  return r.MoveValue();
}

TEST(DecimalTest, ParseAndPrintCanonical) {
  EXPECT_EQ(Dec("0").ToString(), "0");
  EXPECT_EQ(Dec("-0").ToString(), "0");
  EXPECT_EQ(Dec("0.0").ToString(), "0");
  EXPECT_EQ(Dec("42").ToString(), "42");
  EXPECT_EQ(Dec("-42").ToString(), "-42");
  EXPECT_EQ(Dec("3.14").ToString(), "3.14");
  EXPECT_EQ(Dec("0.001").ToString(), "0.001");
  EXPECT_EQ(Dec("100").ToString(), "100");
  EXPECT_EQ(Dec("1e2").ToString(), "100");
  EXPECT_EQ(Dec("1.5e3").ToString(), "1500");
  EXPECT_EQ(Dec("12.500").ToString(), "12.5");
  EXPECT_EQ(Dec("0012.5").ToString(), "12.5");
}

TEST(DecimalTest, ScientificFormForExtremeExponents) {
  EXPECT_EQ(Dec("1e30").ToString(), "1E+30");
  EXPECT_EQ(Dec("-2.5e-10").ToString(), "-2.5E-10");
  // Round-trip through text.
  for (const char* s : {"1e30", "-2.5e-10", "9.99e21", "1e-7"}) {
    Decimal d = Dec(s);
    EXPECT_EQ(d.CompareTo(Dec(d.ToString())), 0) << s;
  }
}

TEST(DecimalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Decimal::FromString("").ok());
  EXPECT_FALSE(Decimal::FromString("abc").ok());
  EXPECT_FALSE(Decimal::FromString("1.2.3").ok());
  EXPECT_FALSE(Decimal::FromString("1e").ok());
  EXPECT_FALSE(Decimal::FromString("--1").ok());
  EXPECT_FALSE(Decimal::FromString("1x").ok());
}

TEST(DecimalTest, FromInt64Extremes) {
  EXPECT_EQ(Decimal::FromInt64(0).ToString(), "0");
  EXPECT_EQ(Decimal::FromInt64(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(Decimal::FromInt64(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(DecimalTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{999999},
                    INT64_MAX, INT64_MIN}) {
    Result<int64_t> back = Decimal::FromInt64(v).ToInt64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
  }
}

TEST(DecimalTest, ToInt64RejectsFractionAndOverflow) {
  EXPECT_FALSE(Dec("1.5").ToInt64().ok());
  EXPECT_FALSE(Dec("1e40").ToInt64().ok());
  EXPECT_FALSE(Dec("9223372036854775808").ToInt64().ok());   // INT64_MAX+1
  EXPECT_TRUE(Dec("-9223372036854775808").ToInt64().ok());   // INT64_MIN
  EXPECT_FALSE(Dec("-9223372036854775809").ToInt64().ok());
}

TEST(DecimalTest, DoubleRoundTrip) {
  for (double v : {0.0, 1.0, -1.0, 3.14159, 1e-300, 2.2250738585072014e-308,
                   1.7976931348623157e308, 100.25}) {
    Result<Decimal> d = Decimal::FromDouble(v);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value().ToDouble(), v);
  }
  EXPECT_FALSE(Decimal::FromDouble(std::numeric_limits<double>::quiet_NaN()).ok());
  EXPECT_FALSE(Decimal::FromDouble(std::numeric_limits<double>::infinity()).ok());
}

TEST(DecimalTest, CompareOrdering) {
  std::vector<std::string> ordered = {"-1000", "-3.15", "-3.14", "-0.001",
                                      "0",     "0.001", "1",     "1.0001",
                                      "2",     "10",    "99.9",  "1e10"};
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = 0; j < ordered.size(); ++j) {
      int expected = i < j ? -1 : (i > j ? 1 : 0);
      EXPECT_EQ(Dec(ordered[i]).CompareTo(Dec(ordered[j])), expected)
          << ordered[i] << " vs " << ordered[j];
    }
  }
}

TEST(DecimalTest, CompareIgnoresRepresentation) {
  EXPECT_EQ(Dec("100").CompareTo(Dec("1e2")), 0);
  EXPECT_EQ(Dec("0.5").CompareTo(Dec("5e-1")), 0);
  EXPECT_EQ(Dec("-12.50").CompareTo(Dec("-12.5")), 0);
}

TEST(DecimalTest, Addition) {
  EXPECT_EQ(Dec("1").Add(Dec("2")).ToString(), "3");
  EXPECT_EQ(Dec("0.1").Add(Dec("0.2")).ToString(), "0.3");  // exact!
  EXPECT_EQ(Dec("99.99").Add(Dec("0.01")).ToString(), "100");
  EXPECT_EQ(Dec("1").Add(Dec("-1")).ToString(), "0");
  EXPECT_EQ(Dec("-5").Add(Dec("3")).ToString(), "-2");
  EXPECT_EQ(Dec("3").Add(Dec("-5")).ToString(), "-2");
  EXPECT_EQ(Dec("1e10").Add(Dec("1")).ToString(), "10000000001");
  EXPECT_EQ(Dec("123.456").Add(Decimal()).ToString(), "123.456");
}

TEST(DecimalTest, Subtraction) {
  EXPECT_EQ(Dec("10").Subtract(Dec("0.5")).ToString(), "9.5");
  EXPECT_EQ(Dec("0.3").Subtract(Dec("0.1")).ToString(), "0.2");
  EXPECT_EQ(Dec("5").Subtract(Dec("5")).ToString(), "0");
}

TEST(DecimalTest, Multiplication) {
  EXPECT_EQ(Dec("12").Multiply(Dec("12")).ToString(), "144");
  EXPECT_EQ(Dec("0.5").Multiply(Dec("0.5")).ToString(), "0.25");
  EXPECT_EQ(Dec("-3").Multiply(Dec("4")).ToString(), "-12");
  EXPECT_EQ(Dec("1.5").Multiply(Dec("2")).ToString(), "3");
  EXPECT_EQ(Dec("100").Multiply(Decimal()).ToString(), "0");
  EXPECT_EQ(Dec("99999999").Multiply(Dec("99999999")).ToString(),
            "9999999800000001");
}

TEST(DecimalTest, DivideApprox) {
  Result<Decimal> r = Dec("1").DivideApprox(Dec("4"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToString(), "0.25");
  EXPECT_FALSE(Dec("1").DivideApprox(Decimal()).ok());
}

TEST(DecimalTest, BinaryRoundTrip) {
  for (const char* s :
       {"0", "1", "-1", "42", "-42", "3.14", "-3.14", "0.001", "-0.001",
        "123456789.123456789", "1e20", "-1e20", "1e-20", "-1e-20", "9.9",
        "10", "100", "0.5", "-0.5", "55.5555"}) {
    Decimal d = Dec(s);
    std::string enc;
    d.EncodeBinary(&enc);
    Result<Decimal> back = Decimal::DecodeBinary(
        reinterpret_cast<const uint8_t*>(enc.data()), enc.size());
    ASSERT_TRUE(back.ok()) << s << ": " << back.status().ToString();
    EXPECT_EQ(back.value().CompareTo(d), 0) << s;
  }
}

TEST(DecimalTest, BinaryEncodingIsOrderPreserving) {
  // memcmp order of encodings must equal numeric order.
  std::vector<std::string> ordered = {"-1e10", "-123.45", "-1",    "-0.5",
                                      "-0.001", "0",      "0.001", "0.5",
                                      "1",      "1.5",    "2",     "123.45",
                                      "1e10"};
  std::vector<std::string> encs;
  for (const std::string& s : ordered) {
    std::string e;
    Dec(s).EncodeBinary(&e);
    encs.push_back(e);
  }
  for (size_t i = 0; i + 1 < encs.size(); ++i) {
    EXPECT_LT(encs[i], encs[i + 1])
        << ordered[i] << " should encode below " << ordered[i + 1];
  }
}

TEST(DecimalTest, DecodeRejectsCorruptImages) {
  EXPECT_FALSE(Decimal::DecodeBinary(nullptr, 0).ok());
  uint8_t zero_with_tail[] = {0x80, 0x01};
  EXPECT_FALSE(Decimal::DecodeBinary(zero_with_tail, 2).ok());
  uint8_t neg_no_term[] = {0x40, 0x50};
  EXPECT_FALSE(Decimal::DecodeBinary(neg_no_term, 2).ok());
  uint8_t pos_no_mantissa[] = {0xC1};
  EXPECT_FALSE(Decimal::DecodeBinary(pos_no_mantissa, 1).ok());
}

TEST(DecimalTest, RoundsBeyondMaxDigits) {
  std::string fifty_nines(50, '9');
  Decimal d = Dec(fifty_nines);
  // Rounds up to 1e50.
  EXPECT_EQ(d.CompareTo(Dec("1e50")), 0);
}

// Property sweep: random decimal pairs round-trip and order correctly.
class DecimalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecimalPropertyTest, RandomizedRoundTripAndOrder) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    // Random decimal: up to 20 digits, exponent in [-15, 15].
    auto random_dec = [&]() {
      int ndigits = static_cast<int>(rng.Range(1, 20));
      std::string s;
      if (rng.NextBool()) s.push_back('-');
      for (int i = 0; i < ndigits; ++i) {
        s.push_back(static_cast<char>('0' + rng.Range(i == 0 ? 1 : 0, 9)));
      }
      long e = rng.Range(-15, 15);
      s += "e" + std::to_string(e);
      return Dec(s);
    };
    Decimal a = random_dec();
    Decimal b = random_dec();

    // Round-trip through binary.
    std::string ea, eb;
    a.EncodeBinary(&ea);
    b.EncodeBinary(&eb);
    Result<Decimal> ra = Decimal::DecodeBinary(
        reinterpret_cast<const uint8_t*>(ea.data()), ea.size());
    ASSERT_TRUE(ra.ok());
    EXPECT_EQ(ra.value().CompareTo(a), 0);

    // memcmp(ea, eb) sign must match CompareTo sign.
    int byte_cmp = ea < eb ? -1 : (ea > eb ? 1 : 0);
    EXPECT_EQ(byte_cmp, a.CompareTo(b)) << a.ToString() << " vs "
                                        << b.ToString();

    // Round-trip through text.
    EXPECT_EQ(Dec(a.ToString()).CompareTo(a), 0) << a.ToString();

    // Algebra on a narrower pair whose combined digit span stays inside
    // kMaxDigits, so a + b - b == a holds exactly (with the wide pair the
    // sum legitimately rounds a away, as in any fixed-precision decimal).
    auto narrow_dec = [&]() {
      int ndigits = static_cast<int>(rng.Range(1, 12));
      std::string s;
      if (rng.NextBool()) s.push_back('-');
      for (int i = 0; i < ndigits; ++i) {
        s.push_back(static_cast<char>('0' + rng.Range(i == 0 ? 1 : 0, 9)));
      }
      s += "e" + std::to_string(rng.Range(-5, 5));
      return Dec(s);
    };
    Decimal na = narrow_dec();
    Decimal nb = narrow_dec();
    EXPECT_EQ(na.Add(nb).Subtract(nb).CompareTo(na), 0)
        << na.ToString() << " + " << nb.ToString();
    // Commutativity (holds regardless of rounding).
    EXPECT_EQ(a.Add(b).CompareTo(b.Add(a)), 0);
    EXPECT_EQ(a.Multiply(b).CompareTo(b.Multiply(a)), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecimalPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 20160626));

}  // namespace
}  // namespace fsdm
