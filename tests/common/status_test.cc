#include "common/status.h"

#include <gtest/gtest.h>

namespace fsdm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ConstraintViolation("").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::Unsupported("").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> r(std::string("payload"));
  std::string s = r.MoveValue();
  EXPECT_EQ(s, "payload");
}

Status FailingHelper() { return Status::Corruption("inner"); }

Status PropagatingHelper() {
  FSDM_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = PropagatingHelper();
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

Result<int> GiveSeven() { return 7; }

Status UseAssignOrReturn(int* out) {
  FSDM_ASSIGN_OR_RETURN(int v, GiveSeven());
  *out = v;
  return Status::Ok();
}

TEST(StatusTest, AssignOrReturnMacroBindsValue) {
  int v = 0;
  ASSERT_TRUE(UseAssignOrReturn(&v).ok());
  EXPECT_EQ(v, 7);
}

}  // namespace
}  // namespace fsdm
