#include "common/value.h"

#include <gtest/gtest.h>

namespace fsdm {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ScalarType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ScalarType::kBool);
  EXPECT_EQ(Value::Int64(1).type(), ScalarType::kInt64);
  EXPECT_EQ(Value::Double(1.5).type(), ScalarType::kDouble);
  EXPECT_EQ(Value::Dec(Decimal::FromInt64(1)).type(), ScalarType::kDecimal);
  EXPECT_EQ(Value::String("x").type(), ScalarType::kString);
  EXPECT_EQ(Value::Date(19000).type(), ScalarType::kDate);
  EXPECT_EQ(Value::Timestamp(1).type(), ScalarType::kTimestamp);
  EXPECT_EQ(Value::Binary("ab").type(), ScalarType::kBinary);
}

TEST(ValueTest, TypeNamesMatchDataGuideVocabulary) {
  EXPECT_EQ(ScalarTypeName(ScalarType::kInt64), "number");
  EXPECT_EQ(ScalarTypeName(ScalarType::kDouble), "number");
  EXPECT_EQ(ScalarTypeName(ScalarType::kDecimal), "number");
  EXPECT_EQ(ScalarTypeName(ScalarType::kString), "string");
  EXPECT_EQ(ScalarTypeName(ScalarType::kBool), "boolean");
  EXPECT_EQ(ScalarTypeName(ScalarType::kNull), "null");
}

TEST(ValueTest, NumericCoercionInCompare) {
  Value i = Value::Int64(2);
  Value d = Value::Double(2.0);
  Value dec = Value::Dec(Decimal::FromInt64(2));
  EXPECT_EQ(i.CompareTo(d).value(), 0);
  EXPECT_EQ(i.CompareTo(dec).value(), 0);
  EXPECT_EQ(d.CompareTo(dec).value(), 0);
  EXPECT_EQ(Value::Int64(1).CompareTo(Value::Double(1.5)).value(), -1);
  EXPECT_EQ(Value::Dec(Decimal::FromString("2.5").MoveValue())
                .CompareTo(Value::Int64(2))
                .value(),
            1);
}

TEST(ValueTest, ExactInt64Compare) {
  // Values that lose precision as doubles must still compare exactly.
  Value a = Value::Int64(9007199254740993LL);  // 2^53 + 1
  Value b = Value::Int64(9007199254740992LL);  // 2^53
  EXPECT_EQ(a.CompareTo(b).value(), 1);
}

TEST(ValueTest, IncomparableTypesError) {
  EXPECT_FALSE(Value::String("a").CompareTo(Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Bool(true).CompareTo(Value::String("true")).ok());
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_EQ(Value::Null().CompareTo(Value::Int64(-100)).value(), -1);
  EXPECT_EQ(Value::Int64(-100).CompareTo(Value::Null()).value(), 1);
  EXPECT_EQ(Value::Null().CompareTo(Value::Null()).value(), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_EQ(Value::String("a").CompareTo(Value::String("b")).value(), -1);
  EXPECT_EQ(Value::String("b").CompareTo(Value::String("b")).value(), 0);
  EXPECT_EQ(Value::String("ba").CompareTo(Value::String("b")).value(), 1);
}

TEST(ValueTest, GroupingEqualityCoalescesNumericKinds) {
  Value i = Value::Int64(100);
  Value dec = Value::Dec(Decimal::FromString("100.00").MoveValue());
  EXPECT_TRUE(i.EqualsForGrouping(dec));
  EXPECT_EQ(i.HashForGrouping(), dec.HashForGrouping());
  EXPECT_FALSE(i.EqualsForGrouping(Value::String("100")));
  EXPECT_TRUE(Value::Null().EqualsForGrouping(Value::Null()));
  EXPECT_FALSE(Value::Null().EqualsForGrouping(Value::Int64(0)));
}

TEST(ValueTest, GroupingHashDistinguishesValues) {
  EXPECT_NE(Value::Int64(1).HashForGrouping(),
            Value::Int64(2).HashForGrouping());
  EXPECT_NE(Value::String("a").HashForGrouping(),
            Value::String("b").HashForGrouping());
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Null().ToDisplayString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToDisplayString(), "false");
  EXPECT_EQ(Value::Int64(-7).ToDisplayString(), "-7");
  EXPECT_EQ(Value::String("hi").ToDisplayString(), "hi");
  EXPECT_EQ(Value::Dec(Decimal::FromString("3.5").MoveValue())
                .ToDisplayString(),
            "3.5");
}

TEST(ValueTest, NumericConversions) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).NumericAsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).NumericAsDouble(), 2.5);
  EXPECT_EQ(Value::Double(2.5).NumericAsDecimal().ToString(), "2.5");
  EXPECT_EQ(Value::Int64(42).NumericAsDecimal().ToString(), "42");
}

}  // namespace
}  // namespace fsdm
