#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace fsdm {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC-32C check value (RFC 3720 appendix / every
  // Castagnoli implementation in the wild).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  // 32 bytes of zeros, per the iSCSI test vectors.
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalSeedMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t c = Crc32c(data.data(), split);
    c = Crc32c(data.data() + split, data.size() - split, c);
    EXPECT_EQ(c, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t c : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0x8A9136AAu}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(c)), c);
    EXPECT_NE(Crc32cMask(c), c);
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data = "payload under test";
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), base) << "flip at " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace fsdm
