#include "common/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace fsdm {
namespace {

TEST(VarintTest, RoundTrip32) {
  const std::vector<uint32_t> cases = {0,    1,    127,        128,
                                       255,  300,  16383,      16384,
                                       1u << 21, (1u << 28) - 1, 1u << 28,
                                       std::numeric_limits<uint32_t>::max()};
  for (uint32_t v : cases) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    uint32_t decoded = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    const uint8_t* q = GetVarint32(p, p + buf.size(), &decoded);
    ASSERT_NE(q, nullptr) << v;
    EXPECT_EQ(q, p + buf.size());
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, RoundTrip64) {
  const std::vector<uint64_t> cases = {
      0, 1, 1ull << 35, 1ull << 56, std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    uint64_t decoded = 0;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
    const uint8_t* q = GetVarint64(p, p + buf.size(), &decoded);
    ASSERT_NE(q, nullptr) << v;
    EXPECT_EQ(decoded, v);
  }
}

TEST(VarintTest, TruncatedInputReturnsNull) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  uint64_t decoded;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  EXPECT_EQ(GetVarint64(p, p + buf.size() - 1, &decoded), nullptr);
}

TEST(VarintTest, Varint32RejectsOversizedValue) {
  std::string buf;
  PutVarint64(&buf, uint64_t{UINT32_MAX} + 1);
  uint32_t decoded;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  EXPECT_EQ(GetVarint32(p, p + buf.size(), &decoded), nullptr);
}

TEST(VarintTest, SequentialDecodingAdvances) {
  std::string buf;
  for (uint32_t v = 0; v < 1000; v += 7) PutVarint32(&buf, v);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  const uint8_t* limit = p + buf.size();
  for (uint32_t v = 0; v < 1000; v += 7) {
    uint32_t decoded;
    p = GetVarint32(p, limit, &decoded);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(p, limit);
}

TEST(FixedTest, RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEF);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buf.data());
  EXPECT_EQ(DecodeFixed16(p), 0xBEEF);
  EXPECT_EQ(DecodeFixed32(p + 2), 0xDEADBEEFu);
}

TEST(FixedTest, InPlaceEncode) {
  uint8_t buf[4];
  EncodeFixed16(buf, 513);
  EXPECT_EQ(DecodeFixed16(buf), 513);
  EncodeFixed32(buf, 70000);
  EXPECT_EQ(DecodeFixed32(buf), 70000u);
}

}  // namespace
}  // namespace fsdm
