#include "fault/fault.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/metrics_table.h"
#include "telemetry/telemetry.h"

namespace fsdm::fault {
namespace {

// Instrumentation sites under test. The macro caches the point pointer in
// a function-local static, so each site gets its own named function.
Status HitStatus() {
  FSDM_FAULT_POINT("test.status");
  return Status::Ok();
}

Result<int> HitResult() {
  FSDM_FAULT_POINT("test.result");
  return 42;
}

Status HitProbe() { return FSDM_FAULT_STATUS("test.probe"); }

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) {
      GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
    }
    FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override { FaultRegistry::Global().DisarmAll(); }
};

TEST_F(FaultTest, DisarmedPointIsTransparent) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(HitStatus().ok());
    Result<int> r = HitResult();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
  }
}

TEST_F(FaultTest, OnceFiresExactlyOnceThenDisarms) {
  FaultRegistry::Global().Arm("test.status", FaultSpec::Once());
  Status st = HitStatus();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("test.status"), std::string::npos);
  // Self-disarmed: subsequent hits pass.
  EXPECT_TRUE(HitStatus().ok());
  EXPECT_TRUE(HitStatus().ok());
  const FaultPoint* p = FaultRegistry::Global().Find("test.status");
  ASSERT_NE(p, nullptr);
  EXPECT_FALSE(p->armed());
  EXPECT_EQ(p->triggers(), 1u);
}

TEST_F(FaultTest, OnceCarriesConfiguredStatusCode) {
  FaultRegistry::Global().Arm("test.status",
                              FaultSpec::Once(StatusCode::kUnavailable));
  EXPECT_EQ(HitStatus().code(), StatusCode::kUnavailable);
}

TEST_F(FaultTest, ResultChannelPropagatesInjectedStatus) {
  FaultRegistry::Global().Arm("test.result",
                              FaultSpec::Once(StatusCode::kCorruption));
  Result<int> r = HitResult();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(HitResult().value(), 42);
}

TEST_F(FaultTest, NthFailsOnExactlyTheNthHit) {
  FaultRegistry::Global().Arm("test.status", FaultSpec::Nth(3));
  EXPECT_TRUE(HitStatus().ok());
  EXPECT_TRUE(HitStatus().ok());
  EXPECT_FALSE(HitStatus().ok());
  // Disarmed after firing.
  EXPECT_TRUE(HitStatus().ok());
}

TEST_F(FaultTest, AlwaysFiresUntilDisarmed) {
  FaultRegistry::Global().Arm("test.status", FaultSpec::Always());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(HitStatus().ok());
  FaultRegistry::Global().Disarm("test.status");
  EXPECT_TRUE(HitStatus().ok());
}

TEST_F(FaultTest, AlwaysWithMaxTriggersSelfDisarms) {
  FaultSpec spec = FaultSpec::Always();
  spec.max_triggers = 2;
  FaultRegistry::Global().Arm("test.status", spec);
  EXPECT_FALSE(HitStatus().ok());
  EXPECT_FALSE(HitStatus().ok());
  EXPECT_TRUE(HitStatus().ok());
}

TEST_F(FaultTest, ProbabilityIsDeterministicPerSeed) {
  auto pattern = [&]() {
    FaultRegistry::Global().Arm("test.status",
                                FaultSpec::WithProbability(0.5, 1234));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!HitStatus().ok());
    FaultRegistry::Global().DisarmAll();
    return fired;
  };
  std::vector<bool> first = pattern();
  std::vector<bool> second = pattern();
  EXPECT_EQ(first, second);
  // Sanity: p=0.5 over 64 hits fires at least once and not always.
  size_t hits = 0;
  for (bool b : first) hits += b;
  EXPECT_GT(hits, 0u);
  EXPECT_LT(hits, 64u);
}

TEST_F(FaultTest, ProbabilityExtremes) {
  FaultRegistry::Global().Arm("test.status", FaultSpec::WithProbability(0, 1));
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(HitStatus().ok());
  FaultRegistry::Global().Arm("test.status",
                              FaultSpec::WithProbability(1.0, 1));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(HitStatus().ok());
}

TEST_F(FaultTest, ProbeFormReturnsStatusWithoutEarlyReturn) {
  EXPECT_TRUE(HitProbe().ok());
  FaultRegistry::Global().Arm("test.probe", FaultSpec::Once());
  EXPECT_FALSE(HitProbe().ok());
  EXPECT_TRUE(HitProbe().ok());
}

TEST_F(FaultTest, ArmResetsHitCounterAndCustomMessage) {
  FaultRegistry::Global().Arm("test.status", FaultSpec::Nth(2));
  EXPECT_TRUE(HitStatus().ok());
  // Re-arming restarts the count: the next hit is hit #1 again.
  FaultSpec spec = FaultSpec::Nth(2);
  spec.message = "disk on fire";
  FaultRegistry::Global().Arm("test.status", spec);
  EXPECT_TRUE(HitStatus().ok());
  Status st = HitStatus();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "disk on fire");
}

TEST_F(FaultTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault guard("test.status", FaultSpec::Always());
    EXPECT_FALSE(HitStatus().ok());
  }
  EXPECT_TRUE(HitStatus().ok());
}

TEST_F(FaultTest, RegistryCatalogListsPoints) {
  (void)HitStatus();  // force registration
  std::vector<std::string> names = FaultRegistry::Global().PointNames();
  bool found = false;
  for (const std::string& n : names) found |= (n == "test.status");
  EXPECT_TRUE(found);
}

TEST_F(FaultTest, TriggersFeedTelemetryAndRegistryTotals) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  }
  uint64_t before_registry = FaultRegistry::Global().triggers_total();
  uint64_t before_metric = telemetry::MetricsRegistry::Global().CounterValue(
      "fsdm_fault_injections_total");
  FaultRegistry::Global().Arm("test.status", FaultSpec::Nth(2));
  EXPECT_TRUE(HitStatus().ok());   // hit 1: armed but not firing
  EXPECT_FALSE(HitStatus().ok());  // hit 2: fires
  EXPECT_EQ(FaultRegistry::Global().triggers_total(), before_registry + 1);
  EXPECT_EQ(telemetry::MetricsRegistry::Global().CounterValue(
                "fsdm_fault_injections_total"),
            before_metric + 1);
}

TEST_F(FaultTest, StallSpecInjectsLatencyWithoutError) {
  // ISSUE 7: latency-only injection — the point stalls (charged to the
  // fault-stall wait class) but returns Ok, so callers proceed normally.
  FaultSpec spec = FaultSpec::StallUs(2000);
  spec.max_triggers = 3;
  FaultRegistry::Global().Arm("test.status", spec);
  const FaultPoint* p = FaultRegistry::Global().Find("test.status");
  ASSERT_NE(p, nullptr);
  const uint64_t triggers_before = p->triggers();

  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(HitStatus().ok());
  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_us, 3 * 2000);
  // Self-disarmed after max_triggers; no more stalls and still Ok.
  EXPECT_TRUE(HitStatus().ok());
  EXPECT_FALSE(p->armed());
  EXPECT_EQ(p->triggers(), triggers_before + 3);

  if (telemetry::kEnabled) {
    EXPECT_GE(telemetry::MetricsRegistry::Global().CounterValue(
                  "fsdm_fault_stall_us_total"),
              uint64_t{3} * 2000);
  }
}

TEST_F(FaultTest, StallComposesWithErrorCode) {
  // A stall plus a non-Ok code: sleep first, then surface the fault.
  FaultSpec spec = FaultSpec::Once(StatusCode::kUnavailable);
  spec.stall_us = 1000;
  FaultRegistry::Global().Arm("test.status", spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(HitStatus().code(), StatusCode::kUnavailable);
  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(elapsed_us, 1000);
  EXPECT_TRUE(HitStatus().ok());
}

TEST_F(FaultTest, ErrnoSpecCarriesStrerrorPayload) {
  // The WAL's filesystem fault points (ISSUE 8) inject errors that read
  // like the kernel produced them; handlers written for real EIO/ENOSPC
  // must see the same text shape.
  FaultRegistry::Global().Arm("test.status", FaultSpec::Errno(ENOSPC));
  Status st = HitStatus();
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_NE(st.message().find("injected fault at test.status"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find(std::strerror(ENOSPC)), std::string::npos)
      << st.message();
  EXPECT_TRUE(HitStatus().ok()) << "Errno defaults to one-shot";

  // A custom message keeps the errno suffix; a custom code wins.
  FaultSpec spec = FaultSpec::Errno(EIO, TriggerMode::kOnce,
                                    StatusCode::kCorruption);
  spec.message = "torn page";
  FaultRegistry::Global().Arm("test.status", spec);
  st = HitStatus();
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(st.message(),
            std::string("torn page: ") + std::strerror(EIO));
}

TEST_F(FaultTest, InjectionCounterVisibleThroughMetricsTable) {
  if (!telemetry::kEnabled) {
    GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  }
  FaultRegistry::Global().Arm("test.status", FaultSpec::Once());
  (void)HitStatus();
  rdbms::OperatorPtr scan = telemetry::MetricsScan();
  Result<std::vector<std::string>> rows = rdbms::CollectStrings(scan.get());
  ASSERT_TRUE(rows.ok());
  bool found = false;
  for (const std::string& row : rows.value()) {
    found |= row.find("fsdm_fault_injections_total") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace fsdm::fault
