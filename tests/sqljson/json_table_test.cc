#include "sqljson/json_table.h"

#include <gtest/gtest.h>

#include "rdbms/executor.h"

namespace fsdm::sqljson {
namespace {

using rdbms::Col;
using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Row;
using rdbms::Schema;
using rdbms::Table;
using fsdm::Value;

// Documents exercising the paper's Table 3 / Table 5 shapes: nested child
// hierarchy (items.parts) and sibling hierarchy (discount_items).
constexpr const char* kDoc1 =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08",
        "items":[{"name":"phone","price":100,"quantity":2},
                 {"name":"ipad","price":350.86,"quantity":3}]}})";

constexpr const char* kDoc3 =
    R"({"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35",
        "items":[
          {"name":"TV","price":345.55,"quantity":1,
           "parts":[{"partName":"remoteCon","partQuantity":"1"}]},
          {"name":"PC","price":546.78,"quantity":10,
           "parts":[{"partName":"mouse","partQuantity":"2"},
                    {"partName":"keyboard","partQuantity":"1"}]}]}})";

constexpr const char* kDoc5 =
    R"({"purchaseOrder":{"id":5,"podate":"2015-08-03",
        "items":[{"name":"monitor","price":100,"quantity":1}],
        "discount_items":[{"dis_itemName":"lamp","dis_itemPrice":10}]}})";

constexpr const char* kDocNoItems =
    R"({"purchaseOrder":{"id":9,"podate":"2016-01-01"}})";

std::unique_ptr<Table> MakeTable(std::vector<const char*> docs) {
  auto table = std::make_unique<Table>(
      "PO", std::vector<ColumnDef>{
                {.name = "DID", .type = ColumnType::kNumber},
                {.name = "JDOC",
                 .type = ColumnType::kJson,
                 .check_is_json = true},
            });
  int64_t id = 1;
  for (const char* doc : docs) {
    EXPECT_TRUE(table->Insert({Value::Int64(id++), Value::String(doc)}).ok());
  }
  return table;
}

std::vector<std::string> RunPlan(rdbms::OperatorPtr plan) {
  Result<std::vector<std::string>> r = rdbms::CollectStrings(plan.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<std::string>{};
}

JsonTableDef ItemsDef() {
  JsonTableDef def;
  def.row_path = "$";
  def.columns = {{"po_id", "$.purchaseOrder.id", Returning::kNumber},
                 {"podate", "$.purchaseOrder.podate", Returning::kString}};
  JsonTableDef items;
  items.row_path = "$.purchaseOrder.items[*]";
  items.columns = {{"name", "$.name", Returning::kString},
                   {"price", "$.price", Returning::kNumber},
                   {"quantity", "$.quantity", Returning::kNumber}};
  def.nested.push_back(std::move(items));
  return def;
}

TEST(JsonTableTest, UnnestsArraysWithMasterRepetition) {
  auto table = MakeTable({kDoc1});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      ItemsDef());
  ASSERT_TRUE(jt.ok()) << jt.status().ToString();
  auto plan =
      rdbms::Project(jt.MoveValue(), {{"DID", Col("DID")},
                                      {"po_id", Col("po_id")},
                                      {"name", Col("name")},
                                      {"price", Col("price")}});
  EXPECT_EQ(RunPlan(std::move(plan)),
            (std::vector<std::string>{"1|1|phone|100", "1|1|ipad|350.86"}));
}

TEST(JsonTableTest, OutputSchemaOrder) {
  auto table = MakeTable({kDoc1});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      ItemsDef())
                .MoveValue();
  EXPECT_EQ(jt->schema().columns(),
            (std::vector<std::string>{"DID", "JDOC", "po_id", "podate",
                                      "name", "price", "quantity"}));
}

TEST(JsonTableTest, LeftOuterJoinKeepsMasterWithoutDetails) {
  auto table = MakeTable({kDocNoItems});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      ItemsDef());
  auto plan = rdbms::Project(
      jt.MoveValue(),
      {{"po_id", Col("po_id")}, {"name", Col("name")}});
  EXPECT_EQ(RunPlan(std::move(plan)), std::vector<std::string>{"9|NULL"});
}

TEST(JsonTableTest, DoublyNestedPathsRecurse) {
  // items -> parts, the "grow deeper" case of Table 3.
  JsonTableDef def;
  def.columns = {{"po_id", "$.purchaseOrder.id", Returning::kNumber}};
  JsonTableDef items;
  items.row_path = "$.purchaseOrder.items[*]";
  items.columns = {{"name", "$.name", Returning::kString}};
  JsonTableDef parts;
  parts.row_path = "$.parts[*]";
  parts.columns = {{"partName", "$.partName", Returning::kString},
                   {"partQuantity", "$.partQuantity", Returning::kNumber}};
  items.nested.push_back(std::move(parts));
  def.nested.push_back(std::move(items));

  auto table = MakeTable({kDoc3});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      def);
  auto plan = rdbms::Project(jt.MoveValue(), {{"po_id", Col("po_id")},
                                              {"name", Col("name")},
                                              {"pn", Col("partName")},
                                              {"pq", Col("partQuantity")}});
  EXPECT_EQ(RunPlan(std::move(plan)),
            (std::vector<std::string>{"3|TV|remoteCon|1", "3|PC|mouse|2",
                                      "3|PC|keyboard|1"}));
}

TEST(JsonTableTest, SiblingNestedPathsUnionJoin) {
  // items and discount_items are sibling hierarchies: rows from one carry
  // NULLs for the other (§3.3.2's union join).
  JsonTableDef def;
  def.columns = {{"po_id", "$.purchaseOrder.id", Returning::kNumber}};
  JsonTableDef items;
  items.row_path = "$.purchaseOrder.items[*]";
  items.columns = {{"name", "$.name", Returning::kString}};
  JsonTableDef discounts;
  discounts.row_path = "$.purchaseOrder.discount_items[*]";
  discounts.columns = {{"dis_itemName", "$.dis_itemName", Returning::kString},
                       {"dis_itemPrice", "$.dis_itemPrice",
                        Returning::kNumber}};
  def.nested.push_back(std::move(items));
  def.nested.push_back(std::move(discounts));

  auto table = MakeTable({kDoc5});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      def);
  auto plan = rdbms::Project(
      jt.MoveValue(), {{"po_id", Col("po_id")},
                       {"name", Col("name")},
                       {"dn", Col("dis_itemName")},
                       {"dp", Col("dis_itemPrice")}});
  EXPECT_EQ(RunPlan(std::move(plan)),
            (std::vector<std::string>{"5|monitor|NULL|NULL",
                                      "5|NULL|lamp|10"}));
}

TEST(JsonTableTest, MultipleInputRowsAndStorages) {
  auto table = MakeTable({kDoc1, kDoc3, kDocNoItems});
  for (JsonStorage storage :
       {JsonStorage::kText, JsonStorage::kOson, JsonStorage::kBson}) {
    rdbms::OperatorPtr source;
    if (storage == JsonStorage::kText) {
      source = rdbms::Scan(table.get());
    } else {
      // Re-encode the text column on the fly.
      rdbms::ExprPtr enc = storage == JsonStorage::kOson
                               ? OsonConstructor("JDOC")
                               : BsonConstructor("JDOC");
      source = rdbms::Project(rdbms::Scan(table.get()),
                              {{"DID", Col("DID")}, {"JDOC", enc}});
    }
    auto jt = JsonTable(std::move(source), "JDOC", storage, ItemsDef());
    ASSERT_TRUE(jt.ok());
    auto plan = rdbms::Project(jt.MoveValue(), {{"po_id", Col("po_id")},
                                                {"name", Col("name")}});
    EXPECT_EQ(RunPlan(std::move(plan)),
              (std::vector<std::string>{"1|phone", "1|ipad", "3|TV", "3|PC",
                                        "9|NULL"}))
        << "storage=" << static_cast<int>(storage);
  }
}

TEST(JsonTableTest, AggregationOverJsonTable) {
  // SELECT count(*), sum(price*quantity) FROM po_item_dmdv.
  auto table = MakeTable({kDoc1, kDoc3});
  auto jt = JsonTable(rdbms::Scan(table.get()), "JDOC", JsonStorage::kText,
                      ItemsDef());
  std::vector<rdbms::AggSpec> aggs;
  aggs.push_back({rdbms::AggSpec::Kind::kCountStar, nullptr, "cnt"});
  aggs.push_back({rdbms::AggSpec::Kind::kSum,
                  rdbms::Mul(Col("price"), Col("quantity")), "total"});
  auto plan = rdbms::GroupBy(jt.MoveValue(), {}, {}, std::move(aggs));
  std::vector<std::string> rows = RunPlan(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  // 100*2 + 350.86*3 + 345.55*1 + 546.78*10 = 200+1052.58+345.55+5467.8
  EXPECT_EQ(rows[0], "4|7065.93");
}

TEST(JsonTableTest, MissingJsonColumnFailsAtOpen) {
  auto table = MakeTable({kDoc1});
  auto jt = JsonTable(rdbms::Scan(table.get()), "NOPE", JsonStorage::kText,
                      ItemsDef());
  ASSERT_TRUE(jt.ok());  // detected at Open
  rdbms::OperatorPtr plan = jt.MoveValue();
  EXPECT_FALSE(plan->Open().ok());
}

TEST(JsonTableTest, BadPathFailsAtConstruction) {
  JsonTableDef def;
  def.row_path = "totally wrong";
  auto table = MakeTable({kDoc1});
  EXPECT_FALSE(JsonTable(rdbms::Scan(table.get()), "JDOC",
                         JsonStorage::kText, def)
                   .ok());
}

}  // namespace
}  // namespace fsdm::sqljson
