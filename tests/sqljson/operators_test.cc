#include "sqljson/operators.h"

#include <gtest/gtest.h>

#include "rdbms/executor.h"

namespace fsdm::sqljson {
namespace {

using rdbms::Col;
using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Row;
using rdbms::Schema;
using rdbms::Table;
using fsdm::Value;

constexpr const char* kPo =
    R"({"purchaseOrder":{"id":7,"podate":"2015-03-04","reference":"ACME-7",)"
    R"("items":[{"name":"table","price":52.78,"quantity":2},)"
    R"({"name":"chair","price":35.24,"quantity":4}]}})";

// A table with the same document in all three storages.
class OperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "PO", std::vector<ColumnDef>{
                  {.name = "DID", .type = ColumnType::kNumber},
                  {.name = "JTEXT",
                   .type = ColumnType::kJson,
                   .check_is_json = true},
              });
    ColumnDef oson_vc;
    oson_vc.name = "JOSON";
    oson_vc.type = ColumnType::kRaw;
    oson_vc.virtual_expr = OsonConstructor("JTEXT");
    ASSERT_TRUE(table_->AddVirtualColumn(oson_vc).ok());
    ColumnDef bson_vc;
    bson_vc.name = "JBSON";
    bson_vc.type = ColumnType::kRaw;
    bson_vc.virtual_expr = BsonConstructor("JTEXT");
    ASSERT_TRUE(table_->AddVirtualColumn(bson_vc).ok());
    ASSERT_TRUE(
        table_->Insert({Value::Int64(1), Value::String(kPo)}).ok());
  }

  Value EvalExpr(const rdbms::ExprPtr& expr) {
    Row row = table_->MaterializeRow(0).MoveValue();
    Schema schema = table_->OutputSchema();
    rdbms::RowContext ctx{&schema, &row};
    Result<Value> r = expr->Eval(ctx);
    EXPECT_TRUE(r.ok()) << expr->ToString() << ": " << r.status().ToString();
    return r.ok() ? r.MoveValue() : Value::Null();
  }

  std::unique_ptr<Table> table_;
};

struct StorageCase {
  const char* column;
  JsonStorage storage;
};

TEST_F(OperatorsTest, JsonValueAcrossStorages) {
  for (StorageCase sc : {StorageCase{"JTEXT", JsonStorage::kText},
                         StorageCase{"JOSON", JsonStorage::kOson},
                         StorageCase{"JBSON", JsonStorage::kBson}}) {
    auto id = JsonValue(sc.column, "$.purchaseOrder.id", sc.storage)
                  .MoveValue();
    EXPECT_EQ(EvalExpr(id).AsInt64(), 7) << sc.column;
    auto ref =
        JsonValue(sc.column, "$.purchaseOrder.reference", sc.storage)
            .MoveValue();
    EXPECT_EQ(EvalExpr(ref).AsString(), "ACME-7") << sc.column;
    auto missing =
        JsonValue(sc.column, "$.purchaseOrder.ghost", sc.storage).MoveValue();
    EXPECT_TRUE(EvalExpr(missing).is_null()) << sc.column;
    // Non-scalar target -> NULL (NULL ON ERROR).
    auto items =
        JsonValue(sc.column, "$.purchaseOrder.items", sc.storage).MoveValue();
    EXPECT_TRUE(EvalExpr(items).is_null()) << sc.column;
  }
}

TEST_F(OperatorsTest, JsonValueReturningCoercions) {
  auto as_number = JsonValue("JTEXT", "$.purchaseOrder.podate",
                             JsonStorage::kText, Returning::kNumber)
                       .MoveValue();
  EXPECT_TRUE(EvalExpr(as_number).is_null());  // not a number

  auto num_str = JsonValue("JTEXT", "$.purchaseOrder.id", JsonStorage::kText,
                           Returning::kString)
                     .MoveValue();
  EXPECT_EQ(EvalExpr(num_str).AsString(), "7");

  auto price_num =
      JsonValue("JTEXT", "$.purchaseOrder.items[0].price", JsonStorage::kText,
                Returning::kNumber)
          .MoveValue();
  EXPECT_EQ(EvalExpr(price_num).AsDecimal().ToString(), "52.78");
}

TEST_F(OperatorsTest, JsonExists) {
  for (StorageCase sc : {StorageCase{"JTEXT", JsonStorage::kText},
                         StorageCase{"JOSON", JsonStorage::kOson},
                         StorageCase{"JBSON", JsonStorage::kBson}}) {
    EXPECT_TRUE(EvalExpr(JsonExists(sc.column, "$.purchaseOrder.items",
                                    sc.storage)
                             .MoveValue())
                    .AsBool());
    EXPECT_FALSE(EvalExpr(JsonExists(sc.column, "$.purchaseOrder.foreign_id",
                                     sc.storage)
                              .MoveValue())
                     .AsBool());
    EXPECT_TRUE(
        EvalExpr(JsonExists(sc.column,
                            "$.purchaseOrder.items[*]?(@.price > 50)",
                            sc.storage)
                     .MoveValue())
            .AsBool());
  }
}

TEST_F(OperatorsTest, JsonQuerySerializesSubtree) {
  auto q = JsonQuery("JTEXT", "$.purchaseOrder.items[1]", JsonStorage::kText)
               .MoveValue();
  EXPECT_EQ(EvalExpr(q).AsString(),
            R"({"name":"chair","price":35.24,"quantity":4})");
  auto arr = JsonQuery("JOSON", "$.purchaseOrder.items[*].quantity",
                       JsonStorage::kOson)
                 .MoveValue();
  EXPECT_EQ(EvalExpr(arr).AsString(), "2");  // first match
  auto none =
      JsonQuery("JTEXT", "$.nothing", JsonStorage::kText).MoveValue();
  EXPECT_TRUE(EvalExpr(none).is_null());
}

TEST_F(OperatorsTest, JsonTextContains) {
  auto yes = JsonTextContains("JTEXT", "$.purchaseOrder.items[*].name",
                              "CHAIR", JsonStorage::kText)
                 .MoveValue();
  EXPECT_TRUE(EvalExpr(yes).AsBool());
  auto no = JsonTextContains("JTEXT", "$.purchaseOrder.items[*].name",
                             "sofa", JsonStorage::kText)
                .MoveValue();
  EXPECT_FALSE(EvalExpr(no).AsBool());
  // Numbers are not text-searchable.
  auto num = JsonTextContains("JTEXT", "$.purchaseOrder.items[*].price",
                              "52", JsonStorage::kText)
                 .MoveValue();
  EXPECT_FALSE(EvalExpr(num).AsBool());
}

TEST_F(OperatorsTest, ConstructorsProduceValidImages) {
  Value oson = EvalExpr(OsonConstructor("JTEXT"));
  ASSERT_EQ(oson.type(), ScalarType::kBinary);
  EXPECT_TRUE(oson::OsonDom::Open(oson.AsBinary()).ok());
  Value bson = EvalExpr(BsonConstructor("JTEXT"));
  ASSERT_EQ(bson.type(), ScalarType::kBinary);
  EXPECT_TRUE(bson::BsonDom::Open(bson.AsBinary()).ok());
}

TEST_F(OperatorsTest, BadPathFailsAtConstruction) {
  EXPECT_FALSE(JsonValue("JTEXT", "not-a-path", JsonStorage::kText).ok());
  EXPECT_FALSE(JsonExists("JTEXT", "$.[", JsonStorage::kText).ok());
}

TEST_F(OperatorsTest, NullDocumentYieldsNullOrFalse) {
  ASSERT_TRUE(table_->Insert({Value::Int64(2), Value::Null()}).ok());
  Row row = table_->MaterializeRow(1).MoveValue();
  Schema schema = table_->OutputSchema();
  rdbms::RowContext ctx{&schema, &row};
  auto jv = JsonValue("JTEXT", "$.a", JsonStorage::kText).MoveValue();
  EXPECT_TRUE(jv->Eval(ctx).MoveValue().is_null());
  auto je = JsonExists("JTEXT", "$.a", JsonStorage::kText).MoveValue();
  EXPECT_FALSE(je->Eval(ctx).MoveValue().AsBool());
}


TEST_F(OperatorsTest, EnsureHiddenOsonColumn) {
  Result<std::string> name = EnsureHiddenOsonColumn(table_.get(), "JTEXT");
  ASSERT_TRUE(name.ok()) << name.status().ToString();
  EXPECT_EQ(name.value(), "JTEXT$OSON");
  // Idempotent.
  EXPECT_EQ(EnsureHiddenOsonColumn(table_.get(), "JTEXT").value(),
            "JTEXT$OSON");
  // Hidden: absent from the default schema, present with hidden columns.
  EXPECT_EQ(table_->OutputSchema(false).IndexOf("JTEXT$OSON"),
            rdbms::Schema::npos);
  EXPECT_NE(table_->OutputSchema(true).IndexOf("JTEXT$OSON"),
            rdbms::Schema::npos);
  // Queries against the rewritten column produce the same answers.
  auto via_oson =
      JsonValue("JTEXT$OSON", "$.purchaseOrder.id", JsonStorage::kOson)
          .MoveValue();
  rdbms::Row row = table_->MaterializeRow(0, /*include_hidden=*/true)
                       .MoveValue();
  rdbms::Schema schema = table_->OutputSchema(true);
  rdbms::RowContext ctx{&schema, &row};
  EXPECT_EQ(via_oson->Eval(ctx).MoveValue().AsInt64(), 7);
  // Non-JSON columns rejected.
  EXPECT_FALSE(EnsureHiddenOsonColumn(table_.get(), "DID").ok());
  EXPECT_FALSE(EnsureHiddenOsonColumn(table_.get(), "NOPE").ok());
}

TEST_F(OperatorsTest, WorksInsideFilterPlan) {
  // SELECT DID FROM PO WHERE JSON_EXISTS(...) — the pushed-down predicate
  // shape of §6.3.
  auto exists =
      JsonExists("JTEXT", "$.purchaseOrder.items[*]?(@.quantity >= 4)",
                 JsonStorage::kText)
          .MoveValue();
  auto plan = rdbms::Project(
      rdbms::Filter(rdbms::Scan(table_.get()), exists), {{"DID", Col("DID")}});
  Result<std::vector<Row>> rows = rdbms::Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0].AsInt64(), 1);
}

}  // namespace
}  // namespace fsdm::sqljson
