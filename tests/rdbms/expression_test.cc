#include "rdbms/expression.h"

#include <gtest/gtest.h>

namespace fsdm::rdbms {
namespace {

Value EvalOn(const ExprPtr& expr, const Schema& schema, const Row& row) {
  RowContext ctx{&schema, &row};
  Result<Value> r = expr->Eval(ctx);
  EXPECT_TRUE(r.ok()) << expr->ToString() << ": " << r.status().ToString();
  return r.ok() ? r.MoveValue() : Value::Null();
}

class ExpressionTest : public ::testing::Test {
 protected:
  Schema schema_{std::vector<std::string>{"a", "b", "s"}};
  Row row_{Value::Int64(10), Value::Dec(Decimal::FromString("2.5").MoveValue()),
           Value::String("hello-world")};
};

TEST_F(ExpressionTest, LiteralAndColumn) {
  EXPECT_EQ(EvalOn(Lit(Value::Int64(5)), schema_, row_).AsInt64(), 5);
  EXPECT_EQ(EvalOn(Col("a"), schema_, row_).AsInt64(), 10);
  EXPECT_EQ(EvalOn(Col("s"), schema_, row_).AsString(), "hello-world");
}

TEST_F(ExpressionTest, UnknownColumnErrors) {
  RowContext ctx{&schema_, &row_};
  EXPECT_FALSE(Col("zzz")->Eval(ctx).ok());
  ExprPtr c = Col("zzz");
  EXPECT_FALSE(c->Bind(schema_).ok());
}

TEST_F(ExpressionTest, BindAcceleratesColumn) {
  ExprPtr c = Col("b");
  ASSERT_TRUE(c->Bind(schema_).ok());
  EXPECT_EQ(EvalOn(c, schema_, row_).AsDecimal().ToString(), "2.5");
}

TEST_F(ExpressionTest, Comparisons) {
  EXPECT_TRUE(EvalOn(Gt(Col("a"), Lit(Value::Int64(5))), schema_, row_).AsBool());
  EXPECT_FALSE(EvalOn(Lt(Col("a"), Lit(Value::Int64(5))), schema_, row_).AsBool());
  EXPECT_TRUE(EvalOn(Eq(Col("s"), Lit(Value::String("hello-world"))), schema_,
                     row_)
                  .AsBool());
  // Mixed numeric kinds compare exactly.
  EXPECT_TRUE(EvalOn(Gt(Col("a"), Col("b")), schema_, row_).AsBool());
}

TEST_F(ExpressionTest, NullComparisonsAreUnknown) {
  Row row{Value::Null(), Value::Int64(1), Value::Null()};
  EXPECT_TRUE(EvalOn(Eq(Col("a"), Lit(Value::Int64(0))), schema_, row).is_null());
  EXPECT_TRUE(EvalOn(IsNull(Col("a")), schema_, row).AsBool());
  EXPECT_FALSE(EvalOn(IsNotNull(Col("a")), schema_, row).AsBool());
}

TEST_F(ExpressionTest, ThreeValuedLogic) {
  Row row{Value::Null(), Value::Int64(1), Value::String("x")};
  ExprPtr unknown = Eq(Col("a"), Lit(Value::Int64(0)));
  // UNKNOWN AND FALSE = FALSE.
  EXPECT_FALSE(
      EvalOn(And(unknown, Lit(Value::Bool(false))), schema_, row).AsBool());
  // UNKNOWN AND TRUE = UNKNOWN.
  EXPECT_TRUE(
      EvalOn(And(unknown, Lit(Value::Bool(true))), schema_, row).is_null());
  // UNKNOWN OR TRUE = TRUE.
  EXPECT_TRUE(
      EvalOn(Or(unknown, Lit(Value::Bool(true))), schema_, row).AsBool());
  // NOT UNKNOWN = UNKNOWN.
  EXPECT_TRUE(EvalOn(Not(unknown), schema_, row).is_null());
}

TEST_F(ExpressionTest, Arithmetic) {
  EXPECT_EQ(EvalOn(Add(Col("a"), Lit(Value::Int64(5))), schema_, row_)
                .AsInt64(),
            15);
  EXPECT_EQ(EvalOn(Mul(Col("a"), Col("b")), schema_, row_)
                .AsDecimal()
                .ToString(),
            "25");
  EXPECT_DOUBLE_EQ(
      EvalOn(Div(Col("a"), Lit(Value::Int64(4))), schema_, row_).AsDouble(),
      2.5);
  RowContext ctx{&schema_, &row_};
  EXPECT_FALSE(Div(Col("a"), Lit(Value::Int64(0)))->Eval(ctx).ok());
  EXPECT_FALSE(Add(Col("s"), Lit(Value::Int64(1)))->Eval(ctx).ok());
}

TEST_F(ExpressionTest, Int64OverflowFallsBackToDecimal) {
  Row row{Value::Int64(INT64_MAX), Value::Int64(1), Value::Null()};
  Value v = EvalOn(Add(Col("a"), Col("b")), schema_, row);
  EXPECT_EQ(v.type(), ScalarType::kDecimal);
  EXPECT_EQ(v.AsDecimal().ToString(), "9223372036854775808");
}

TEST_F(ExpressionTest, InList) {
  ExprPtr in = In(Col("a"), {Value::Int64(1), Value::Int64(10)});
  EXPECT_TRUE(EvalOn(in, schema_, row_).AsBool());
  ExprPtr not_in = In(Col("a"), {Value::Int64(1), Value::Int64(2)});
  EXPECT_FALSE(EvalOn(not_in, schema_, row_).AsBool());
  // x IN (..., NULL) is UNKNOWN when unmatched.
  ExprPtr with_null = In(Col("a"), {Value::Int64(1), Value::Null()});
  EXPECT_TRUE(EvalOn(with_null, schema_, row_).is_null());
}

TEST_F(ExpressionTest, StringFunctions) {
  EXPECT_EQ(EvalOn(Func("SUBSTR", {Col("s"), Lit(Value::Int64(7))}), schema_,
                   row_)
                .AsString(),
            "world");
  EXPECT_EQ(EvalOn(Func("SUBSTR", {Col("s"), Lit(Value::Int64(1)),
                                   Lit(Value::Int64(5))}),
                   schema_, row_)
                .AsString(),
            "hello");
  EXPECT_EQ(EvalOn(Func("INSTR", {Col("s"), Lit(Value::String("-"))}),
                   schema_, row_)
                .AsInt64(),
            6);
  EXPECT_EQ(EvalOn(Func("INSTR", {Col("s"), Lit(Value::String("zz"))}),
                   schema_, row_)
                .AsInt64(),
            0);
  EXPECT_EQ(EvalOn(Func("LENGTH", {Col("s")}), schema_, row_).AsInt64(), 11);
  EXPECT_EQ(EvalOn(Func("UPPER", {Col("s")}), schema_, row_).AsString(),
            "HELLO-WORLD");
  EXPECT_EQ(EvalOn(Func("TO_NUMBER", {Lit(Value::String("42.5"))}), schema_,
                   row_)
                .AsDecimal()
                .ToString(),
            "42.5");
  EXPECT_EQ(EvalOn(Func("NVL", {Lit(Value::Null()), Lit(Value::Int64(9))}),
                   schema_, row_)
                .AsInt64(),
            9);
}

TEST_F(ExpressionTest, OracleSubstrEdgeCases) {
  Row row{Value::Int64(0), Value::Int64(0), Value::String("abcdef")};
  // Negative position counts from the end.
  EXPECT_EQ(EvalOn(Func("SUBSTR", {Col("s"), Lit(Value::Int64(-2))}), schema_,
                   row)
                .AsString(),
            "ef");
  // Position past the end -> NULL.
  EXPECT_TRUE(EvalOn(Func("SUBSTR", {Col("s"), Lit(Value::Int64(10))}),
                     schema_, row)
                  .is_null());
}

TEST_F(ExpressionTest, ToStringForms) {
  EXPECT_EQ(Gt(Col("a"), Lit(Value::Int64(5)))->ToString(), "(a > 5)");
  EXPECT_EQ(Func("SUBSTR", {Col("s"), Lit(Value::Int64(1))})->ToString(),
            "SUBSTR(s, 1)");
  EXPECT_EQ(And(Lit(Value::Bool(true)), Lit(Value::Bool(false)))->ToString(),
            "(true AND false)");
}

}  // namespace
}  // namespace fsdm::rdbms
