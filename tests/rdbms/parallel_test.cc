#include "rdbms/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "rdbms/executor.h"
#include "telemetry/activity.h"

namespace fsdm::rdbms {
namespace {

/// One child emitting `count` rows (base, base+1, ...) so merged output
/// order is checkable.
OperatorPtr NumberSource(int64_t base, int64_t count) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < count; ++i) {
    rows.push_back({Value::Int64(base + i)});
  }
  return Values(Schema({"N"}), std::move(rows));
}

std::vector<int64_t> DrainInts(Operator* op) {
  auto rows = Collect(op);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<int64_t> out;
  if (rows.ok()) {
    for (const Row& row : rows.value()) out.push_back(row[0].AsInt64());
  }
  return out;
}

TEST(WorkerPoolTest, DefaultWorkerCountIsClamped) {
  size_t n = WorkerPool::DefaultWorkerCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

TEST(WorkerPoolTest, SubmitRunsTasksAndResizeSurvives) {
  WorkerPool& pool = WorkerPool::Global();
  pool.Resize(2);
  EXPECT_EQ(pool.worker_count(), 2u);

  std::atomic<int> ran{0};
  std::atomic<bool> worker_index_ok{true};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      int w = WorkerPool::CurrentWorkerIndex();
      if (w < 0 || w >= 2) worker_index_ok = false;
      ran.fetch_add(1);
    });
  }
  // Resize joins the outstanding queue before relaunching, so all 32
  // tasks have run by the time it returns.
  pool.Resize(4);
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(worker_index_ok.load());
  EXPECT_EQ(pool.worker_count(), 4u);
}

TEST(WorkerPoolTest, CurrentWorkerIndexIsMinusOneOffPool) {
  EXPECT_EQ(WorkerPool::CurrentWorkerIndex(), -1);
}

TEST(ParallelUnionTest, PreservesChildOrderExactly) {
  // The parallel drain must return byte-identical output to a sequential
  // UnionAll: child 0's rows first, in child 0's order, then child 1's...
  std::vector<OperatorPtr> par_children, seq_children;
  for (int64_t c = 0; c < 8; ++c) {
    par_children.push_back(NumberSource(c * 100, 25));
    seq_children.push_back(NumberSource(c * 100, 25));
  }
  auto par = ParallelUnionAll(std::move(par_children));
  auto seq = UnionAll(std::move(seq_children));
  EXPECT_EQ(DrainInts(par.get()), DrainInts(seq.get()));
}

TEST(ParallelUnionTest, SingleChildAndEmptyChildren) {
  auto one = ParallelUnionAll([] {
    std::vector<OperatorPtr> cs;
    cs.push_back(NumberSource(7, 3));
    return cs;
  }());
  EXPECT_EQ(DrainInts(one.get()), (std::vector<int64_t>{7, 8, 9}));

  // Children that emit nothing still merge cleanly.
  std::vector<OperatorPtr> empties;
  empties.push_back(NumberSource(0, 0));
  empties.push_back(NumberSource(0, 0));
  auto none = ParallelUnionAll(std::move(empties));
  EXPECT_TRUE(DrainInts(none.get()).empty());
}

TEST(ParallelUnionTest, ReOpenReplaysFromScratch) {
  std::vector<OperatorPtr> children;
  children.push_back(NumberSource(1, 4));
  children.push_back(NumberSource(10, 4));
  auto op = ParallelUnionAll(std::move(children));
  std::vector<int64_t> first = DrainInts(op.get());
  std::vector<int64_t> second = DrainInts(op.get());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 8u);
}

TEST(ParallelUnionTest, OnMorselDoneSeesEveryChildWithWorkerId) {
  std::vector<std::atomic<int>> workers(6);
  for (auto& w : workers) w = -2;  // sentinel: callback never ran
  std::vector<OperatorPtr> children;
  for (int64_t c = 0; c < 6; ++c) children.push_back(NumberSource(c, 5));
  auto op = ParallelUnionAll(
      std::move(children),
      [&](size_t child, int worker) { workers[child] = worker; });
  EXPECT_EQ(DrainInts(op.get()).size(), 30u);
  size_t max_w = WorkerPool::Global().worker_count();
  for (const auto& w : workers) {
    EXPECT_GE(w.load(), 0);
    EXPECT_LT(static_cast<size_t>(w.load()), max_w);
  }
}

TEST(ParallelUnionTest, ErrorInOneChildSurfacesFromDrain) {
  // A child whose Open fails: Values can't fail, so use a probe operator.
  class FailingOp final : public Operator {
   public:
    FailingOp() { schema_ = Schema({"N"}); }
    Status Open() override { return Status::Internal("boom"); }
    Result<bool> Next(Row*) override { return false; }
    void Close() override {}
  };
  std::vector<OperatorPtr> children;
  children.push_back(NumberSource(0, 3));
  children.push_back(std::make_unique<FailingOp>());
  children.push_back(NumberSource(10, 3));
  auto op = ParallelUnionAll(std::move(children));
  auto rows = Collect(op.get());
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("boom"), std::string::npos);
}

TEST(ParallelUnionTest, ResizeWhileQueriesDrainKeepsOrderAndNoDanglingActivity) {
  // ISSUE 7 satellite: shrink and grow the pool while parallel queries are
  // draining on other threads. Every drain must still return its children's
  // rows in child order with valid worker stamps, and once the drains
  // finish no activity record may be left active (the RAII leases released
  // on every path).
  WorkerPool& pool = WorkerPool::Global();
  pool.Resize(4);

  constexpr int kDrivers = 3;
  constexpr int kIters = 12;
  std::atomic<bool> order_ok{true};
  std::atomic<bool> workers_ok{true};
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&, d] {
      for (int it = 0; it < kIters; ++it) {
        std::vector<OperatorPtr> children;
        std::atomic<int> stamped{0};
        for (int64_t c = 0; c < 6; ++c) {
          children.push_back(ActivityScope(
              NumberSource(c * 100, 20), "RESIZE_" + std::to_string(d),
              "values", "morsel.drain", "q", static_cast<int>(c)));
        }
        auto op = ParallelUnionAll(
            std::move(children), [&](size_t, int worker) {
              if (worker < 0) workers_ok = false;
              stamped.fetch_add(1);
            });
        std::vector<int64_t> got = DrainInts(op.get());
        std::vector<int64_t> want;
        for (int64_t c = 0; c < 6; ++c) {
          for (int64_t i = 0; i < 20; ++i) want.push_back(c * 100 + i);
        }
        if (got != want) order_ok = false;
        if (stamped.load() != 6) workers_ok = false;
      }
    });
  }
  // Churn the pool size under the drains: each Resize drains the queue,
  // joins the old workers and relaunches — drains in flight must ride
  // through the worker-index reshuffle.
  for (size_t w : {2u, 6u, 1u, 4u}) {
    pool.Resize(w);
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_TRUE(order_ok.load());
  EXPECT_TRUE(workers_ok.load());
  pool.Resize(4);  // final barrier: everything submitted has run
  EXPECT_EQ(telemetry::ActivityRegistry::Global().ActiveCount(), 0u);
}

TEST(ParallelUnionTest, ActivityScopeForwardsRowsAndReleasesOnOpenFailure) {
  // Transparent wrapper: same rows, same schema.
  auto wrapped = ActivityScope(NumberSource(5, 3), "COLL", "values",
                               "morsel.drain", "q", /*shard=*/0);
  EXPECT_EQ(wrapped->schema().columns(), std::vector<std::string>{"N"});
  EXPECT_EQ(DrainInts(wrapped.get()), (std::vector<int64_t>{5, 6, 7}));
  EXPECT_EQ(telemetry::ActivityRegistry::Global().ActiveCount(), 0u);

  // A child whose Open fails never sees Close(); the scope must release
  // its lease on that path too (ISSUE 7 satellite f).
  class FailingOp final : public Operator {
   public:
    FailingOp() { schema_ = Schema({"N"}); }
    Status Open() override { return Status::Internal("open-fail"); }
    Result<bool> Next(Row*) override { return false; }
    void Close() override {}
  };
  auto failing = ActivityScope(std::make_unique<FailingOp>(), "COLL",
                               "values", "morsel.drain", "q", 0);
  EXPECT_FALSE(failing->Open().ok());
  EXPECT_EQ(telemetry::ActivityRegistry::Global().ActiveCount(), 0u);

  // An abandoned drain (Open ok, no Close) releases via the destructor.
  {
    auto abandoned = ActivityScope(NumberSource(0, 2), "COLL", "values",
                                   "morsel.drain", "q", 0);
    ASSERT_TRUE(abandoned->Open().ok());
    if (telemetry::kEnabled) {
      EXPECT_EQ(telemetry::ActivityRegistry::Global().ActiveCount(), 1u);
    }
  }
  EXPECT_EQ(telemetry::ActivityRegistry::Global().ActiveCount(), 0u);
}

}  // namespace
}  // namespace fsdm::rdbms
