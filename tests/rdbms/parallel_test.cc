#include "rdbms/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "rdbms/executor.h"

namespace fsdm::rdbms {
namespace {

/// One child emitting `count` rows (base, base+1, ...) so merged output
/// order is checkable.
OperatorPtr NumberSource(int64_t base, int64_t count) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < count; ++i) {
    rows.push_back({Value::Int64(base + i)});
  }
  return Values(Schema({"N"}), std::move(rows));
}

std::vector<int64_t> DrainInts(Operator* op) {
  auto rows = Collect(op);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<int64_t> out;
  if (rows.ok()) {
    for (const Row& row : rows.value()) out.push_back(row[0].AsInt64());
  }
  return out;
}

TEST(WorkerPoolTest, DefaultWorkerCountIsClamped) {
  size_t n = WorkerPool::DefaultWorkerCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

TEST(WorkerPoolTest, SubmitRunsTasksAndResizeSurvives) {
  WorkerPool& pool = WorkerPool::Global();
  pool.Resize(2);
  EXPECT_EQ(pool.worker_count(), 2u);

  std::atomic<int> ran{0};
  std::atomic<bool> worker_index_ok{true};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      int w = WorkerPool::CurrentWorkerIndex();
      if (w < 0 || w >= 2) worker_index_ok = false;
      ran.fetch_add(1);
    });
  }
  // Resize joins the outstanding queue before relaunching, so all 32
  // tasks have run by the time it returns.
  pool.Resize(4);
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(worker_index_ok.load());
  EXPECT_EQ(pool.worker_count(), 4u);
}

TEST(WorkerPoolTest, CurrentWorkerIndexIsMinusOneOffPool) {
  EXPECT_EQ(WorkerPool::CurrentWorkerIndex(), -1);
}

TEST(ParallelUnionTest, PreservesChildOrderExactly) {
  // The parallel drain must return byte-identical output to a sequential
  // UnionAll: child 0's rows first, in child 0's order, then child 1's...
  std::vector<OperatorPtr> par_children, seq_children;
  for (int64_t c = 0; c < 8; ++c) {
    par_children.push_back(NumberSource(c * 100, 25));
    seq_children.push_back(NumberSource(c * 100, 25));
  }
  auto par = ParallelUnionAll(std::move(par_children));
  auto seq = UnionAll(std::move(seq_children));
  EXPECT_EQ(DrainInts(par.get()), DrainInts(seq.get()));
}

TEST(ParallelUnionTest, SingleChildAndEmptyChildren) {
  auto one = ParallelUnionAll([] {
    std::vector<OperatorPtr> cs;
    cs.push_back(NumberSource(7, 3));
    return cs;
  }());
  EXPECT_EQ(DrainInts(one.get()), (std::vector<int64_t>{7, 8, 9}));

  // Children that emit nothing still merge cleanly.
  std::vector<OperatorPtr> empties;
  empties.push_back(NumberSource(0, 0));
  empties.push_back(NumberSource(0, 0));
  auto none = ParallelUnionAll(std::move(empties));
  EXPECT_TRUE(DrainInts(none.get()).empty());
}

TEST(ParallelUnionTest, ReOpenReplaysFromScratch) {
  std::vector<OperatorPtr> children;
  children.push_back(NumberSource(1, 4));
  children.push_back(NumberSource(10, 4));
  auto op = ParallelUnionAll(std::move(children));
  std::vector<int64_t> first = DrainInts(op.get());
  std::vector<int64_t> second = DrainInts(op.get());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 8u);
}

TEST(ParallelUnionTest, OnMorselDoneSeesEveryChildWithWorkerId) {
  std::vector<std::atomic<int>> workers(6);
  for (auto& w : workers) w = -2;  // sentinel: callback never ran
  std::vector<OperatorPtr> children;
  for (int64_t c = 0; c < 6; ++c) children.push_back(NumberSource(c, 5));
  auto op = ParallelUnionAll(
      std::move(children),
      [&](size_t child, int worker) { workers[child] = worker; });
  EXPECT_EQ(DrainInts(op.get()).size(), 30u);
  size_t max_w = WorkerPool::Global().worker_count();
  for (const auto& w : workers) {
    EXPECT_GE(w.load(), 0);
    EXPECT_LT(static_cast<size_t>(w.load()), max_w);
  }
}

TEST(ParallelUnionTest, ErrorInOneChildSurfacesFromDrain) {
  // A child whose Open fails: Values can't fail, so use a probe operator.
  class FailingOp final : public Operator {
   public:
    FailingOp() { schema_ = Schema({"N"}); }
    Status Open() override { return Status::Internal("boom"); }
    Result<bool> Next(Row*) override { return false; }
    void Close() override {}
  };
  std::vector<OperatorPtr> children;
  children.push_back(NumberSource(0, 3));
  children.push_back(std::make_unique<FailingOp>());
  children.push_back(NumberSource(10, 3));
  auto op = ParallelUnionAll(std::move(children));
  auto rows = Collect(op.get());
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("boom"), std::string::npos);
}

}  // namespace
}  // namespace fsdm::rdbms
