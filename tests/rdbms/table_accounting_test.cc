#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "rdbms/table.h"

/// Heap accounting test (ISSUE 9): Table maintains HeapBytes() incrementally
/// on every DML — including observer-driven rollbacks — and the invariant
/// pinned here is *exact* equality with the O(rows) RecomputeHeapBytes()
/// walk, which applies the same size-based formula from scratch. Any drift
/// between the two means an accounting bug, not an estimate mismatch.

namespace fsdm::rdbms {
namespace {

std::unique_ptr<Table> MakeDocs() {
  return std::make_unique<Table>(
      "ACCT", std::vector<ColumnDef>{
                  {.name = "DID", .type = ColumnType::kNumber},
                  {.name = "JDOC",
                   .type = ColumnType::kJson,
                   .check_is_json = true},
              });
}

/// Fails every OnInsert/OnReplace/OnDelete, forcing the table's rollback
/// path: accounting must end at its pre-DML value.
class VetoObserver final : public TableObserver {
 public:
  Status OnInsert(size_t, const Row&) override { return Veto(); }
  Status OnDelete(size_t, const Row&) override { return Veto(); }
  Status OnReplace(size_t, const Row&, const Row&) override { return Veto(); }

 private:
  static Status Veto() { return Status::InvalidArgument("vetoed by test"); }
};

std::string Doc(int i, size_t pad = 0) {
  return "{\"id\":" + std::to_string(i) + ",\"pad\":\"" +
         std::string(pad, 'x') + "\"}";
}

TEST(TableAccountingTest, InsertReplaceDeleteStayReconciled) {
  auto table = MakeDocs();
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table
                    ->Insert({Value::Int64(i),
                              Value::String(Doc(i, 10 * (i % 5)))})
                    .ok());
    EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes()) << "insert " << i;
  }
  EXPECT_GT(table->HeapBytes(), 0u);

  // Replace with both larger and smaller payloads.
  ASSERT_TRUE(table->Replace(3, {Value::Int64(3), Value::String(Doc(3, 500))})
                  .ok());
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());
  ASSERT_TRUE(table->Replace(3, {Value::Int64(3), Value::String(Doc(3))}).ok());
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());

  // Delete only tombstones: the bytes stay counted (the row storage is not
  // reclaimed) and the recompute walk agrees because it counts dead rows
  // too.
  const uint64_t before_delete = table->HeapBytes();
  ASSERT_TRUE(table->Delete(7).ok());
  EXPECT_FALSE(table->IsLive(7));
  EXPECT_EQ(table->HeapBytes(), before_delete);
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());
}

TEST(TableAccountingTest, RolledBackDmlLeavesAccountingUntouched) {
  auto table = MakeDocs();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int64(i), Value::String(Doc(i, 40))}).ok());
  }
  const uint64_t steady = table->HeapBytes();
  ASSERT_EQ(steady, table->RecomputeHeapBytes());

  VetoObserver veto;
  table->AddObserver(&veto);
  EXPECT_FALSE(
      table->Insert({Value::Int64(99), Value::String(Doc(99, 100))}).ok());
  EXPECT_FALSE(
      table->Replace(2, {Value::Int64(2), Value::String(Doc(2, 999))}).ok());
  EXPECT_FALSE(table->Delete(1).ok());
  table->RemoveObserver(&veto);

  EXPECT_EQ(table->HeapBytes(), steady);
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());
  EXPECT_TRUE(table->IsLive(1));

  // The table still works after the rollbacks, and accounting follows.
  ASSERT_TRUE(
      table->Insert({Value::Int64(5), Value::String(Doc(5, 8))}).ok());
  EXPECT_GT(table->HeapBytes(), steady);
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());
}

TEST(TableAccountingTest, ConstraintViolationLeavesAccountingUntouched) {
  auto table = MakeDocs();
  ASSERT_TRUE(table->Insert({Value::Int64(1), Value::String(Doc(1))}).ok());
  const uint64_t steady = table->HeapBytes();

  // IS JSON check rejects the row before it is stored.
  EXPECT_FALSE(
      table->Insert({Value::Int64(2), Value::String("{not json")}).ok());
  EXPECT_EQ(table->HeapBytes(), steady);
  EXPECT_EQ(table->HeapBytes(), table->RecomputeHeapBytes());
}

}  // namespace
}  // namespace fsdm::rdbms
