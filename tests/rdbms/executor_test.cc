#include "rdbms/executor.h"

#include <gtest/gtest.h>

namespace fsdm::rdbms {
namespace {

// A small orders table: (id, customer, amount).
OperatorPtr OrdersSource() {
  Schema schema({"id", "customer", "amount"});
  std::vector<Row> rows = {
      {Value::Int64(1), Value::String("acme"), Value::Int64(100)},
      {Value::Int64(2), Value::String("acme"), Value::Int64(250)},
      {Value::Int64(3), Value::String("globex"), Value::Int64(75)},
      {Value::Int64(4), Value::String("initech"), Value::Int64(300)},
      {Value::Int64(5), Value::String("globex"), Value::Null()},
  };
  return Values(schema, rows);
}

std::vector<std::string> Strings(OperatorPtr op) {
  Result<std::vector<std::string>> r = CollectStrings(op.get());
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.MoveValue() : std::vector<std::string>{};
}

TEST(ExecutorTest, ScanMaterializesVirtuals) {
  Table t("T", {{.name = "x", .type = ColumnType::kNumber}});
  ColumnDef vc;
  vc.name = "x2";
  vc.virtual_expr = Mul(Col("x"), Lit(Value::Int64(2)));
  ASSERT_TRUE(t.AddVirtualColumn(vc).ok());
  t.Insert({Value::Int64(3)});
  t.Insert({Value::Int64(4)});
  EXPECT_EQ(Strings(Scan(&t)), (std::vector<std::string>{"3|6", "4|8"}));
}

TEST(ExecutorTest, ScanSkipsDeletedRows) {
  Table t("T", {{.name = "x", .type = ColumnType::kNumber}});
  t.Insert({Value::Int64(1)});
  t.Insert({Value::Int64(2)});
  t.Insert({Value::Int64(3)});
  t.Delete(1);
  EXPECT_EQ(Strings(Scan(&t)), (std::vector<std::string>{"1", "3"}));
}

TEST(ExecutorTest, FilterKeepsTrueOnly) {
  // NULL amount row must be rejected (UNKNOWN), not kept.
  auto plan = Filter(OrdersSource(), Gt(Col("amount"), Lit(Value::Int64(90))));
  EXPECT_EQ(Strings(std::move(plan)),
            (std::vector<std::string>{"1|acme|100", "2|acme|250",
                                      "4|initech|300"}));
}

TEST(ExecutorTest, ProjectComputesExpressions) {
  auto plan = Project(OrdersSource(),
                      {{"customer", Col("customer")},
                       {"doubled", Mul(Col("amount"), Lit(Value::Int64(2)))}});
  std::vector<std::string> rows = Strings(std::move(plan));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "acme|200");
  EXPECT_EQ(rows[4], "globex|NULL");
}

TEST(ExecutorTest, LimitStopsEarly) {
  EXPECT_EQ(Strings(Limit(OrdersSource(), 2)).size(), 2u);
  EXPECT_EQ(Strings(Limit(OrdersSource(), 0)).size(), 0u);
  EXPECT_EQ(Strings(Limit(OrdersSource(), 99)).size(), 5u);
}

TEST(ExecutorTest, SortOrdersRows) {
  auto plan = Sort(OrdersSource(), {{Col("amount"), /*ascending=*/false}});
  std::vector<std::string> rows = Strings(std::move(plan));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "4|initech|300");
  EXPECT_EQ(rows[1], "2|acme|250");
  // NULL sorts first ascending, therefore last descending.
  EXPECT_EQ(rows[4], "5|globex|NULL");
}

TEST(ExecutorTest, SortIsStableOnTies) {
  auto plan = Sort(OrdersSource(), {{Col("customer"), true}});
  std::vector<std::string> rows = Strings(std::move(plan));
  EXPECT_EQ(rows[0], "1|acme|100");  // original order within 'acme'
  EXPECT_EQ(rows[1], "2|acme|250");
}

TEST(ExecutorTest, GroupByWithAggregates) {
  std::vector<AggSpec> aggs;
  aggs.push_back({AggSpec::Kind::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggSpec::Kind::kSum, Col("amount"), "total"});
  aggs.push_back({AggSpec::Kind::kMin, Col("amount"), "lo"});
  aggs.push_back({AggSpec::Kind::kMax, Col("amount"), "hi"});
  auto plan = GroupBy(OrdersSource(), {Col("customer")}, {"customer"},
                      std::move(aggs));
  auto sorted = Sort(std::move(plan), {{Col("customer"), true}});
  EXPECT_EQ(Strings(std::move(sorted)),
            (std::vector<std::string>{
                "acme|2|350|100|250",
                // SUM/MIN/MAX ignore the NULL amount; COUNT(*) does not.
                "globex|2|75|75|75",
                "initech|1|300|300|300"}));
}

TEST(ExecutorTest, GlobalAggregateOnEmptyInput) {
  Schema schema({"x"});
  auto plan = GroupBy(Values(schema, {}), {}, {},
                      {{AggSpec::Kind::kCountStar, nullptr, "cnt"}});
  EXPECT_EQ(Strings(std::move(plan)), std::vector<std::string>{"0"});
}

TEST(ExecutorTest, AvgAggregate) {
  auto plan = GroupBy(OrdersSource(), {}, {},
                      {{AggSpec::Kind::kAvg, Col("amount"), "avg"}});
  std::vector<std::string> rows = Strings(std::move(plan));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "181.25");  // (100+250+75+300)/4, NULL excluded
}

OperatorPtr CustomersSource() {
  Schema schema({"cname", "region"});
  std::vector<Row> rows = {
      {Value::String("acme"), Value::String("west")},
      {Value::String("globex"), Value::String("east")},
      {Value::String("hooli"), Value::String("west")},
  };
  return Values(schema, rows);
}

TEST(ExecutorTest, InnerHashJoin) {
  auto plan =
      HashJoin(OrdersSource(), CustomersSource(), {Col("customer")},
               {Col("cname")}, JoinType::kInner);
  auto sorted = Sort(std::move(plan), {{Col("id"), true}});
  std::vector<std::string> rows = Strings(std::move(sorted));
  ASSERT_EQ(rows.size(), 4u);  // initech has no customer row
  EXPECT_EQ(rows[0], "1|acme|100|acme|west");
  EXPECT_EQ(rows[3], "5|globex|NULL|globex|east");
}

TEST(ExecutorTest, LeftOuterHashJoin) {
  auto plan =
      HashJoin(OrdersSource(), CustomersSource(), {Col("customer")},
               {Col("cname")}, JoinType::kLeftOuter);
  auto sorted = Sort(std::move(plan), {{Col("id"), true}});
  std::vector<std::string> rows = Strings(std::move(sorted));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[3], "4|initech|300|NULL|NULL");  // unmatched left row
}

TEST(ExecutorTest, JoinSchemaConcatenation) {
  auto plan =
      HashJoin(OrdersSource(), CustomersSource(), {Col("customer")},
               {Col("cname")}, JoinType::kInner);
  EXPECT_EQ(plan->schema().columns(),
            (std::vector<std::string>{"id", "customer", "amount", "cname",
                                      "region"}));
}

TEST(ExecutorTest, UnionAll) {
  auto plan = UnionAll([] {
    std::vector<OperatorPtr> kids;
    kids.push_back(Limit(OrdersSource(), 1));
    kids.push_back(Limit(OrdersSource(), 2));
    return kids;
  }());
  EXPECT_EQ(Strings(std::move(plan)).size(), 3u);
}

TEST(ExecutorTest, SampleIsDeterministicAndProportional) {
  Schema schema({"x"});
  std::vector<Row> rows;
  for (int i = 0; i < 10000; ++i) rows.push_back({Value::Int64(i)});
  auto plan1 = Sample(Values(schema, rows), 50.0, /*seed=*/7);
  auto plan2 = Sample(Values(schema, rows), 50.0, /*seed=*/7);
  std::vector<std::string> a = Strings(std::move(plan1));
  std::vector<std::string> b = Strings(std::move(plan2));
  EXPECT_EQ(a, b);
  EXPECT_GT(a.size(), 4500u);
  EXPECT_LT(a.size(), 5500u);
}

TEST(ExecutorTest, WindowLag) {
  // Q6-style: LAG(amount, 1, amount) OVER (ORDER BY id).
  auto plan = WindowLag(OrdersSource(), Col("amount"), 1, Col("amount"),
                        {{Col("id"), true}}, "prev_amount");
  std::vector<std::string> rows = Strings(std::move(plan));
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0], "1|acme|100|100");  // default = own amount for first row
  EXPECT_EQ(rows[1], "2|acme|250|100");
  EXPECT_EQ(rows[2], "3|globex|75|250");
}

TEST(ExecutorTest, WindowLagNullDefault) {
  auto plan = WindowLag(OrdersSource(), Col("amount"), 2, nullptr,
                        {{Col("id"), true}}, "lag2");
  std::vector<std::string> rows = Strings(std::move(plan));
  EXPECT_EQ(rows[0], "1|acme|100|NULL");
  EXPECT_EQ(rows[1], "2|acme|250|NULL");
  EXPECT_EQ(rows[2], "3|globex|75|100");
}

}  // namespace
}  // namespace fsdm::rdbms
