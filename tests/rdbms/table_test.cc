#include "rdbms/table.h"

#include <gtest/gtest.h>

namespace fsdm::rdbms {
namespace {

std::vector<ColumnDef> PoColumns() {
  return {
      {.name = "DID", .type = ColumnType::kNumber},
      {.name = "JDOC",
       .type = ColumnType::kJson,
       .max_length = 4000,
       .check_is_json = true},
  };
}

TEST(TableTest, InsertAndMaterialize) {
  Table t("PO", PoColumns());
  Result<size_t> id =
      t.Insert({Value::Int64(1), Value::String(R"({"a":1})")});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(id.value(), 0u);
  EXPECT_EQ(t.row_count(), 1u);
  Row row = t.MaterializeRow(0).MoveValue();
  EXPECT_EQ(row[0].AsInt64(), 1);
  EXPECT_EQ(row[1].AsString(), R"({"a":1})");
}

TEST(TableTest, IsJsonConstraintRejectsMalformed) {
  Table t("PO", PoColumns());
  Result<size_t> bad = t.Insert({Value::Int64(1), Value::String("{oops")});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(t.row_count(), 0u);  // rejected rows are not stored
  // NULL documents pass the constraint.
  EXPECT_TRUE(t.Insert({Value::Int64(2), Value::Null()}).ok());
}

TEST(TableTest, TypeChecking) {
  Table t("PO", PoColumns());
  EXPECT_FALSE(t.Insert({Value::String("x"), Value::Null()}).ok());
  EXPECT_FALSE(t.Insert({Value::Int64(1)}).ok());  // arity
  EXPECT_TRUE(
      t.Insert({Value::Dec(Decimal::FromInt64(1)), Value::Null()}).ok());
}

TEST(TableTest, DeleteAndReplace) {
  Table t("PO", PoColumns());
  t.Insert({Value::Int64(1), Value::String("{}")});
  t.Insert({Value::Int64(2), Value::String("{}")});
  ASSERT_TRUE(t.Delete(0).ok());
  EXPECT_FALSE(t.IsLive(0));
  EXPECT_FALSE(t.Delete(0).ok());  // already deleted
  EXPECT_FALSE(t.MaterializeRow(0).ok());
  ASSERT_TRUE(t.Replace(1, {Value::Int64(20), Value::String("{}")}).ok());
  EXPECT_EQ(t.MaterializeRow(1).MoveValue()[0].AsInt64(), 20);
  EXPECT_FALSE(t.Replace(0, {Value::Int64(9), Value::Null()}).ok());
}

TEST(TableTest, VirtualColumns) {
  Table t("PO", PoColumns());
  ColumnDef vc;
  vc.name = "DID_X2";
  vc.type = ColumnType::kNumber;
  vc.virtual_expr = Mul(Col("DID"), Lit(Value::Int64(2)));
  ASSERT_TRUE(t.AddVirtualColumn(vc).ok());
  // Duplicate name rejected.
  EXPECT_FALSE(t.AddVirtualColumn(vc).ok());

  t.Insert({Value::Int64(21), Value::Null()});
  Row row = t.MaterializeRow(0).MoveValue();
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[2].AsInt64(), 42);
  EXPECT_EQ(t.OutputSchema().columns(),
            (std::vector<std::string>{"DID", "JDOC", "DID_X2"}));
}

TEST(TableTest, HiddenVirtualColumns) {
  Table t("PO", PoColumns());
  ColumnDef vc;
  vc.name = "HIDDEN_VC";
  vc.virtual_expr = Lit(Value::Int64(1));
  vc.hidden = true;
  ASSERT_TRUE(t.AddVirtualColumn(vc).ok());
  t.Insert({Value::Int64(1), Value::Null()});

  EXPECT_EQ(t.OutputSchema(false).size(), 2u);
  EXPECT_EQ(t.OutputSchema(true).size(), 3u);
  EXPECT_EQ(t.MaterializeRow(0, false).MoveValue().size(), 2u);
  EXPECT_EQ(t.MaterializeRow(0, true).MoveValue().size(), 3u);
}

class RecordingObserver final : public TableObserver {
 public:
  Status OnInsert(size_t row_id, const Row&) override {
    inserts.push_back(row_id);
    return fail_next ? Status::Internal("boom") : Status::Ok();
  }
  Status OnDelete(size_t row_id, const Row&) override {
    deletes.push_back(row_id);
    return Status::Ok();
  }
  Status OnReplace(size_t row_id, const Row&, const Row&) override {
    replaces.push_back(row_id);
    return Status::Ok();
  }
  std::vector<size_t> inserts, deletes, replaces;
  bool fail_next = false;
};

TEST(TableTest, ObserversSeeDml) {
  Table t("PO", PoColumns());
  RecordingObserver obs;
  t.AddObserver(&obs);
  t.Insert({Value::Int64(1), Value::String("{}")});
  t.Insert({Value::Int64(2), Value::String("{}")});
  t.Replace(1, {Value::Int64(3), Value::String("{}")});
  t.Delete(0);
  EXPECT_EQ(obs.inserts, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(obs.replaces, (std::vector<size_t>{1}));
  EXPECT_EQ(obs.deletes, (std::vector<size_t>{0}));
  t.RemoveObserver(&obs);
  t.Insert({Value::Int64(4), Value::String("{}")});
  EXPECT_EQ(obs.inserts.size(), 2u);
}

TEST(TableTest, FailingObserverRollsBackInsert) {
  Table t("PO", PoColumns());
  RecordingObserver obs;
  obs.fail_next = true;
  t.AddObserver(&obs);
  EXPECT_FALSE(t.Insert({Value::Int64(1), Value::String("{}")}).ok());
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, StorageEstimate) {
  Table t("PO", PoColumns());
  EXPECT_EQ(t.EstimateStorageBytes(), 0u);
  t.Insert({Value::Int64(1), Value::String("\"0123456789\"")});
  size_t one = t.EstimateStorageBytes();
  EXPECT_GT(one, 10u);
  t.Insert({Value::Int64(2), Value::String("\"0123456789\"")});
  EXPECT_EQ(t.EstimateStorageBytes(), 2 * one);
  t.Delete(0);
  EXPECT_EQ(t.EstimateStorageBytes(), one);
}

TEST(DatabaseTest, Registry) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T", PoColumns()).ok());
  EXPECT_FALSE(db.CreateTable("T", PoColumns()).ok());
  EXPECT_TRUE(db.GetTable("T").ok());
  EXPECT_FALSE(db.GetTable("U").ok());
  EXPECT_TRUE(db.DropTable("T").ok());
  EXPECT_FALSE(db.GetTable("T").ok());
}

}  // namespace
}  // namespace fsdm::rdbms
