#include <gtest/gtest.h>

#include "collection/collection.h"
#include "collection/router.h"
#include "rdbms/executor.h"
#include "stats/operator_costs.h"
#include "telemetry/trace.h"

namespace fsdm::collection {
namespace {

// EXPLAIN ANALYZE traces for the router: every Route() must record all
// five candidates in ranking order, mark exactly the winner as chosen, and
// keep RoutedPlan::reason identical to the decision's reason string. Uses
// the same corpus statistics as router_test.cc.
class RouterTraceTest : public ::testing::Test {
 protected:
  // Pin the cost model to its seeds: routed plans drained by earlier tests
  // feed measurements back into the process-wide model.
  void SetUp() override { stats::OperatorCostModel::Global().Reset(); }

  void Load(JsonCollection* coll, int n) {
    for (int i = 0; i < n; ++i) {
      std::string doc = "{\"num\":" + std::to_string(i * 10) +
                        ",\"tag\":\"t" + std::to_string(i % 10) + "\"";
      if (i % 5 == 0) doc += ",\"flag\":true";
      doc += "}";
      ASSERT_TRUE(coll->Insert(std::move(doc)).ok());
    }
  }

  // The invariants every routed decision must satisfy.
  void CheckDecision(const RoutedPlan& routed, const char* winner) {
    const telemetry::RouterDecision& d = routed.trace.decision;
    ASSERT_EQ(d.candidates.size(), 5u);
    EXPECT_EQ(d.candidates[0].access_path, "imc-filter-scan");
    EXPECT_EQ(d.candidates[1].access_path, "indexed-value-scan");
    EXPECT_EQ(d.candidates[2].access_path, "posting-intersect-scan");
    EXPECT_EQ(d.candidates[3].access_path, "indexed-path-scan");
    EXPECT_EQ(d.candidates[4].access_path, "full-scan");
    EXPECT_EQ(d.winner, winner);
    EXPECT_EQ(d.reason, routed.reason);
    int chosen = 0;
    for (const telemetry::RouterCandidate& c : d.candidates) {
      if (c.chosen) {
        ++chosen;
        EXPECT_TRUE(c.eligible);
        EXPECT_EQ(c.access_path, winner);
      }
    }
    EXPECT_EQ(chosen, 1);
  }

  rdbms::Database db_;
};

TEST_F(RouterTraceTest, ImcWinnerRecordsCandidates) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(
      coll->AddVirtualColumn("NUM_VC", "$.num", sqljson::Returning::kNumber)
          .ok());
  Load(coll.get(), 50);
  ASSERT_TRUE(coll->PopulateImc().ok());

  auto routed =
      coll->Route({PathPredicate::Compare("$.num", rdbms::CompareOp::kGe,
                                          Value::Int64(100))})
          .MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kImcFilterScan);
  CheckDecision(routed, "imc-filter-scan");
  // The cost model evaluates every candidate; the rivals lost on cost or
  // eligibility, and the decision records why.
  const telemetry::RouterDecision& d = routed.trace.decision;
  EXPECT_EQ(d.candidates[1].detail,
            "no equality on a DataGuide-known scalar path");
  EXPECT_EQ(d.candidates[2].detail,
            "fewer than two index-answerable conjuncts");
  EXPECT_GE(d.candidates[0].est_cost_us, 0.0);
  EXPECT_GE(d.candidates[4].est_cost_us, d.candidates[0].est_cost_us);
}

TEST_F(RouterTraceTest, ValuePostingsWinnerRecordsFrequency) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  auto routed = coll->Route({PathPredicate::Compare(
                                 "$.tag", rdbms::CompareOp::kEq,
                                 Value::String("t3"))})
                    .MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kIndexedValueScan);
  CheckDecision(routed, "indexed-value-scan");
  const telemetry::RouterDecision& d = routed.trace.decision;
  EXPECT_EQ(d.candidates[0].detail, "no valid IMC store");
  EXPECT_NE(d.candidates[1].detail.find("$.tag"), std::string::npos);
  EXPECT_NE(d.candidates[1].detail.find("frequency"), std::string::npos);
}

TEST_F(RouterTraceTest, PathPostingsWinnerRecordsRejectedValueTier) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  auto routed = coll->Route({PathPredicate::Exists("$.flag")}).MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kIndexedPathScan);
  CheckDecision(routed, "indexed-path-scan");
  EXPECT_EQ(routed.trace.decision.candidates[1].detail,
            "no equality on a DataGuide-known scalar path");
}

TEST_F(RouterTraceTest, FullScanWinnerRecordsWhyOthersLost) {
  CollectionOptions opts;
  opts.attach_search_index = false;
  auto coll = JsonCollection::Create(&db_, "C", opts).MoveValue();
  Load(coll.get(), 30);

  auto routed = coll->Route({PathPredicate::Compare(
                                 "$.tag", rdbms::CompareOp::kEq,
                                 Value::String("t3"))})
                    .MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kFullScan);
  CheckDecision(routed, "full-scan");
  const telemetry::RouterDecision& d = routed.trace.decision;
  EXPECT_EQ(d.candidates[1].detail, "no search index postings maintained");
  EXPECT_EQ(d.candidates[2].detail, "no search index postings maintained");
  EXPECT_EQ(d.candidates[3].detail, "no search index postings maintained");
  EXPECT_TRUE(d.candidates[4].eligible);
}

// Operator spans fill in rows-in/rows-out as the routed plan executes:
// residual Filter on top of the posting scan, EXPLAIN ANALYZE style.
TEST_F(RouterTraceTest, OperatorSpansRecordRowsThroughResidualFilter) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  auto routed = coll->Route(
                        {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                                                Value::String("t3")),
                         PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                                                Value::Int64(200))})
                    .MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kIndexedValueScan);

  auto rows = rdbms::Collect(routed.plan.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 2u);  // i in {3, 13}

  const telemetry::OperatorSpan* root = routed.trace.root.get();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "Filter");
  EXPECT_EQ(root->rows_out, 2u);
  ASSERT_EQ(root->children.size(), 1u);
  const telemetry::OperatorSpan* leaf = root->children[0].get();
  EXPECT_EQ(leaf->name, "IndexedValueScan");
  EXPECT_EQ(leaf->rows_out, 5u);  // tag == t3: i % 10 == 3, i < 50
  EXPECT_EQ(root->RowsIn(), 5u);
  EXPECT_GE(root->elapsed_us, leaf->elapsed_us);  // inclusive timing

  // The rendered trace carries the decision and both spans.
  std::string text = routed.trace.Render();
  EXPECT_NE(text.find("access path: indexed-value-scan"), std::string::npos)
      << text;
  EXPECT_NE(text.find("IndexedValueScan"), std::string::npos);
  EXPECT_NE(text.find("rows_out=2"), std::string::npos);
}

// Re-running a plan resets the spans instead of accumulating.
TEST_F(RouterTraceTest, SpansResetOnReopen) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 20);

  auto routed = coll->Route({PathPredicate::Exists("$.flag")}).MoveValue();
  ASSERT_TRUE(rdbms::Collect(routed.plan.get()).ok());
  uint64_t first = routed.trace.root->rows_out;
  ASSERT_TRUE(rdbms::Collect(routed.plan.get()).ok());
  EXPECT_EQ(routed.trace.root->rows_out, first);
}

}  // namespace
}  // namespace fsdm::collection
