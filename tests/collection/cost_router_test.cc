#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "collection/router.h"
#include "rdbms/executor.h"
#include "stats/operator_costs.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace fsdm::collection {
namespace {

uint64_t Metric(const std::string& name) {
  return telemetry::MetricsRegistry::Global().CounterValue(name);
}

// Cost-based routing (ISSUE 5): estimates, the conjunctive intersection
// path, the feedback loop, and decision determinism under frozen
// statistics.
class CostRouterTest : public ::testing::Test {
 protected:
  void SetUp() override { stats::OperatorCostModel::Global().Reset(); }
  void TearDown() override { stats::OperatorCostModel::Global().Reset(); }

  // 200 docs: tag cycles over 10 values, cat over 4, flag exists on every
  // 4th doc, num is uniform 0..1990.
  void Load(JsonCollection* coll, int n = 200) {
    for (int i = 0; i < n; ++i) {
      std::string doc = "{\"num\":" + std::to_string(i * 10) +
                        ",\"tag\":\"t" + std::to_string(i % 10) +
                        "\",\"cat\":\"c" + std::to_string(i % 4) + "\"";
      if (i % 4 == 0) doc += ",\"flag\":true";
      doc += "}";
      ASSERT_TRUE(coll->Insert(std::move(doc)).ok());
    }
  }

  std::vector<rdbms::Row> Drain(const RoutedPlan& routed) {
    auto rows = rdbms::Collect(routed.plan.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows.MoveValue() : std::vector<rdbms::Row>{};
  }

  rdbms::Database db_;
};

TEST_F(CostRouterTest, ConjunctionRoutesToPostingIntersection) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get());
  // This test is about the routing decision, not cost learning (covered by
  // DrainingARoutedPlanFeedsTheCostModel). Freeze the model so the drain
  // between the two routes can't feed back sanitizer-inflated timings and
  // flip the second decision.
  stats::OperatorCostModel::Global().set_frozen(true);

  // Two index-answerable conjuncts: an equality and an existence test.
  // Neither alone is selective enough to beat intersecting ~70 postings
  // down to the estimated 5 matches.
  auto routed = coll->Route({PathPredicate::Compare("$.tag",
                                                    rdbms::CompareOp::kEq,
                                                    Value::String("t0")),
                             PathPredicate::Exists("$.flag")})
                    .MoveValue();
  EXPECT_EQ(routed.access_path, AccessPath::kPostingIntersectScan)
      << routed.trace.decision.Render();
  EXPECT_NE(routed.reason.find("posting-list intersection"),
            std::string::npos);
  // i % 10 == 0 AND i % 4 == 0 -> i % 20 == 0: 10 of 200.
  EXPECT_EQ(Drain(routed).size(), 10u);

  // The non-covered range conjunct rides as a residual filter on top.
  auto with_residual =
      coll->Route({PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                                          Value::String("t0")),
                   PathPredicate::Exists("$.flag"),
                   PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                                          Value::Int64(1000))})
          .MoveValue();
  EXPECT_EQ(with_residual.access_path, AccessPath::kPostingIntersectScan);
  EXPECT_EQ(Drain(with_residual).size(), 5u);  // i in {0,20,40,60,80}
}

TEST_F(CostRouterTest, EstimatesLandInTheTraceAndMatchActuals) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get());

  auto routed = coll->Route({PathPredicate::Compare(
                                 "$.tag", rdbms::CompareOp::kEq,
                                 Value::String("t3"))})
                    .MoveValue();
  const telemetry::RouterDecision& d = routed.trace.decision;
  // Uniform tags: the estimate should be close to the true 20 rows.
  EXPECT_GT(d.est_out_rows, 10.0);
  EXPECT_LT(d.est_out_rows, 40.0);
  for (const telemetry::RouterCandidate& c : d.candidates) {
    if (c.eligible) {
      EXPECT_GE(c.est_rows, 0.0) << c.access_path;
      EXPECT_GE(c.est_cost_us, 0.0) << c.access_path;
    }
  }
  EXPECT_EQ(Drain(routed).size(), 20u);

  // EXPLAIN ANALYZE carries estimated vs actual output cardinality.
  std::string text = routed.trace.Render();
  EXPECT_NE(text.find("estimated rows:"), std::string::npos) << text;
  EXPECT_NE(text.find("actual rows: 20"), std::string::npos) << text;
  EXPECT_NE(text.find("est "), std::string::npos) << text;
}

TEST_F(CostRouterTest, DrainingARoutedPlanFeedsTheCostModel) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get());

  const uint64_t routed_before = Metric("fsdm_router_routed_queries_total");
  auto routed = coll->Route({PathPredicate::Compare(
                                 "$.tag", rdbms::CompareOp::kEq,
                                 Value::String("t3")),
                             PathPredicate::Compare(
                                 "$.num", rdbms::CompareOp::kLt,
                                 Value::Int64(1000))})
                    .MoveValue();
  ASSERT_EQ(routed.access_path, AccessPath::kIndexedValueScan);
  Drain(routed);

  auto snap = stats::OperatorCostModel::Global().Snapshot();
  EXPECT_GE(snap.at("IndexedValueScan").samples, 1u);
  EXPECT_GE(snap.at("Filter").samples, 1u);
  if (telemetry::kEnabled) {
    EXPECT_EQ(Metric("fsdm_router_routed_queries_total"), routed_before + 1);
  }
}

TEST_F(CostRouterTest, GrossMisestimateBumpsTheCounter) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  // Perfectly correlated predicates: flag exists exactly on tag == "t0"
  // documents. Independence predicts 100 * (1/10) * (1/10) = 1 row; the
  // true answer is 10 — a 5.5x ratio, past the 4x threshold.
  for (int i = 0; i < 100; ++i) {
    std::string doc = "{\"tag\":\"t" + std::to_string(i % 10) + "\"";
    if (i % 10 == 0) doc += ",\"flag\":true";
    doc += "}";
    ASSERT_TRUE(coll->Insert(std::move(doc)).ok());
  }

  const uint64_t before = Metric("fsdm_router_misestimates_total");
  auto routed = coll->Route({PathPredicate::Compare("$.tag",
                                                    rdbms::CompareOp::kEq,
                                                    Value::String("t0")),
                             PathPredicate::Exists("$.flag")})
                    .MoveValue();
  EXPECT_LT(routed.trace.decision.est_out_rows, 2.5);
  EXPECT_EQ(Drain(routed).size(), 10u);
  if (telemetry::kEnabled) {
    EXPECT_EQ(Metric("fsdm_router_misestimates_total"), before + 1);
  }

  // A well-estimated query does not bump it.
  auto good = coll->Route({PathPredicate::Compare(
                               "$.tag", rdbms::CompareOp::kEq,
                               Value::String("t3"))})
                  .MoveValue();
  EXPECT_EQ(Drain(good).size(), 10u);
  if (telemetry::kEnabled) {
    EXPECT_EQ(Metric("fsdm_router_misestimates_total"), before + 1);
  }
}

// ISSUE 5 acceptance: for every query shape the cost-based router's pick
// answers identically to the forced full scan and is not slower by more
// than generous slack (micro-corpus timings are noisy; the guard catches
// an order-of-magnitude regression, not jitter).
TEST_F(CostRouterTest, RoutedMatchesForcedFullScanOnEveryQueryShape) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(
      coll->AddVirtualColumn("NUM_VC", "$.num", sqljson::Returning::kNumber)
          .ok());
  Load(coll.get());
  ASSERT_TRUE(coll->PopulateImc().ok());

  const std::vector<std::vector<PathPredicate>> shapes = {
      {},  // full collection
      {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                              Value::String("t3"))},
      {PathPredicate::Exists("$.flag")},
      {PathPredicate::Compare("$.num", rdbms::CompareOp::kGe,
                              Value::Int64(500)),
       PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                              Value::Int64(1500))},
      {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                              Value::String("t0")),
       PathPredicate::Exists("$.flag")},
      {PathPredicate::Compare("$.cat", rdbms::CompareOp::kEq,
                              Value::String("c1")),
       PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                              Value::Int64(700))},
  };

  for (size_t s = 0; s < shapes.size(); ++s) {
    // Forced baseline: scan + every predicate as a residual filter.
    rdbms::OperatorPtr forced = coll->Scan();
    for (const PathPredicate& p : shapes[s]) {
      const sqljson::Returning ret = !p.is_existence() && p.literal->IsNumeric()
                                         ? sqljson::Returning::kNumber
                                         : sqljson::Returning::kString;
      rdbms::ExprPtr e =
          p.is_existence()
              ? coll->JsonExistsExpr(p.path).MoveValue()
              : rdbms::Cmp(p.op,
                           coll->JsonValueExpr(p.path, ret).MoveValue(),
                           rdbms::Lit(*p.literal));
      forced = rdbms::Filter(std::move(forced), std::move(e));
    }
    telemetry::Stopwatch forced_watch;
    auto forced_rows = rdbms::Collect(forced.get());
    const double forced_us = forced_watch.ElapsedUs();
    ASSERT_TRUE(forced_rows.ok());

    auto routed = coll->Route(shapes[s]).MoveValue();
    telemetry::Stopwatch routed_watch;
    auto routed_rows = rdbms::Collect(routed.plan.get());
    const double routed_us = routed_watch.ElapsedUs();
    ASSERT_TRUE(routed_rows.ok());

    EXPECT_EQ(routed_rows.value().size(), forced_rows.value().size())
        << "shape " << s << ": " << routed.trace.decision.Render();
    // Same-or-faster with 5x slack + a 500us absolute floor for clock
    // noise on plans that finish in microseconds.
    EXPECT_LT(routed_us, 5.0 * forced_us + 500.0)
        << "shape " << s << " (" << AccessPathName(routed.access_path)
        << " took " << routed_us << "us, full scan " << forced_us << "us)";
  }
}

// Regression: with statistics frozen, repeated routing of the same query
// produces byte-identical decisions — candidate order, details, reasons,
// estimates. The router must not leak timings or iteration order into the
// decision.
TEST_F(CostRouterTest, DecisionsAreDeterministicUnderFrozenStats) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get());
  stats::OperatorCostModel::Global().set_frozen(true);

  const std::vector<std::vector<PathPredicate>> shapes = {
      {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                              Value::String("t3"))},
      {PathPredicate::Exists("$.flag")},
      {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                              Value::String("t0")),
       PathPredicate::Exists("$.flag")},
      {PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                              Value::Int64(400))},
  };

  for (const auto& shape : shapes) {
    auto first = coll->Route(shape).MoveValue();
    // Draining the plan must not change later decisions while frozen.
    Drain(first);
    auto second = coll->Route(shape).MoveValue();

    const telemetry::RouterDecision& a = first.trace.decision;
    const telemetry::RouterDecision& b = second.trace.decision;
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.est_out_rows, b.est_out_rows);
    ASSERT_EQ(a.candidates.size(), b.candidates.size());
    for (size_t i = 0; i < a.candidates.size(); ++i) {
      EXPECT_EQ(a.candidates[i].access_path, b.candidates[i].access_path);
      EXPECT_EQ(a.candidates[i].eligible, b.candidates[i].eligible);
      EXPECT_EQ(a.candidates[i].chosen, b.candidates[i].chosen);
      EXPECT_EQ(a.candidates[i].detail, b.candidates[i].detail) << i;
      EXPECT_EQ(a.candidates[i].est_rows, b.candidates[i].est_rows) << i;
      EXPECT_EQ(a.candidates[i].est_cost_us, b.candidates[i].est_cost_us)
          << i;
    }
    EXPECT_EQ(a.Render(), b.Render());
  }
}

}  // namespace
}  // namespace fsdm::collection
