#include "collection/router.h"

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "rdbms/executor.h"
#include "stats/operator_costs.h"

namespace fsdm::collection {
namespace {

// A small corpus with known statistics: every document has num/tag, ~1 in
// 5 carries the sparse "flag" field, tags repeat so equality on $.tag is
// selective but not unique.
class RouterTest : public ::testing::Test {
 protected:
  // Routing feeds measured costs back into the process-wide model; start
  // every test from the seeded defaults so expectations don't depend on
  // which tests (with their micro-corpus timings) ran before.
  void SetUp() override { stats::OperatorCostModel::Global().Reset(); }
  void Load(JsonCollection* coll, int n) {
    for (int i = 0; i < n; ++i) {
      std::string doc = "{\"num\":" + std::to_string(i * 10) +
                        ",\"tag\":\"t" + std::to_string(i % 10) + "\"";
      if (i % 5 == 0) doc += ",\"flag\":true";
      doc += "}";
      ASSERT_TRUE(coll->Insert(std::move(doc)).ok());
    }
  }

  size_t RowCount(const RoutedPlan& routed) {
    auto rows = rdbms::Collect(routed.plan.get());
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return rows.ok() ? rows.value().size() : 0;
  }

  rdbms::Database db_;
};

TEST_F(RouterTest, ValidImcWithMaterializedColumnsWinsForCompares) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->AddVirtualColumn("NUM_VC", "$.num",
                                     sqljson::Returning::kNumber)
                  .ok());
  Load(coll.get(), 50);
  ASSERT_TRUE(coll->PopulateImc().ok());

  auto routed = coll->Route({PathPredicate::Compare("$.num",
                                                    rdbms::CompareOp::kGe,
                                                    Value::Int64(100)),
                             PathPredicate::Compare("$.num",
                                                    rdbms::CompareOp::kLt,
                                                    Value::Int64(200))});
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  EXPECT_EQ(routed.value().access_path, AccessPath::kImcFilterScan);
  EXPECT_EQ(RowCount(routed.value()), 10u);  // 100,110,...,190
}

TEST_F(RouterTest, StaleImcFallsThroughToDocumentPaths) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->AddVirtualColumn("NUM_VC", "$.num",
                                     sqljson::Returning::kNumber)
                  .ok());
  Load(coll.get(), 50);
  ASSERT_TRUE(coll->PopulateImc().ok());
  // DML invalidates the store; the router must not serve stale data.
  ASSERT_TRUE(coll->Insert("{\"num\":150,\"tag\":\"t0\"}").ok());

  auto routed = coll->Route({PathPredicate::Compare("$.num",
                                                    rdbms::CompareOp::kGe,
                                                    Value::Int64(100)),
                             PathPredicate::Compare("$.num",
                                                    rdbms::CompareOp::kLt,
                                                    Value::Int64(200))});
  ASSERT_TRUE(routed.ok());
  EXPECT_NE(routed.value().access_path, AccessPath::kImcFilterScan);
  // The fresh row IS visible through the fallback plan.
  EXPECT_EQ(RowCount(routed.value()), 11u);
}

TEST_F(RouterTest, EqualityOnGuideKnownScalarUsesValuePostings) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  auto routed = coll->Route({PathPredicate::Compare(
      "$.tag", rdbms::CompareOp::kEq, Value::String("t3"))});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedValueScan);
  EXPECT_EQ(RowCount(routed.value()), 5u);  // i % 10 == 3, i < 50

  // Residual predicates ride on top of the posting scan.
  auto combined = coll->Route(
      {PathPredicate::Compare("$.tag", rdbms::CompareOp::kEq,
                              Value::String("t3")),
       PathPredicate::Compare("$.num", rdbms::CompareOp::kLt,
                              Value::Int64(200))});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined.value().access_path, AccessPath::kIndexedValueScan);
  EXPECT_EQ(RowCount(combined.value()), 2u);  // i in {3, 13}
}

TEST_F(RouterTest, SparseExistenceUsesPathPostings) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  auto routed = coll->Route({PathPredicate::Exists("$.flag")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedPathScan);
  EXPECT_EQ(RowCount(routed.value()), 10u);  // i % 5 == 0, i < 50
  EXPECT_NE(routed.value().reason.find("$.flag"), std::string::npos);
}

TEST_F(RouterTest, UbiquitousExistenceStillUsesPostingsWhenCheaper) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 50);

  // $.num exists in every document. The old priority router refused the
  // posting path past 50% frequency; the cost model keeps it because a
  // posting replay is still cheaper than scan + JSON_EXISTS evaluation
  // per document — and either way every document comes back.
  auto routed = coll->Route({PathPredicate::Exists("$.num")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedPathScan);
  EXPECT_EQ(RowCount(routed.value()), 50u);
}

TEST_F(RouterTest, NoIndexCollectionAlwaysFullScans) {
  CollectionOptions opts;
  opts.attach_search_index = false;
  auto coll = JsonCollection::Create(&db_, "C", opts).MoveValue();
  Load(coll.get(), 30);

  auto routed = coll->Route({PathPredicate::Compare(
      "$.tag", rdbms::CompareOp::kEq, Value::String("t3"))});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kFullScan);
  EXPECT_EQ(RowCount(routed.value()), 3u);
}

TEST_F(RouterTest, EmptyPredicateListIsAFullScan) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  Load(coll.get(), 10);
  auto routed = coll->Route({});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kFullScan);
  EXPECT_EQ(RowCount(routed.value()), 10u);
}

// All four access paths agree on the answer for the same predicate when
// each is made the applicable one in turn.
TEST_F(RouterTest, AccessPathsAgreeOnRowCounts) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->AddVirtualColumn("NUM_VC", "$.num",
                                     sqljson::Returning::kNumber)
                  .ok());
  Load(coll.get(), 60);
  std::vector<PathPredicate> preds = {PathPredicate::Compare(
      "$.num", rdbms::CompareOp::kLt, Value::Int64(100))};

  // Index present, no IMC -> full scan (no equality/existence to index).
  auto scan_route = coll->Route(preds).MoveValue();
  EXPECT_EQ(scan_route.access_path, AccessPath::kFullScan);
  size_t baseline = RowCount(scan_route);
  EXPECT_EQ(baseline, 10u);

  // IMC populated -> vectorized path, same count.
  ASSERT_TRUE(coll->PopulateImc().ok());
  auto imc_route = coll->Route(preds).MoveValue();
  EXPECT_EQ(imc_route.access_path, AccessPath::kImcFilterScan);
  EXPECT_EQ(RowCount(imc_route), baseline);
}

}  // namespace
}  // namespace fsdm::collection
