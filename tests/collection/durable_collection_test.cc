#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>

#include "collection/collection.h"
#include "fault/fault.h"
#include "json/serializer.h"
#include "oson/oson.h"
#include "rdbms/executor.h"

namespace fsdm::collection {
namespace {

namespace fs = std::filesystem;

std::string Doc(int64_t n, const std::string& tag) {
  return "{\"n\":" + std::to_string(n) + ",\"tag\":\"" + tag + "\"}";
}

/// What any stored document normalizes to after one OSON round trip —
/// replayed documents are stored in exactly this form.
std::string Canon(const std::string& text) {
  auto img = oson::EncodeFromText(text);
  EXPECT_TRUE(img.ok()) << img.status().message();
  auto node = oson::Decode(img.value());
  EXPECT_TRUE(node.ok()) << node.status().message();
  return json::Serialize(*node.value());
}

/// key display string -> canonicalized document, for content comparison
/// that ignores row-id placement.
std::map<std::string, std::string> Contents(const JsonCollection& coll) {
  std::map<std::string, std::string> out;
  auto rows = rdbms::Collect(coll.Scan().get());
  EXPECT_TRUE(rows.ok()) << rows.status().message();
  if (rows.ok()) {
    for (const rdbms::Row& row : rows.value()) {
      out[row[0].ToDisplayString()] = Canon(row[1].AsString());
    }
  }
  return out;
}

class DurableCollectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("fsdm_durable_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fault::FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override {
    fault::FaultRegistry::Global().DisarmAll();
    fs::remove_all(dir_);
  }

  CollectionOptions Durable(size_t shards = 1) {
    CollectionOptions o;
    o.wal_dir = dir_.string();
    o.wal_fsync = wal::FsyncPolicy::kOff;  // tests exercise replay, not fsync
    o.shard_count = shards;
    return o;
  }

  fs::path dir_;
};

TEST_F(DurableCollectionTest, ReopenReplaysInsertsReplacesAndDeletes) {
  std::map<std::string, std::string> expect;
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    ASSERT_NE(coll->wal(), nullptr);
    size_t r1 = coll->Insert(Value::Int64(1), Doc(1, "a")).value();
    size_t r2 = coll->Insert(Value::Int64(2), Doc(2, "b")).value();
    ASSERT_TRUE(coll->Insert(Value::Int64(3), Doc(3, "c")).ok());
    ASSERT_TRUE(
        coll->Replace(r2, Value::Int64(2), Doc(2, "b-v2")).ok());
    ASSERT_TRUE(coll->Delete(r1).ok());
    expect["2"] = Canon(Doc(2, "b-v2"));
    expect["3"] = Canon(Doc(3, "c"));
    EXPECT_EQ(Contents(*coll), expect);
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", Durable()).MoveValue();
  EXPECT_EQ(Contents(*coll), expect);
  EXPECT_EQ(coll->document_count(), 2u);
  EXPECT_TRUE(coll->CheckConsistency().consistent);
  EXPECT_GT(coll->wal()->recovery().records_scanned, 0u);
  EXPECT_GT(coll->wal()->recovery().records_applied, 0u);
}

TEST_F(DurableCollectionTest, RowIdsStableAcrossFirstReplay) {
  size_t keep = 0;
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1, "a")).ok());
    size_t mid = coll->Insert(Value::Int64(2), Doc(2, "b")).value();
    keep = coll->Insert(Value::Int64(3), Doc(3, "c")).value();
    ASSERT_TRUE(coll->Delete(mid).ok());
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", Durable()).MoveValue();
  // First replay (no prior checkpoint) reproduces the exact row history:
  // the surviving row keeps its pre-crash id, the deleted one stays dead.
  ASSERT_TRUE(coll->Replace(keep, Value::Int64(3), Doc(3, "c-v2")).ok());
  EXPECT_FALSE(coll->Delete(1).ok()) << "tombstone must not resurrect";
  EXPECT_EQ(Contents(*coll).at("3"), Canon(Doc(3, "c-v2")));
}

TEST_F(DurableCollectionTest, AutoKeyContinuesAfterReopen) {
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
    ASSERT_TRUE(coll->Insert(Doc(2, "b")).ok());
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", Durable()).MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(3, "c")).ok());
  auto contents = Contents(*coll);
  // Keys 1 and 2 were replayed; the post-reopen auto key must not collide.
  EXPECT_EQ(contents.size(), 3u);
  EXPECT_TRUE(contents.count("3")) << "auto key restarted and collided";
}

TEST_F(DurableCollectionTest, SecondReopenReplaysFromCheckpoint) {
  // Generation 1: write history. Generation 2: replay re-anchors with a
  // checkpoint (dead rows compact away). Generation 3: replay from that
  // checkpoint plus generation 2's tail.
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(coll->Insert(Value::Int64(i), Doc(i, "g1")).ok());
    }
    // Row ids == insertion order here: rows 2 and 4 hold keys 3 and 5.
    ASSERT_TRUE(coll->Delete(2).ok());
    ASSERT_TRUE(coll->Delete(4).ok());
  }
  size_t g2_row = 0;
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    EXPECT_EQ(coll->document_count(), 4u);
    // Post-replay DML on a compacted id space.
    g2_row = coll->Insert(Value::Int64(7), Doc(7, "g2")).value();
    ASSERT_TRUE(coll->Replace(g2_row, Value::Int64(7), Doc(7, "g2-v2")).ok());
    ASSERT_TRUE(coll->Delete(0).ok());  // row 0 == key 1 (replay is exact)
  }
  rdbms::Database db3;
  auto coll = JsonCollection::Create(&db3, "D", Durable()).MoveValue();
  std::map<std::string, std::string> expect;
  for (int i : {2, 4, 6}) expect[std::to_string(i)] = Canon(Doc(i, "g1"));
  expect["7"] = Canon(Doc(7, "g2-v2"));
  EXPECT_EQ(Contents(*coll), expect);
  EXPECT_TRUE(coll->CheckConsistency().consistent);
}

TEST_F(DurableCollectionTest, AbortedOperationIsNotReplayed) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1, "a")).ok());
    // The observer failure hits AFTER the WAL append: the engine rolls the
    // row back and the collection appends a compensation record.
    fault::FaultRegistry::Global().Arm("collection.observer.insert",
                                       fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Insert(Value::Int64(2), Doc(2, "b")).ok());
    fault::FaultRegistry::Global().DisarmAll();
    EXPECT_EQ(coll->wal()->aborts(), 1u);
    EXPECT_EQ(coll->document_count(), 1u);
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", Durable()).MoveValue();
  EXPECT_EQ(coll->document_count(), 1u) << "aborted insert resurrected";
  EXPECT_EQ(Contents(*coll).count("2"), 0u);
  EXPECT_GT(coll->wal()->recovery().aborted_skipped, 0u);
  EXPECT_TRUE(coll->CheckConsistency().consistent);
}

TEST_F(DurableCollectionTest, CrashBetweenAppendAndApplyRedoesTheOp) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
    ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1, "a")).ok());
    // The "crash" happens after the record is durable but before the
    // engine applies it — the client never got an ack, and redo is the
    // documented (safe) direction of that ambiguity.
    fault::FaultRegistry::Global().Arm("wal.apply.crash",
                                       fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Insert(Value::Int64(2), Doc(2, "b")).ok());
    fault::FaultRegistry::Global().DisarmAll();
    EXPECT_EQ(coll->document_count(), 1u);
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", Durable()).MoveValue();
  EXPECT_EQ(coll->document_count(), 2u) << "durable record must replay";
  EXPECT_EQ(Contents(*coll).at("2"), Canon(Doc(2, "b")));
  EXPECT_TRUE(coll->CheckConsistency().consistent);
}

TEST_F(DurableCollectionTest, ShardedCollectionRecoversAllShards) {
  CollectionOptions options = Durable(/*shards=*/4);
  std::map<std::string, std::string> expect;
  {
    rdbms::Database db;
    auto coll = JsonCollection::Create(&db, "D", options).MoveValue();
    ASSERT_TRUE(coll->sharded());
    for (const JsonCollection* s :
         {coll->shard(0), coll->shard(1), coll->shard(2), coll->shard(3)}) {
      EXPECT_EQ(s->wal(), nullptr) << "the facade owns the log";
    }
    std::vector<size_t> rows;
    for (int i = 1; i <= 20; ++i) {
      auto row = coll->Insert(Value::Int64(i), Doc(i, "s"));
      ASSERT_TRUE(row.ok()) << row.status().message();
      rows.push_back(row.value());
      expect[std::to_string(i)] = Canon(Doc(i, "s"));
    }
    for (int i : {3, 7, 11}) {
      ASSERT_TRUE(coll->Delete(rows[i - 1]).ok());
      expect.erase(std::to_string(i));
    }
    ASSERT_TRUE(
        coll->Replace(rows[4], Value::Int64(5), Doc(5, "s-v2")).ok());
    expect["5"] = Canon(Doc(5, "s-v2"));
  }
  rdbms::Database db2;
  auto coll = JsonCollection::Create(&db2, "D", options).MoveValue();
  EXPECT_EQ(Contents(*coll), expect);
  EXPECT_EQ(coll->document_count(), expect.size());
  ConsistencyReport report = coll->CheckConsistency();
  EXPECT_TRUE(report.consistent) << report.ToString();
}

TEST_F(DurableCollectionTest, CheckpointBoundsSegmentCount) {
  CollectionOptions options = Durable();
  options.wal_segment_bytes = 512;
  rdbms::Database db;
  auto coll = JsonCollection::Create(&db, "D", options).MoveValue();
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(coll->Insert(Value::Int64(i), Doc(i, "x")).ok());
  }
  EXPECT_GT(coll->wal()->segment_count(), 1u);
  ASSERT_TRUE(coll->Checkpoint().ok());
  EXPECT_EQ(coll->wal()->segment_count(), 1u);
  // Everything still recovers from the snapshot alone.
  coll.reset();
  rdbms::Database db2;
  auto reopened = JsonCollection::Create(&db2, "D2", options).MoveValue();
  EXPECT_EQ(reopened->document_count(), 40u);
  EXPECT_TRUE(reopened->CheckConsistency().consistent);
}

TEST_F(DurableCollectionTest, CheckpointWithoutWalIsAnError) {
  rdbms::Database db;
  auto coll = JsonCollection::Create(&db, "D").MoveValue();
  EXPECT_EQ(coll->wal(), nullptr);
  EXPECT_FALSE(coll->Checkpoint().ok());
}

TEST_F(DurableCollectionTest, DmlAfterWalPoisoningFails) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  rdbms::Database db;
  auto coll = JsonCollection::Create(&db, "D", Durable()).MoveValue();
  ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1, "a")).ok());
  {
    fault::ScopedFault guard("wal.append.short_write",
                             fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Insert(Value::Int64(2), Doc(2, "b")).ok());
  }
  // The log refuses to write after a hole; un-logged DML must not proceed.
  EXPECT_FALSE(coll->Insert(Value::Int64(3), Doc(3, "c")).ok());
  EXPECT_EQ(coll->document_count(), 1u);
}

}  // namespace
}  // namespace fsdm::collection
