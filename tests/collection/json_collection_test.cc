#include "collection/collection.h"

#include <gtest/gtest.h>

#include "rdbms/executor.h"

namespace fsdm::collection {
namespace {

std::string Doc(int64_t n, const std::string& tag) {
  return "{\"n\":" + std::to_string(n) + ",\"tag\":\"" + tag +
         "\",\"nested\":{\"m\":" + std::to_string(n * 2) + "}}";
}

class JsonCollectionTest : public ::testing::Test {
 protected:
  rdbms::Database db_;
};

TEST_F(JsonCollectionTest, CreateWiresTableOsonColumnAndIndex) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_NE(coll->table(), nullptr);
  EXPECT_EQ(coll->name(), "C");
  EXPECT_EQ(coll->key_column(), "DID");
  EXPECT_EQ(coll->json_column(), "JDOC");
  EXPECT_EQ(coll->oson_column(), kOsonColumnName);
  ASSERT_NE(coll->search_index(), nullptr);

  // The OSON virtual column is hidden: plain scans don't see it, hidden-
  // inclusive scans do.
  rdbms::Schema plain = coll->table()->OutputSchema(false);
  rdbms::Schema hidden = coll->table()->OutputSchema(true);
  EXPECT_EQ(plain.IndexOf(kOsonColumnName), rdbms::Schema::npos);
  EXPECT_NE(hidden.IndexOf(kOsonColumnName), rdbms::Schema::npos);
}

TEST_F(JsonCollectionTest, InsertRunsIsJsonCheckAndMaintainsGuide) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1, "a")).ok());
  ASSERT_TRUE(coll->Insert(Value::Int64(2), Doc(2, "b")).ok());
  EXPECT_FALSE(coll->Insert(Value::Int64(3), "{not json").ok());

  EXPECT_EQ(coll->document_count(), 2u);
  // The search index's persistent DataGuide saw both documents.
  EXPECT_EQ(coll->dataguide().document_count(), 2u);
  EXPECT_GT(coll->dataguide().distinct_path_count(), 0u);
}

TEST_F(JsonCollectionTest, AutoKeyInsertAssignsMonotonicKeys) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  ASSERT_TRUE(coll->Insert(Doc(2, "b")).ok());
  auto rows = rdbms::Collect(coll->Scan().get()).MoveValue();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(rows[1][0].AsInt64(), 2);
}

TEST_F(JsonCollectionTest, OwnGuideMaintainedWithoutIndex) {
  CollectionOptions opts;
  opts.attach_search_index = false;
  auto coll = JsonCollection::Create(&db_, "C", opts).MoveValue();
  EXPECT_EQ(coll->search_index(), nullptr);
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  ASSERT_TRUE(coll->Insert(Doc(2, "b")).ok());
  // The collection's own DataGuide, fed off the IS JSON constraint's
  // parse, tracks the documents.
  EXPECT_EQ(coll->dataguide().document_count(), 2u);
  EXPECT_NE(coll->dataguide().Find("$.nested.m", json::NodeKind::kScalar,
                                   false),
            nullptr);
  // Replace maintains it too (additively).
  ASSERT_TRUE(coll->Replace(0, Value::Int64(1),
                            "{\"n\":1,\"fresh\":true}")
                  .ok());
  EXPECT_NE(coll->dataguide().Find("$.fresh", json::NodeKind::kScalar, false),
            nullptr);
}

TEST_F(JsonCollectionTest, AddVirtualColumnRecordsPathMapping) {
  CollectionOptions opts;
  opts.attach_search_index = false;
  auto coll = JsonCollection::Create(&db_, "C", opts).MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  auto name = coll->AddVirtualColumn("N_VC", "$.n",
                                     sqljson::Returning::kNumber);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "N_VC");
  ASSERT_NE(coll->VirtualColumnFor("$.n"), nullptr);
  EXPECT_EQ(*coll->VirtualColumnFor("$.n"), "N_VC");
  EXPECT_EQ(coll->VirtualColumnFor("$.other"), nullptr);
}

TEST_F(JsonCollectionTest, AddInferredVirtualColumnsFromLiveGuide) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  ASSERT_TRUE(coll->Insert(Doc(2, "b")).ok());
  auto added = coll->AddInferredVirtualColumns();
  ASSERT_TRUE(added.ok());
  // Singleton scalar paths: $.n, $.tag, $.nested.m.
  EXPECT_EQ(added.value().size(), 3u);
  // Every added column is recorded with its source path.
  EXPECT_NE(coll->VirtualColumnFor("$.n"), nullptr);
  EXPECT_NE(coll->VirtualColumnFor("$.tag"), nullptr);
  EXPECT_NE(coll->VirtualColumnFor("$.nested.m"), nullptr);
}

TEST_F(JsonCollectionTest, CreateViewsEmitsRootAndPerArrayViews) {
  auto coll = JsonCollection::Create(&db_, "PO").MoveValue();
  ASSERT_TRUE(coll->Insert(R"({"id":1,"items":[{"p":10},{"p":20}]})").ok());
  ASSERT_TRUE(coll->Insert(R"({"id":2,"items":[{"p":30}]})").ok());
  auto views = coll->CreateViews();
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views.value().size(), 2u);
  EXPECT_EQ(views.value()[0].name, "PO_RV");
  EXPECT_EQ(views.value()[1].name, "PO_items_RV");
  // The root DMDV expands one row per line item.
  auto plan = views.value()[0].MakePlan();
  ASSERT_TRUE(plan.ok());
  auto rows = rdbms::Collect(plan.value().get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 3u);
}

// The stale-read regression the facade closes: DML after Populate must
// invalidate the managed store through the observer hook.
TEST_F(JsonCollectionTest, DmlInvalidatesPopulatedImc) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->AddVirtualColumn("N_VC", "$.n",
                                     sqljson::Returning::kNumber)
                  .ok());
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  ASSERT_TRUE(coll->Insert(Doc(2, "b")).ok());

  ASSERT_TRUE(coll->PopulateImc().ok());
  ASSERT_TRUE(coll->imc_valid());
  ASSERT_NE(coll->imc(), nullptr);
  EXPECT_EQ(coll->imc()->row_count(), 2u);

  // Insert invalidates.
  ASSERT_TRUE(coll->Insert(Doc(3, "c")).ok());
  EXPECT_FALSE(coll->imc_valid());
  EXPECT_EQ(coll->imc(), nullptr);
  EXPECT_EQ(coll->imc_invalidations(), 1u);

  // EnsureImc repopulates with the new row visible — no stale reads.
  auto store = coll->EnsureImc();
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->row_count(), 3u);
  EXPECT_TRUE(coll->imc_valid());

  // Delete and Replace invalidate too.
  ASSERT_TRUE(coll->Delete(0).ok());
  EXPECT_FALSE(coll->imc_valid());
  ASSERT_TRUE(coll->EnsureImc().ok());
  ASSERT_TRUE(coll->Replace(1, Value::Int64(2), Doc(2, "b2")).ok());
  EXPECT_FALSE(coll->imc_valid());
  EXPECT_EQ(coll->imc_invalidations(), 3u);

  // Repopulation reflects both: 2 live rows, replaced doc visible.
  auto fresh = coll->EnsureImc();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value()->row_count(), 2u);
}

TEST_F(JsonCollectionTest, DmlBeforePopulateDoesNotCountAsInvalidation) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  EXPECT_EQ(coll->imc_invalidations(), 0u);
  EXPECT_FALSE(coll->imc_valid());
}

TEST_F(JsonCollectionTest, MaterializeColumnsIsUnmanaged) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  auto store =
      coll->MaterializeColumns({coll->key_column(), coll->oson_column()});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value().row_count(), 1u);
  // The ad-hoc store is not the managed one.
  EXPECT_FALSE(coll->imc_valid());
}

TEST_F(JsonCollectionTest, DetachStopsMaintenanceAndIsIdempotent) {
  auto coll = JsonCollection::Create(&db_, "C").MoveValue();
  ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
  ASSERT_TRUE(coll->PopulateImc().ok());
  size_t paths_before = coll->dataguide().distinct_path_count();

  coll->Detach();
  coll->Detach();  // idempotent

  // Raw table DML after Detach no longer reaches the collection: the IMC
  // stays "valid" (read-only snapshot) and the guide stops growing.
  ASSERT_TRUE(coll->table()
                  ->Insert({Value::Int64(9),
                            Value::String(R"({"brand_new_field":1})")})
                  .ok());
  EXPECT_TRUE(coll->imc_valid());
  EXPECT_EQ(coll->dataguide().distinct_path_count(), paths_before);
}

TEST_F(JsonCollectionTest, DestructionDetachesObserversBeforeTableDies) {
  rdbms::Table* table = nullptr;
  {
    auto coll = JsonCollection::Create(&db_, "C").MoveValue();
    ASSERT_TRUE(coll->Insert(Doc(1, "a")).ok());
    table = coll->table();
    // Collection destroyed here, while the Database (and table) live on.
  }
  // The table must not call back into the destroyed collection or index.
  ASSERT_NE(table, nullptr);
  EXPECT_TRUE(
      table->Insert({Value::Int64(2), Value::String(Doc(2, "b"))}).ok());
}

TEST_F(JsonCollectionTest, DuplicateNameFails) {
  ASSERT_TRUE(JsonCollection::Create(&db_, "C").ok());
  EXPECT_FALSE(JsonCollection::Create(&db_, "C").ok());
}

}  // namespace
}  // namespace fsdm::collection
