#include <algorithm>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "stats/operator_costs.h"
#include "telemetry/telemetry.h"

namespace fsdm::collection {
namespace {

uint64_t Metric(const std::string& name) {
  return telemetry::MetricsRegistry::Global().CounterValue(name);
}

/// DID values (display form) a routed plan emits, sorted.
std::vector<std::string> DrainKeys(rdbms::Operator* plan) {
  Result<std::vector<rdbms::Row>> rows = rdbms::Collect(plan);
  EXPECT_TRUE(rows.ok()) << rows.status().message();
  std::vector<std::string> keys;
  if (rows.ok()) {
    for (const rdbms::Row& row : rows.value()) {
      keys.push_back(row[0].ToDisplayString());
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

class DegradedRoutingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
    }
    fault::FaultRegistry::Global().DisarmAll();
    // Access-path expectations assume the seeded cost model, not whatever
    // measurements earlier tests fed back.
    stats::OperatorCostModel::Global().Reset();
  }
  void TearDown() override { fault::FaultRegistry::Global().DisarmAll(); }

  rdbms::Database db_;
};

TEST_F(DegradedRoutingTest, UnrecoverableFaultDegradesThenRebuildHeals) {
  auto coll_r = JsonCollection::Create(&db_, "DEMO");
  ASSERT_TRUE(coll_r.ok()) << coll_r.status().message();
  std::unique_ptr<JsonCollection>& coll = coll_r.value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(coll->Insert("{\"a\": " + std::to_string(i) + "}").ok());
  }
  ASSERT_TRUE(coll->Insert("{\"a\": 99, \"rare\": 1}").ok());
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);

  // Healthy: a sparse existence predicate routes to the path postings.
  auto routed = coll->Route({PathPredicate::Exists("$.rare")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedPathScan);

  // DataGuide persistence fails on the next insert AND the index's own
  // compensation fails too: the postings keep a phantom entry for the
  // rolled-back row, so the index must degrade.
  fault::FaultRegistry::Global().Arm("index.insert.dataguide",
                                     fault::FaultSpec::Once());
  fault::FaultRegistry::Global().Arm("index.undo.postings",
                                     fault::FaultSpec::Once());
  uint64_t rollbacks_before = Metric("fsdm_dml_rollbacks_total");
  Result<size_t> failed = coll->Insert("{\"brandnew\": true}");
  ASSERT_FALSE(failed.ok());
  if (telemetry::kEnabled) {
    EXPECT_EQ(Metric("fsdm_dml_rollbacks_total"), rollbacks_before + 1);
  }
  EXPECT_EQ(coll->document_count(), 5u);  // the row itself rolled back

  EXPECT_EQ(coll->health(), CollectionHealth::kIndexDegraded);
  EXPECT_NE(coll->health_reason().find("rollback failed"), std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_EQ(telemetry::MetricsRegistry::Global().GaugeValue(
                  "fsdm_collection_health"),
              1.0);
  }

  // Degraded: the router must not trust the postings. The fallback reason
  // lands in both the candidate table and the plan reason.
  uint64_t fallbacks_before = Metric("fsdm_router_degraded_fallbacks_total");
  routed = coll->Route({PathPredicate::Exists("$.rare")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kFullScan);
  EXPECT_NE(routed.value().reason.find("posting paths unavailable"),
            std::string::npos);
  const telemetry::RouterDecision& decision =
      routed.value().trace.decision;
  ASSERT_EQ(decision.candidates.size(), 5u);
  EXPECT_NE(decision.candidates[1].detail.find("index-degraded"),
            std::string::npos);
  EXPECT_NE(decision.candidates[2].detail.find("index-degraded"),
            std::string::npos);
  EXPECT_NE(decision.candidates[3].detail.find("index-degraded"),
            std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_EQ(Metric("fsdm_router_degraded_fallbacks_total"),
              fallbacks_before + 1);
  }
  // The full scan still answers correctly.
  EXPECT_EQ(DrainKeys(routed.value().plan.get()).size(), 1u);

  // DML continues while degraded (maintenance suspended, not refused)...
  ASSERT_TRUE(coll->Insert("{\"a\": 100, \"rare\": 2}").ok());
  // ...which the consistency check must flag until the index is rebuilt.
  EXPECT_FALSE(coll->CheckConsistency().consistent);

  ASSERT_TRUE(coll->RebuildIndex().ok());
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);
  if (telemetry::kEnabled) {
    EXPECT_EQ(telemetry::MetricsRegistry::Global().GaugeValue(
                  "fsdm_collection_health"),
              0.0);
  }
  ConsistencyReport report = coll->CheckConsistency();
  EXPECT_TRUE(report.consistent) << report.ToString();

  // Posting routing is restored and agrees with a full scan.
  routed = coll->Route({PathPredicate::Exists("$.rare")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedPathScan);
  std::vector<std::string> indexed_keys =
      DrainKeys(routed.value().plan.get());
  rdbms::OperatorPtr full = rdbms::Filter(
      coll->Scan(), coll->JsonExistsExpr("$.rare").MoveValue());
  EXPECT_EQ(indexed_keys, DrainKeys(full.get()));
  EXPECT_EQ(indexed_keys.size(), 2u);
}

TEST_F(DegradedRoutingTest, DmlFaultsAtTableApplyAreFullyCompensated) {
  auto coll_r = JsonCollection::Create(&db_, "COMP");
  ASSERT_TRUE(coll_r.ok());
  std::unique_ptr<JsonCollection>& coll = coll_r.value();
  ASSERT_TRUE(coll->Insert("{\"k\": \"alpha\", \"n\": 1}").ok());
  Result<size_t> target = coll->Insert("{\"k\": \"beta\", \"n\": 2}");
  ASSERT_TRUE(target.ok());

  // Failed insert: no row, no postings, guide may over-count only.
  {
    fault::ScopedFault f("table.insert.apply", fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Insert("{\"k\": \"gamma\"}").ok());
  }
  EXPECT_EQ(coll->document_count(), 2u);
  EXPECT_TRUE(coll->CheckConsistency().consistent)
      << coll->CheckConsistency().ToString();

  // Failed delete: observers had already unindexed the doc; the undo path
  // must reinstate its postings.
  {
    fault::ScopedFault f("table.delete.apply", fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Delete(target.value()).ok());
  }
  EXPECT_EQ(coll->document_count(), 2u);
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);
  EXPECT_TRUE(coll->CheckConsistency().consistent)
      << coll->CheckConsistency().ToString();

  // Failed replace: stage-then-swap already swapped; undo swaps back.
  {
    fault::ScopedFault f("table.replace.apply", fault::FaultSpec::Once());
    EXPECT_FALSE(coll->Replace(target.value(), Value::Int64(2),
                               "{\"k\": \"replaced\"}")
                     .ok());
  }
  ConsistencyReport report = coll->CheckConsistency();
  EXPECT_TRUE(report.consistent) << report.ToString();
  // The old document is still the queryable one.
  auto routed = coll->Route({PathPredicate::Compare(
      "$.k", rdbms::CompareOp::kEq, Value::String("beta"))});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kIndexedValueScan);
  EXPECT_EQ(DrainKeys(routed.value().plan.get()).size(), 1u);
}

TEST_F(DegradedRoutingTest, RebuildFailureQuarantinesUntilRetrySucceeds) {
  auto coll_r = JsonCollection::Create(&db_, "QUAR");
  ASSERT_TRUE(coll_r.ok());
  std::unique_ptr<JsonCollection>& coll = coll_r.value();
  ASSERT_TRUE(coll->Insert("{\"x\": 1}").ok());

  fault::FaultRegistry::Global().Arm("index.rebuild",
                                     fault::FaultSpec::Once());
  EXPECT_FALSE(coll->RebuildIndex().ok());
  EXPECT_EQ(coll->health(), CollectionHealth::kQuarantined);
  EXPECT_NE(coll->health_reason().find("rebuild failed"), std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_EQ(telemetry::MetricsRegistry::Global().GaugeValue(
                  "fsdm_collection_health"),
              2.0);
  }

  // Quarantined: every DML is refused with Unavailable.
  Result<size_t> refused = coll->Insert("{\"x\": 2}");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(coll->Delete(0).code(), StatusCode::kUnavailable);
  EXPECT_EQ(coll->Replace(0, Value::Int64(1), "{}").code(),
            StatusCode::kUnavailable);

  // Reads still route (to the full scan, with the quarantine as reason).
  auto routed = coll->Route({PathPredicate::Exists("$.x")});
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed.value().access_path, AccessPath::kFullScan);
  EXPECT_NE(routed.value().trace.decision.candidates[1].detail.find(
                "quarantined"),
            std::string::npos);

  // A successful rebuild lifts the quarantine.
  ASSERT_TRUE(coll->RebuildIndex().ok());
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);
  EXPECT_TRUE(coll->Insert("{\"x\": 2}").ok());
  EXPECT_TRUE(coll->CheckConsistency().consistent);
}

TEST_F(DegradedRoutingTest, ExplicitQuarantineRefusesDml) {
  auto coll_r = JsonCollection::Create(&db_, "OPS");
  ASSERT_TRUE(coll_r.ok());
  std::unique_ptr<JsonCollection>& coll = coll_r.value();
  coll->Quarantine("operator intervention");
  EXPECT_EQ(coll->health(), CollectionHealth::kQuarantined);
  EXPECT_EQ(coll->health_reason(), "operator intervention");
  EXPECT_EQ(coll->Insert("{}").status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(coll->RebuildIndex().ok());
  EXPECT_TRUE(coll->Insert("{}").ok());
}

TEST_F(DegradedRoutingTest, CreatePartialFailureDropsTheTable) {
  for (const char* point :
       {"collection.create.oson_column", "collection.create.search_index"}) {
    {
      fault::ScopedFault f(point, fault::FaultSpec::Once());
      auto failed = JsonCollection::Create(&db_, "PARTIAL");
      ASSERT_FALSE(failed.ok()) << point;
    }
    // The half-built table must not survive the failed Create...
    EXPECT_FALSE(db_.GetTable("PARTIAL").ok()) << point;
    // ...so the same name is immediately reusable.
    auto retried = JsonCollection::Create(&db_, "PARTIAL");
    ASSERT_TRUE(retried.ok()) << point;
    ASSERT_TRUE(retried.value()->Insert("{\"ok\": true}").ok());
    EXPECT_TRUE(retried.value()->CheckConsistency().consistent);
    retried.value()->Detach();
    ASSERT_TRUE(db_.DropTable("PARTIAL").ok());
  }
}

TEST_F(DegradedRoutingTest, DetachIsIdempotentAndDivergenceIsDetected) {
  auto coll_r = JsonCollection::Create(&db_, "DET");
  ASSERT_TRUE(coll_r.ok());
  std::unique_ptr<JsonCollection>& coll = coll_r.value();
  ASSERT_TRUE(coll->Insert("{\"a\": 1}").ok());
  ASSERT_TRUE(coll->Insert("{\"a\": 2}").ok());
  EXPECT_TRUE(coll->CheckConsistency().consistent);

  coll->Detach();
  coll->Detach();  // idempotent

  // DML behind the facade's back is no longer observed: the index misses
  // the new document, which CheckConsistency must surface.
  ASSERT_TRUE(
      db_.GetTable("DET")
          .value()
          ->Insert({Value::Int64(3), Value::String("{\"a\": 3}")})
          .ok());
  ConsistencyReport report = coll->CheckConsistency();
  EXPECT_FALSE(report.consistent);
  EXPECT_EQ(report.live_rows, 3u);
  EXPECT_EQ(report.indexed_docs, 2u);
}

}  // namespace
}  // namespace fsdm::collection
