#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "collection/collection.h"
#include "collection/collections_table.h"
#include "collection/path_stats_table.h"
#include "common/hash.h"
#include "rdbms/executor.h"
#include "stats/operator_costs.h"

namespace fsdm::collection {
namespace {

CollectionOptions Sharded(size_t n) {
  CollectionOptions opts;
  opts.shard_count = n;
  return opts;
}

std::string Doc(int i) {
  return "{\"num\":" + std::to_string(i * 10) + ",\"tag\":\"t" +
         std::to_string(i % 7) + "\"}";
}

/// Sorted DID display strings a plan emits.
std::vector<std::string> DrainKeys(rdbms::Operator* plan) {
  auto rows = rdbms::Collect(plan);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<std::string> keys;
  if (rows.ok()) {
    for (const rdbms::Row& row : rows.value())
      keys.push_back(row[0].ToDisplayString());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

class ShardedCollectionTest : public ::testing::Test {
 protected:
  void SetUp() override { stats::OperatorCostModel::Global().Reset(); }
  rdbms::Database db_;
};

// The placement contract: seeded FNV-1a 64 over the key's display string,
// modulo the shard count. These exact values are part of the on-disk-
// equivalent contract — if this test breaks, kShardPlacementSeed or the
// hash changed, which re-shards every existing collection.
TEST_F(ShardedCollectionTest, PlacementIsPinnedBySeededHash) {
  EXPECT_EQ(ShardPlacementHash("7"), 16291685135482983714ull);
  EXPECT_EQ(ShardPlacementHash("order-1001") % 4, 0u);

  auto c4 = JsonCollection::Create(&db_, "P4", Sharded(4)).MoveValue();
  const size_t expected4[] = {0, 1, 2, 3, 0, 1, 2, 3};  // keys 1..8
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(c4->ShardForKey(Value::Int64(k)), expected4[k - 1])
        << "key " << k;
    // Integer key and its display string place identically.
    EXPECT_EQ(c4->ShardForKey(Value::String(std::to_string(k))),
              expected4[k - 1]);
  }

  auto c8 = JsonCollection::Create(&db_, "P8", Sharded(8)).MoveValue();
  const size_t expected8[] = {0, 1, 6, 7, 4, 5, 2, 3};  // keys 1..8
  for (int k = 1; k <= 8; ++k) {
    EXPECT_EQ(c8->ShardForKey(Value::Int64(k)), expected8[k - 1])
        << "key " << k;
  }
}

TEST_F(ShardedCollectionTest, SingleShardIsNotAFacade) {
  auto coll = JsonCollection::Create(&db_, "ONE", Sharded(1)).MoveValue();
  EXPECT_FALSE(coll->sharded());
  EXPECT_EQ(coll->shard_count(), 1u);
  EXPECT_EQ(coll->shard(0), coll.get());  // shard(0) is the collection
  ASSERT_NE(coll->table(), nullptr);      // classic single-table stack
  // Row ids are the identity mapping at N = 1.
  auto rid = coll->Insert(Value::Int64(5), Doc(5));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid.value(), 0u);
}

TEST_F(ShardedCollectionTest, RowIdsEncodeShardAndRoundTrip) {
  auto coll = JsonCollection::Create(&db_, "RT", Sharded(4)).MoveValue();
  EXPECT_TRUE(coll->sharded());
  EXPECT_EQ(coll->table(), nullptr);  // facade has no single backing table

  std::vector<size_t> row_ids;
  for (int k = 1; k <= 8; ++k) {
    auto rid = coll->Insert(Value::Int64(k), Doc(k));
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    // row_id encodes (local * N + shard).
    EXPECT_EQ(rid.value() % 4, coll->ShardForKey(Value::Int64(k)));
    row_ids.push_back(rid.value());
  }
  EXPECT_EQ(coll->document_count(), 8u);

  // Replace through the facade-encoded row id, keeping the key on its
  // shard, then delete through it.
  ASSERT_TRUE(coll->Replace(row_ids[0], Value::Int64(1), Doc(100)).ok());
  EXPECT_EQ(coll->document_count(), 8u);
  ASSERT_TRUE(coll->Delete(row_ids[3]).ok());
  EXPECT_EQ(coll->document_count(), 7u);
}

TEST_F(ShardedCollectionTest, CrossShardReplaceIsRejected) {
  auto coll = JsonCollection::Create(&db_, "XS", Sharded(4)).MoveValue();
  auto rid = coll->Insert(Value::Int64(1), Doc(1));  // shard 0
  ASSERT_TRUE(rid.ok());
  // Key 2 places on shard 1: a Replace may not migrate the document.
  Status moved = coll->Replace(rid.value(), Value::Int64(2), Doc(2));
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.code(), StatusCode::kInvalidArgument);
  // Same-shard re-key is fine (key 5 also places on shard 0).
  EXPECT_TRUE(coll->Replace(rid.value(), Value::Int64(5), Doc(5)).ok());
}

// The tentpole equivalence: a routed query over a sharded collection
// returns exactly the rows a forced full scan returns, at every shard
// count — the parallel fan-out changes the plan shape, never the answer.
TEST_F(ShardedCollectionTest, RoutedMatchesForcedFullScanAcrossShardCounts) {
  for (size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
    auto coll = JsonCollection::Create(
                    &db_, "EQ" + std::to_string(shards), Sharded(shards))
                    .MoveValue();
    for (int i = 1; i <= 60; ++i) {
      ASSERT_TRUE(coll->Insert(Value::Int64(i), Doc(i)).ok());
    }

    // Forced full scan: JSON_VALUE($.num) >= 300 over the raw scan.
    auto jv = coll->JsonValueExpr("$.num", sqljson::Returning::kNumber);
    ASSERT_TRUE(jv.ok());
    auto full = rdbms::Filter(coll->Scan(),
                              rdbms::Ge(jv.value(),
                                        rdbms::Lit(Value::Int64(300))));
    std::vector<std::string> expected = DrainKeys(full.get());
    ASSERT_EQ(expected.size(), 31u);  // nums 300,310,...,600

    auto routed = coll->Route({PathPredicate::Compare(
        "$.num", rdbms::CompareOp::kGe, Value::Int64(300))});
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
    if (shards > 1) {
      EXPECT_EQ(routed.value().access_path, AccessPath::kShardedUnion);
    }
    EXPECT_EQ(DrainKeys(routed.value().plan.get()), expected)
        << "shards=" << shards;
  }
}

// One quarantined shard degrades the collection instead of killing it:
// reads keep flowing (including a plan routed before the quarantine),
// writes to the sick shard bounce, writes elsewhere proceed, and a
// facade RebuildIndex() heals everything.
TEST_F(ShardedCollectionTest, QuarantinedShardDegradesNotKills) {
  auto coll = JsonCollection::Create(&db_, "DEG", Sharded(4)).MoveValue();
  for (int i = 1; i <= 40; ++i) {
    ASSERT_TRUE(coll->Insert(Value::Int64(i), Doc(i)).ok());
  }
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);
  EXPECT_EQ(coll->healthy_shard_count(), 4u);

  // Route first, then degrade shard 2 mid-query (between routing and the
  // drain): the already-built plan must still complete.
  auto routed = coll->Route({PathPredicate::Compare(
      "$.num", rdbms::CompareOp::kGe, Value::Int64(10))});
  ASSERT_TRUE(routed.ok());
  coll->shard(2)->Quarantine("forced by test");

  EXPECT_EQ(coll->health(), CollectionHealth::kIndexDegraded);
  EXPECT_EQ(coll->healthy_shard_count(), 3u);
  EXPECT_NE(coll->health_reason().find("shard 2"), std::string::npos);

  EXPECT_EQ(DrainKeys(routed.value().plan.get()).size(), 40u);

  // A fresh routed query also still answers (the sick shard routes in
  // degraded mode — full scan — rather than failing the collection).
  auto after = coll->Route({PathPredicate::Compare(
      "$.num", rdbms::CompareOp::kGe, Value::Int64(10))});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(DrainKeys(after.value().plan.get()).size(), 40u);

  // Writes: key 3 places on shard 2 (quarantined) and bounces; key 43
  // places on shard 0 and proceeds.
  ASSERT_EQ(coll->ShardForKey(Value::Int64(3)), 2u);
  EXPECT_FALSE(coll->Insert(Value::Int64(3), Doc(3)).ok());
  ASSERT_EQ(coll->ShardForKey(Value::Int64(43)), 0u);
  EXPECT_TRUE(coll->Insert(Value::Int64(43), Doc(43)).ok());

  // Facade rebuild heals every shard.
  ASSERT_TRUE(coll->RebuildIndex().ok());
  EXPECT_EQ(coll->health(), CollectionHealth::kHealthy);
  EXPECT_EQ(coll->healthy_shard_count(), 4u);
  EXPECT_TRUE(coll->Insert(Value::Int64(3), Doc(3)).ok());
}

TEST_F(ShardedCollectionTest, AllShardsQuarantinedIsQuarantined) {
  auto coll = JsonCollection::Create(&db_, "QALL", Sharded(2)).MoveValue();
  ASSERT_TRUE(coll->Insert(Value::Int64(1), Doc(1)).ok());
  coll->Quarantine("ops hold");  // facade call fans out to every shard
  EXPECT_EQ(coll->health(), CollectionHealth::kQuarantined);
  EXPECT_EQ(coll->healthy_shard_count(), 0u);
  EXPECT_FALSE(coll->Insert(Value::Int64(2), Doc(2)).ok());
}

// Post-chaos consistency: after a DML storm the per-shard structures and
// the placement invariant all check out; a document smuggled onto the
// wrong shard is caught by the placement cross-check.
TEST_F(ShardedCollectionTest, CheckConsistencyCoversShardsAndPlacement) {
  auto coll = JsonCollection::Create(&db_, "CC", Sharded(4)).MoveValue();
  std::vector<size_t> rids;
  for (int i = 1; i <= 40; ++i) {
    auto rid = coll->Insert(Value::Int64(i), Doc(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  for (int i = 0; i < 40; i += 5) ASSERT_TRUE(coll->Delete(rids[i]).ok());
  for (int i = 1; i < 40; i += 7) {
    if (i % 5 == 0) continue;  // that row was deleted above
    ASSERT_TRUE(
        coll->Replace(rids[i], Value::Int64(i + 1), Doc(1000 + i)).ok());
  }

  ConsistencyReport report = coll->CheckConsistency();
  EXPECT_TRUE(report.consistent) << report.ToString();
  EXPECT_EQ(report.live_rows, 32u);

  // Smuggle a document onto shard 3 whose key belongs on shard 0 (key 9),
  // bypassing the facade via the shard's raw table.
  ASSERT_EQ(coll->ShardForKey(Value::Int64(9)), 0u);
  ASSERT_TRUE(coll->shard(3)
                  ->table()
                  ->Insert({Value::Int64(9), Value::String(Doc(9))})
                  .ok());
  ConsistencyReport bad = coll->CheckConsistency();
  EXPECT_FALSE(bad.consistent);
  bool flagged = false;
  for (const std::string& p : bad.problems) {
    if (p.find("placement") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged) << bad.ToString();
}

TEST_F(ShardedCollectionTest, TelemetryTablesExposeShardColumns) {
  auto plain = JsonCollection::Create(&db_, "T1").MoveValue();
  auto facade = JsonCollection::Create(&db_, "T4", Sharded(4)).MoveValue();
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(plain->Insert(Value::Int64(i), Doc(i)).ok());
    ASSERT_TRUE(facade->Insert(Value::Int64(i), Doc(i)).ok());
  }
  facade->shard(1)->Quarantine("test");

  auto colls = CollectionsScan();
  const rdbms::Schema& cs = colls->schema();
  size_t name_at = cs.IndexOf("NAME");
  size_t shards_at = cs.IndexOf("SHARDS");
  size_t healthy_at = cs.IndexOf("SHARDS_HEALTHY");
  ASSERT_NE(shards_at, rdbms::Schema::npos);
  ASSERT_NE(healthy_at, rdbms::Schema::npos);
  auto rows = rdbms::Collect(colls.get()).MoveValue();
  bool saw_plain = false, saw_facade = false;
  for (const rdbms::Row& row : rows) {
    if (row[name_at].ToDisplayString() == "T1") {
      saw_plain = true;
      EXPECT_EQ(row[shards_at].AsInt64(), 1);
      EXPECT_EQ(row[healthy_at].AsInt64(), 1);
    }
    if (row[name_at].ToDisplayString() == "T4") {
      saw_facade = true;
      EXPECT_EQ(row[shards_at].AsInt64(), 4);
      EXPECT_EQ(row[healthy_at].AsInt64(), 3);  // shard 1 quarantined
    }
  }
  EXPECT_TRUE(saw_plain);
  EXPECT_TRUE(saw_facade);
  // Shard backing collections stay out of the registry: only facades show.
  for (const rdbms::Row& row : rows) {
    EXPECT_EQ(row[name_at].ToDisplayString().find("$s"), std::string::npos);
  }

  auto stats = PathStatsScan();
  const rdbms::Schema& ps = stats->schema();
  size_t coll_at = ps.IndexOf("COLLECTION");
  size_t shard_at = ps.IndexOf("SHARD");
  ASSERT_NE(shard_at, rdbms::Schema::npos);
  auto stat_rows = rdbms::Collect(stats.get()).MoveValue();
  std::vector<int64_t> facade_shards;
  for (const rdbms::Row& row : stat_rows) {
    if (row[coll_at].ToDisplayString() == "T4") {
      facade_shards.push_back(row[shard_at].AsInt64());
    } else if (row[coll_at].ToDisplayString() == "T1") {
      EXPECT_EQ(row[shard_at].AsInt64(), 0);
    }
  }
  std::sort(facade_shards.begin(), facade_shards.end());
  facade_shards.erase(
      std::unique(facade_shards.begin(), facade_shards.end()),
      facade_shards.end());
  // 12 documents over 4 shards: every shard saw documents, so every shard
  // contributes its own statistics rows.
  EXPECT_EQ(facade_shards, (std::vector<int64_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace fsdm::collection
