#include "json/parser.h"

#include <gtest/gtest.h>

#include "json/node.h"
#include "json/serializer.h"

namespace fsdm::json {
namespace {

std::unique_ptr<JsonNode> MustParse(std::string_view text) {
  Result<std::unique_ptr<JsonNode>> r = Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.ok() ? r.MoveValue() : nullptr;
}

TEST(ParserTest, Scalars) {
  EXPECT_TRUE(MustParse("null")->scalar().is_null());
  EXPECT_EQ(MustParse("true")->scalar().AsBool(), true);
  EXPECT_EQ(MustParse("false")->scalar().AsBool(), false);
  EXPECT_EQ(MustParse("42")->scalar().AsInt64(), 42);
  EXPECT_EQ(MustParse("-17")->scalar().AsInt64(), -17);
  EXPECT_EQ(MustParse("\"hello\"")->scalar().AsString(), "hello");
}

TEST(ParserTest, NumberTyping) {
  // Integral fits int64 -> kInt64.
  EXPECT_EQ(MustParse("123")->scalar().type(), ScalarType::kInt64);
  // 1e2 is integral -> int64 fast path after Decimal normalization.
  EXPECT_EQ(MustParse("1e2")->scalar().AsInt64(), 100);
  // Fractional -> Decimal, exactly.
  const JsonNode* n = MustParse("0.1").release();
  EXPECT_EQ(n->scalar().type(), ScalarType::kDecimal);
  EXPECT_EQ(n->scalar().AsDecimal().ToString(), "0.1");
  delete n;
  // Beyond int64 -> Decimal.
  EXPECT_EQ(MustParse("99999999999999999999")->scalar().type(),
            ScalarType::kDecimal);
}

TEST(ParserTest, Objects) {
  auto doc = MustParse(R"({"a": 1, "b": {"c": [2, 3]}})");
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->field_count(), 2u);
  EXPECT_EQ(doc->GetField("a")->scalar().AsInt64(), 1);
  const JsonNode* b = doc->GetField("b");
  ASSERT_TRUE(b->is_object());
  const JsonNode* c = b->GetField("c");
  ASSERT_TRUE(c->is_array());
  EXPECT_EQ(c->array_size(), 2u);
  EXPECT_EQ(c->element(1)->scalar().AsInt64(), 3);
}

TEST(ParserTest, EmptyContainers) {
  EXPECT_EQ(MustParse("{}")->field_count(), 0u);
  EXPECT_EQ(MustParse("[]")->array_size(), 0u);
  EXPECT_EQ(MustParse("[{},[]]")->array_size(), 2u);
}

TEST(ParserTest, WhitespaceTolerance) {
  auto doc = MustParse(" \t\n{ \"a\" :\r [ 1 , 2 ] } \n");
  EXPECT_EQ(doc->GetField("a")->array_size(), 2u);
}

TEST(ParserTest, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b")")->scalar().AsString(), "a\"b");
  EXPECT_EQ(MustParse(R"("a\\b")")->scalar().AsString(), "a\\b");
  EXPECT_EQ(MustParse(R"("a\/b")")->scalar().AsString(), "a/b");
  EXPECT_EQ(MustParse(R"("\b\f\n\r\t")")->scalar().AsString(),
            "\b\f\n\r\t");
  EXPECT_EQ(MustParse(R"("A")")->scalar().AsString(), "A");
  EXPECT_EQ(MustParse(R"("é")")->scalar().AsString(), "\xc3\xa9");
  EXPECT_EQ(MustParse(R"("中")")->scalar().AsString(),
            "\xe4\xb8\xad");  // CJK, 3-byte UTF-8
  // Surrogate pair: U+1F600.
  EXPECT_EQ(MustParse(R"("😀")")->scalar().AsString(),
            "\xf0\x9f\x98\x80");
}

TEST(ParserTest, EscapesInsideLongerString) {
  EXPECT_EQ(MustParse(R"("preApost")")->scalar().AsString(), "preApost");
  EXPECT_EQ(MustParse(R"("x\ny")")->scalar().AsString(), "x\ny");
}

TEST(ParserTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "}", "[1,", "[1 2]", "{\"a\":}", "{\"a\" 1}", "{a:1}",
        "tru", "nul", "+1", "01", "1.", ".5", "1e", "\"abc", "\"\\x\"",
        "\"\\u12\"", "[1]]", "{}{}", "\"\\ud800\"", "\"\\ud800\\u0041\"",
        "\x01", "\"tab\tliteral\""}) {
    EXPECT_FALSE(Parse(bad).ok()) << "should reject: " << bad;
  }
}

TEST(ParserTest, DepthLimit) {
  std::string deep(600, '[');
  deep += std::string(600, ']');
  EXPECT_FALSE(Parse(deep).ok());
  ParseOptions opts;
  opts.max_depth = 1000;
  EXPECT_TRUE(Parse(deep, opts).ok());
}

TEST(ParserTest, DuplicateKeysPolicy) {
  const char* doc = R"({"a":1,"a":2})";
  EXPECT_TRUE(Parse(doc).ok());  // allowed by default
  ParseOptions strict;
  strict.reject_duplicate_keys = true;
  EXPECT_FALSE(Parse(doc, strict).ok());
}

TEST(ParserTest, ValidateMatchesParse) {
  EXPECT_TRUE(Validate(R"({"a":[1,2,{"b":null}]})").ok());
  EXPECT_FALSE(Validate("{bad}").ok());
}

TEST(ParserTest, ErrorsCarryOffset) {
  Status st = Validate("[1, 2, oops]");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("offset"), std::string::npos);
}

// Event-stream test: count events of each kind.
class CountingHandler : public JsonEventHandler {
 public:
  Status OnStartObject() override { ++objects; return Status::Ok(); }
  Status OnEndObject() override { return Status::Ok(); }
  Status OnStartArray() override { ++arrays; return Status::Ok(); }
  Status OnEndArray() override { return Status::Ok(); }
  Status OnKey(std::string_view) override { ++keys; return Status::Ok(); }
  Status OnString(std::string_view) override { ++strings; return Status::Ok(); }
  Status OnNumber(std::string_view) override { ++numbers; return Status::Ok(); }
  Status OnBool(bool) override { ++bools; return Status::Ok(); }
  Status OnNull() override { ++nulls; return Status::Ok(); }

  int objects = 0, arrays = 0, keys = 0, strings = 0, numbers = 0, bools = 0,
      nulls = 0;
};

TEST(ParserTest, EventStream) {
  CountingHandler h;
  ASSERT_TRUE(ParseEvents(
                  R"({"a":[1,"x",true,null],"b":{"c":2.5}})", &h)
                  .ok());
  EXPECT_EQ(h.objects, 2);
  EXPECT_EQ(h.arrays, 1);
  EXPECT_EQ(h.keys, 3);
  EXPECT_EQ(h.strings, 1);
  EXPECT_EQ(h.numbers, 2);
  EXPECT_EQ(h.bools, 1);
  EXPECT_EQ(h.nulls, 1);
}

TEST(ParserTest, HandlerErrorAbortsParse) {
  class Aborting final : public CountingHandler {
   public:
    Status OnNumber(std::string_view) override {
      return Status::Internal("stop");
    }
  } h;
  EXPECT_FALSE(ParseEvents("[1]", &h).ok());
}

TEST(NumberTextToValueTest, FastAndSlowPaths) {
  EXPECT_EQ(NumberTextToValue("0").value().AsInt64(), 0);
  EXPECT_EQ(NumberTextToValue("-123456789012345678").value().AsInt64(),
            -123456789012345678LL);
  EXPECT_EQ(NumberTextToValue("3.5").value().type(), ScalarType::kDecimal);
  // 19-digit integer exceeds the fast path but still lands in int64.
  EXPECT_EQ(NumberTextToValue("1234567890123456789").value().AsInt64(),
            1234567890123456789LL);
}

}  // namespace
}  // namespace fsdm::json
