#include "json/serializer.h"

#include <gtest/gtest.h>

#include "json/parser.h"

namespace fsdm::json {
namespace {

std::string RoundTrip(std::string_view text) {
  auto doc = Parse(text).MoveValue();
  return Serialize(*doc);
}

TEST(SerializerTest, CompactForm) {
  EXPECT_EQ(RoundTrip(R"({ "a" : 1 , "b" : [ true , null ] })"),
            R"({"a":1,"b":[true,null]})");
  EXPECT_EQ(RoundTrip("{}"), "{}");
  EXPECT_EQ(RoundTrip("[]"), "[]");
  EXPECT_EQ(RoundTrip("\"x\""), "\"x\"");
}

TEST(SerializerTest, PreservesFieldOrder) {
  EXPECT_EQ(RoundTrip(R"({"z":1,"a":2,"m":3})"), R"({"z":1,"a":2,"m":3})");
}

TEST(SerializerTest, NumbersCanonical) {
  EXPECT_EQ(RoundTrip("12.500"), "12.5");
  EXPECT_EQ(RoundTrip("1e2"), "100");
  EXPECT_EQ(RoundTrip("-0.25"), "-0.25");
}

TEST(SerializerTest, EscapesSpecials) {
  auto doc = Parse(R"(["a\"b\\c\nd"])").MoveValue();
  EXPECT_EQ(Serialize(*doc), "[\"a\\\"b\\\\c\\nd\"]");
}


TEST(SerializerTest, ControlCharsUseUnicodeEscape) {
  auto doc = Parse(R"(["\u0001\u001f"])").MoveValue();
  EXPECT_EQ(Serialize(*doc), "[\"\\u0001\\u001f\"]");
}

TEST(SerializerTest, Utf8PassThrough) {
  EXPECT_EQ(RoundTrip("[\"\xc3\xa9\"]"), "[\"\xc3\xa9\"]");
}

TEST(SerializerTest, PrettyForm) {
  SerializeOptions opts;
  opts.pretty = true;
  auto doc = Parse(R"({"a":[1]})").MoveValue();
  EXPECT_EQ(Serialize(*doc, opts), "{\n  \"a\": [\n    1\n  ]\n}");
}

TEST(SerializerTest, FullRoundTripIdempotence) {
  // serialize(parse(serialize(parse(x)))) == serialize(parse(x))
  for (const char* text :
       {R"({"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[{"name":"phone","price":100,"quantity":2},{"name":"ipad","price":350.86,"quantity":3}]}})",
        "[[[[]]]]", R"({"deep":{"er":{"est":[null,true,false,0.001]}}})"}) {
    std::string once = RoundTrip(text);
    EXPECT_EQ(RoundTrip(once), once);
  }
}

TEST(SerializerTest, ParseSerializeEqualsStructurally) {
  const char* text =
      R"({"a":1,"b":[1.5,"x",{"c":null}],"d":true})";
  auto original = Parse(text).MoveValue();
  auto reparsed = Parse(Serialize(*original)).MoveValue();
  EXPECT_TRUE(original->Equals(*reparsed));
}

}  // namespace
}  // namespace fsdm::json
