#include "json/node.h"

#include <gtest/gtest.h>

#include "json/dom.h"
#include "json/parser.h"

namespace fsdm::json {
namespace {

TEST(NodeTest, BuildTreeManually) {
  auto obj = JsonNode::MakeObject();
  obj->AddField("name", JsonNode::MakeString("phone"));
  obj->AddField("price", JsonNode::MakeNumber(int64_t{100}));
  auto* items = obj->AddField("tags", JsonNode::MakeArray());
  items->Append(JsonNode::MakeString("mobile"));
  items->Append(JsonNode::MakeBool(true));
  items->Append(JsonNode::MakeNull());

  EXPECT_EQ(obj->field_count(), 3u);
  EXPECT_EQ(obj->GetField("price")->scalar().AsInt64(), 100);
  EXPECT_EQ(obj->GetField("tags")->array_size(), 3u);
  EXPECT_EQ(obj->GetField("missing"), nullptr);
}

TEST(NodeTest, KindPredicates) {
  EXPECT_TRUE(JsonNode::MakeObject()->is_object());
  EXPECT_TRUE(JsonNode::MakeArray()->is_array());
  EXPECT_TRUE(JsonNode::MakeNull()->is_scalar());
  EXPECT_EQ(NodeKindName(NodeKind::kObject), "object");
  EXPECT_EQ(NodeKindName(NodeKind::kArray), "array");
  EXPECT_EQ(NodeKindName(NodeKind::kScalar), "scalar");
}

TEST(NodeTest, EqualsIsStructural) {
  auto a = Parse(R"({"x":1,"y":[true,"s"]})").MoveValue();
  auto b = Parse(R"({"y":[true,"s"],"x":1})").MoveValue();  // reordered
  auto c = Parse(R"({"x":1,"y":[true,"t"]})").MoveValue();
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(NodeTest, EqualsNumericCoercion) {
  auto a = Parse("[1.0]").MoveValue();
  auto b = Parse("[1]").MoveValue();
  EXPECT_TRUE(a->Equals(*b));  // 1.0 == 1 numerically
  auto c = Parse("[\"1\"]").MoveValue();
  EXPECT_FALSE(a->Equals(*c));
}

TEST(NodeTest, CloneIsDeep) {
  auto a = Parse(R"({"k":{"n":[1,2,3]}})").MoveValue();
  auto b = a->Clone();
  EXPECT_TRUE(a->Equals(*b));
  // Mutate the clone; original unchanged.
  b->mutable_field_value(0)->AddField("extra", JsonNode::MakeNull());
  EXPECT_FALSE(a->Equals(*b));
}

TEST(TreeDomTest, NavigationMatchesTree) {
  auto doc = Parse(R"({"a":{"b":[10,20]},"c":"str"})").MoveValue();
  TreeDom dom(doc.get());

  Dom::NodeRef root = dom.root();
  EXPECT_EQ(dom.GetNodeType(root), NodeKind::kObject);
  EXPECT_EQ(dom.GetFieldCount(root), 2u);

  Dom::NodeRef a = dom.GetFieldValue(root, "a");
  ASSERT_NE(a, Dom::kInvalidNode);
  Dom::NodeRef b = dom.GetFieldValue(a, "b");
  ASSERT_NE(b, Dom::kInvalidNode);
  EXPECT_EQ(dom.GetNodeType(b), NodeKind::kArray);
  EXPECT_EQ(dom.GetArrayLength(b), 2u);

  Dom::NodeRef el = dom.GetArrayElement(b, 1);
  Value v;
  ASSERT_TRUE(dom.GetScalarValue(el, &v).ok());
  EXPECT_EQ(v.AsInt64(), 20);

  EXPECT_EQ(dom.GetArrayElement(b, 5), Dom::kInvalidNode);
  EXPECT_EQ(dom.GetFieldValue(root, "zz"), Dom::kInvalidNode);

  std::string_view name;
  Dom::NodeRef child;
  dom.GetFieldAt(root, 1, &name, &child);
  EXPECT_EQ(name, "c");
  EXPECT_EQ(dom.GetScalarType(child), ScalarType::kString);
}

}  // namespace
}  // namespace fsdm::json
