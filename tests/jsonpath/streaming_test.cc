#include "jsonpath/streaming.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "json/parser.h"
#include "jsonpath/evaluator.h"
#include "workloads/generators.h"

namespace fsdm::jsonpath {
namespace {

PathExpression P(const char* text) {
  return PathExpression::Parse(text).MoveValue();
}

constexpr const char* kDoc = R"({
  "purchaseOrder": {
    "id": 7, "podate": "2015-03-04",
    "items": [
      {"name": "phone", "price": 100},
      {"name": "ipad", "price": 350.86}
    ],
    "empty_arr": [],
    "nested": {"deep": {"leaf": true}}
  }
})";

TEST(StreamingTest, CanStreamClassification) {
  EXPECT_TRUE(StreamingPathEngine::CanStream(P("$")));
  EXPECT_TRUE(StreamingPathEngine::CanStream(P("$.a.b.c")));
  EXPECT_TRUE(StreamingPathEngine::CanStream(P("$.a.b[*]")));
  EXPECT_FALSE(StreamingPathEngine::CanStream(P("$.a[*].b")));
  EXPECT_FALSE(StreamingPathEngine::CanStream(P("$.a[0]")));
  EXPECT_FALSE(StreamingPathEngine::CanStream(P("$..a")));
  EXPECT_FALSE(StreamingPathEngine::CanStream(P("$.a?(@.b == 1)")));
  EXPECT_FALSE(StreamingPathEngine::CanStream(P("$.*")));
}

TEST(StreamingTest, FirstScalarBasics) {
  auto v = StreamingPathEngine::FirstScalar(kDoc, P("$.purchaseOrder.id"));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_EQ(v.value()->AsInt64(), 7);

  v = StreamingPathEngine::FirstScalar(kDoc,
                                       P("$.purchaseOrder.nested.deep.leaf"));
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value()->AsBool());

  // Missing path.
  v = StreamingPathEngine::FirstScalar(kDoc, P("$.purchaseOrder.ghost"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().has_value());

  // Container target -> nullopt (same as the DOM engine's FirstScalar).
  v = StreamingPathEngine::FirstScalar(kDoc, P("$.purchaseOrder.items"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().has_value());
}

TEST(StreamingTest, LaxArrayUnwrapThroughMemberSteps) {
  // .name through the items array: first element's name.
  auto v = StreamingPathEngine::FirstScalar(
      kDoc, P("$.purchaseOrder.items.name"));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_EQ(v.value()->AsString(), "phone");
}

TEST(StreamingTest, TrailingStar) {
  // items[*] -> first element is an object -> container -> nullopt, but
  // exists is true.
  auto v = StreamingPathEngine::FirstScalar(
      kDoc, P("$.purchaseOrder.items[*]"));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v.value().has_value());
  auto e = StreamingPathEngine::Exists(kDoc, P("$.purchaseOrder.items[*]"));
  EXPECT_TRUE(e.value());
  // Empty array: no elements -> not exists.
  e = StreamingPathEngine::Exists(kDoc, P("$.purchaseOrder.empty_arr[*]"));
  EXPECT_FALSE(e.value());
  // But the array node itself exists.
  e = StreamingPathEngine::Exists(kDoc, P("$.purchaseOrder.empty_arr"));
  EXPECT_TRUE(e.value());
  // [*] on a scalar: lax singleton.
  v = StreamingPathEngine::FirstScalar(kDoc, P("$.purchaseOrder.id[*]"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value()->AsInt64(), 7);
}

TEST(StreamingTest, UnsupportedPathsReportUnsupported) {
  auto v = StreamingPathEngine::FirstScalar(kDoc, P("$.a[0]"));
  EXPECT_EQ(v.status().code(), StatusCode::kUnsupported);
}

TEST(StreamingTest, MalformedTextReportsParseError) {
  auto v = StreamingPathEngine::FirstScalar("{oops", P("$.a"));
  EXPECT_EQ(v.status().code(), StatusCode::kParseError);
}

TEST(StreamingTest, EarlyExitToleratesTrailingGarbageAfterMatch) {
  // The engine stops parsing at the first match; garbage after the match
  // point is never seen. (Documents that fail IS JSON never reach the
  // engine, so this is a pure short-circuit behavior check.)
  std::string doc = R"({"a": 1, "b": )";  // truncated after the match
  auto v = StreamingPathEngine::FirstScalar(doc, P("$.a"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value()->AsInt64(), 1);
}

// Property: for every streamable path, streaming and DOM engines agree on
// random generated documents.
class StreamingEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(StreamingEquivalenceTest, MatchesDomEngine) {
  PathExpression path = P(GetParam());
  ASSERT_TRUE(StreamingPathEngine::CanStream(path));
  PathEvaluator dom_eval(&path);

  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    std::string doc = workloads::Nobench(&rng, i);
    auto tree = json::Parse(doc).MoveValue();
    json::TreeDom dom(tree.get());

    Result<std::optional<Value>> via_dom = dom_eval.FirstScalar(dom);
    Result<std::optional<Value>> via_stream =
        StreamingPathEngine::FirstScalar(doc, path);
    ASSERT_TRUE(via_dom.ok());
    ASSERT_TRUE(via_stream.ok());
    ASSERT_EQ(via_dom.value().has_value(), via_stream.value().has_value())
        << GetParam() << " doc " << i;
    if (via_dom.value().has_value()) {
      EXPECT_TRUE(
          via_dom.value()->EqualsForGrouping(*via_stream.value()))
          << GetParam();
    }

    Result<bool> e_dom = dom_eval.Exists(dom);
    Result<bool> e_stream = StreamingPathEngine::Exists(doc, path);
    ASSERT_TRUE(e_dom.ok());
    ASSERT_TRUE(e_stream.ok());
    EXPECT_EQ(e_dom.value(), e_stream.value()) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, StreamingEquivalenceTest,
                         ::testing::Values("$.str1", "$.num",
                                           "$.nested_obj.str",
                                           "$.nested_obj.missing",
                                           "$.nested_arr[*]", "$.sparse_110",
                                           "$.dyn1", "$.bool",
                                           "$.nested_arr", "$"));

}  // namespace
}  // namespace fsdm::jsonpath
