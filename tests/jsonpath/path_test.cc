#include <gtest/gtest.h>

#include <algorithm>

#include "bson/bson.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "jsonpath/evaluator.h"
#include "jsonpath/path.h"
#include "oson/oson.h"

namespace fsdm::jsonpath {
namespace {

constexpr const char* kDoc = R"({
  "purchaseOrder": {
    "id": 1,
    "podate": "2014-09-08",
    "items": [
      {"name": "phone", "price": 100, "quantity": 2},
      {"name": "ipad", "price": 350.86, "quantity": 3},
      {"name": "tv", "price": 345.55, "quantity": 1,
       "parts": [{"partName": "remote", "partQuantity": 1}]}
    ]
  }
})";

PathExpression MustParse(std::string_view text) {
  Result<PathExpression> r = PathExpression::Parse(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.MoveValue();
}

// Evaluates `path` against `doc_text` and returns the selected scalar
// values rendered as display strings.
std::vector<std::string> Eval(std::string_view path_text,
                              std::string_view doc_text) {
  auto doc = json::Parse(doc_text).MoveValue();
  json::TreeDom dom(doc.get());
  PathExpression path = MustParse(path_text);
  PathEvaluator eval(&path);
  std::vector<std::string> out;
  Status st = eval.Evaluate(dom, [&](json::Dom::NodeRef node, bool*) {
    if (dom.GetNodeType(node) == json::NodeKind::kScalar) {
      Value v;
      EXPECT_TRUE(dom.GetScalarValue(node, &v).ok());
      out.push_back(v.ToDisplayString());
    } else {
      out.push_back(dom.GetNodeType(node) == json::NodeKind::kObject
                        ? "<object>"
                        : "<array>");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(PathParseTest, ParsesAndPrints) {
  EXPECT_EQ(MustParse("$").ToString(), "$");
  EXPECT_EQ(MustParse("$.a.b").ToString(), "$.a.b");
  EXPECT_EQ(MustParse("$.a[*].b").ToString(), "$.a[*].b");
  EXPECT_EQ(MustParse("$.a[0].b").ToString(), "$.a[0].b");
  EXPECT_EQ(MustParse("$.a[1 to 3]").ToString(), "$.a[1 to 3]");
  EXPECT_EQ(MustParse("$.a[0,2]").ToString(), "$.a[0,2]");
  EXPECT_EQ(MustParse("$.*").ToString(), "$.*");
  EXPECT_EQ(MustParse("$..name").ToString(), "$..name");
  EXPECT_EQ(MustParse(R"($."weird name".x)").ToString(),
            R"($."weird name".x)");
  EXPECT_EQ(MustParse("$.a?(@.b > 5)").ToString(), "$.a?(@.b > 5)");
  EXPECT_EQ(MustParse("$.a?(exists(@.b))").ToString(), "$.a?(exists(@.b))");
  EXPECT_EQ(MustParse("$.a?(@.b == \"x\" && @.c < 2)").ToString(),
            "$.a?((@.b == \"x\" && @.c < 2))");
}

TEST(PathParseTest, RoundTripThroughToString) {
  for (const char* p :
       {"$", "$.a.b.c", "$.a[*]", "$..deep", "$.x?(@.y >= 2.5)",
        "$.a?(!(@.b == 1) || exists(@.c))"}) {
    PathExpression once = MustParse(p);
    PathExpression twice = MustParse(once.ToString());
    EXPECT_EQ(once.ToString(), twice.ToString()) << p;
  }
}

TEST(PathParseTest, RejectsMalformed) {
  for (const char* bad :
       {"", "a.b", "$.", "$[", "$[1", "$[a]", "$[-1]", "$[3 to 1]", "$.a?",
        "$.a?(", "$.a?()", "$.a?(@.b >)", "$.a?(@.b ~ 1)", "$ x", "$..",
        "$.a?(exists(@.b)", "$.\"\""}) {
    EXPECT_FALSE(PathExpression::Parse(bad).ok()) << "should reject: " << bad;
  }
}

TEST(PathParseTest, IsSingleton) {
  EXPECT_TRUE(MustParse("$.a.b").IsSingleton());
  EXPECT_TRUE(MustParse("$").IsSingleton());
  EXPECT_FALSE(MustParse("$.a[*]").IsSingleton());
  EXPECT_FALSE(MustParse("$.a[0]").IsSingleton());
  EXPECT_FALSE(MustParse("$..a").IsSingleton());
  EXPECT_FALSE(MustParse("$.*").IsSingleton());
}

TEST(PathEvalTest, MemberSteps) {
  EXPECT_EQ(Eval("$.purchaseOrder.id", kDoc),
            std::vector<std::string>{"1"});
  EXPECT_EQ(Eval("$.purchaseOrder.podate", kDoc),
            std::vector<std::string>{"2014-09-08"});
  EXPECT_TRUE(Eval("$.purchaseOrder.missing", kDoc).empty());
  EXPECT_TRUE(Eval("$.nothing.at.all", kDoc).empty());
}

TEST(PathEvalTest, LaxArrayUnwrapOnMemberStep) {
  // .name applied to the items *array* iterates elements (lax mode).
  EXPECT_EQ(Eval("$.purchaseOrder.items.name", kDoc),
            (std::vector<std::string>{"phone", "ipad", "tv"}));
  // Deep unwrap through two array levels requires explicit [*] for the
  // second level only.
  EXPECT_EQ(Eval("$.purchaseOrder.items.parts.partName", kDoc),
            (std::vector<std::string>{"remote"}));
}

TEST(PathEvalTest, ArraySubscripts) {
  EXPECT_EQ(Eval("$.purchaseOrder.items[0].name", kDoc),
            std::vector<std::string>{"phone"});
  EXPECT_EQ(Eval("$.purchaseOrder.items[2].name", kDoc),
            std::vector<std::string>{"tv"});
  EXPECT_TRUE(Eval("$.purchaseOrder.items[9].name", kDoc).empty());
  EXPECT_EQ(Eval("$.purchaseOrder.items[0 to 1].name", kDoc),
            (std::vector<std::string>{"phone", "ipad"}));
  EXPECT_EQ(Eval("$.purchaseOrder.items[0,2].name", kDoc),
            (std::vector<std::string>{"phone", "tv"}));
  EXPECT_EQ(Eval("$.purchaseOrder.items[*].name", kDoc),
            (std::vector<std::string>{"phone", "ipad", "tv"}));
}

TEST(PathEvalTest, LaxSingletonArrayTreatment) {
  // Subscript [0] on a non-array selects the node itself.
  EXPECT_EQ(Eval("$.purchaseOrder.id[0]", kDoc),
            std::vector<std::string>{"1"});
  EXPECT_TRUE(Eval("$.purchaseOrder.id[1]", kDoc).empty());
  // [*] on a non-array selects the node itself.
  EXPECT_EQ(Eval("$.purchaseOrder.id[*]", kDoc),
            std::vector<std::string>{"1"});
}

TEST(PathEvalTest, Wildcards) {
  EXPECT_EQ(Eval("$.purchaseOrder.items[0].*", kDoc),
            (std::vector<std::string>{"phone", "100", "2"}));
  std::vector<std::string> top = Eval("$.*", kDoc);
  EXPECT_EQ(top, std::vector<std::string>{"<object>"});
}

TEST(PathEvalTest, DescendantStep) {
  EXPECT_EQ(Eval("$..partName", kDoc), std::vector<std::string>{"remote"});
  EXPECT_EQ(Eval("$..name", kDoc),
            (std::vector<std::string>{"phone", "ipad", "tv"}));
  EXPECT_EQ(Eval("$..quantity", kDoc),
            (std::vector<std::string>{"2", "3", "1"}));
}

TEST(PathEvalTest, FilterPredicates) {
  EXPECT_EQ(Eval("$.purchaseOrder.items[*]?(@.price > 200).name", kDoc),
            (std::vector<std::string>{"ipad", "tv"}));
  EXPECT_EQ(Eval("$.purchaseOrder.items[*]?(@.name == \"phone\").price",
                 kDoc),
            std::vector<std::string>{"100"});
  EXPECT_EQ(Eval("$.purchaseOrder.items[*]?(exists(@.parts)).name", kDoc),
            std::vector<std::string>{"tv"});
  EXPECT_EQ(
      Eval("$.purchaseOrder.items[*]?(@.price > 200 && @.quantity >= 3).name",
           kDoc),
      std::vector<std::string>{"ipad"});
  EXPECT_EQ(
      Eval("$.purchaseOrder.items[*]?(@.price < 200 || @.quantity == 1).name",
           kDoc),
      (std::vector<std::string>{"phone", "tv"}));
  EXPECT_EQ(Eval("$.purchaseOrder.items[*]?(!exists(@.parts)).name", kDoc),
            (std::vector<std::string>{"phone", "ipad"}));
}

TEST(PathEvalTest, FilterAppliedToArrayFiltersElements) {
  // Lax mode: ?(...) directly on the array filters its elements.
  EXPECT_EQ(Eval("$.purchaseOrder.items?(@.price > 300).name", kDoc),
            (std::vector<std::string>{"ipad", "tv"}));
}

TEST(PathEvalTest, TypeMismatchedComparisonIsFalse) {
  EXPECT_TRUE(Eval("$.purchaseOrder.items[*]?(@.name > 5).name", kDoc)
                  .empty());
}

TEST(PathEvalTest, ExistsAndFirstScalar) {
  auto doc = json::Parse(kDoc).MoveValue();
  json::TreeDom dom(doc.get());
  PathExpression p1 = MustParse("$.purchaseOrder.items[*].parts");
  PathEvaluator e1(&p1);
  EXPECT_TRUE(e1.Exists(dom).value());

  PathExpression p2 = MustParse("$.purchaseOrder.ghost");
  PathEvaluator e2(&p2);
  EXPECT_FALSE(e2.Exists(dom).value());

  PathExpression p3 = MustParse("$.purchaseOrder.id");
  PathEvaluator e3(&p3);
  auto v = e3.FirstScalar(dom).MoveValue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->AsInt64(), 1);

  // Non-scalar target -> nullopt.
  PathExpression p4 = MustParse("$.purchaseOrder.items");
  PathEvaluator e4(&p4);
  EXPECT_FALSE(e4.FirstScalar(dom).MoveValue().has_value());
}

// The same compiled path must select identical values over TreeDom, BsonDom
// and OsonDom — the cross-format equivalence at the heart of §5.1.
class CrossFormatTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossFormatTest, AllDomsAgree) {
  const char* path_text = GetParam();
  auto doc = json::Parse(kDoc).MoveValue();
  json::TreeDom tree_dom(doc.get());
  std::string bson_bytes = bson::EncodeFromText(kDoc).MoveValue();
  bson::BsonDom bson_dom = bson::BsonDom::Open(bson_bytes).MoveValue();
  std::string oson_bytes = oson::EncodeFromText(kDoc).MoveValue();
  oson::OsonDom oson_dom = oson::OsonDom::Open(oson_bytes).MoveValue();

  PathExpression path = MustParse(path_text);
  PathEvaluator eval(&path);

  auto collect = [&](const json::Dom& dom) {
    std::vector<std::string> out;
    Status st = eval.Evaluate(dom, [&](json::Dom::NodeRef n, bool*) {
      if (dom.GetNodeType(n) == json::NodeKind::kScalar) {
        Value v;
        EXPECT_TRUE(dom.GetScalarValue(n, &v).ok());
        out.push_back(v.ToDisplayString());
      } else {
        out.push_back("<container>");
      }
      return Status::Ok();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  };

  std::vector<std::string> via_tree = collect(tree_dom);
  std::vector<std::string> via_bson = collect(bson_dom);
  std::vector<std::string> via_oson = collect(oson_dom);
  // OSON stores object children in field-id order, so wildcard member
  // enumeration order is representation-specific; compare as multisets.
  // (Array element order is covered by PathEvalTest.ArraySubscripts.)
  std::sort(via_tree.begin(), via_tree.end());
  std::sort(via_bson.begin(), via_bson.end());
  std::sort(via_oson.begin(), via_oson.end());
  EXPECT_EQ(via_tree, via_oson) << path_text;
  EXPECT_EQ(via_tree, via_bson) << path_text;
}

INSTANTIATE_TEST_SUITE_P(
    Paths, CrossFormatTest,
    ::testing::Values("$.purchaseOrder.id", "$.purchaseOrder.items[*].name",
                      "$.purchaseOrder.items.price",
                      "$.purchaseOrder.items[1 to 2].quantity",
                      "$..partName", "$.purchaseOrder.items[*]?(@.price > 200).name",
                      "$.purchaseOrder.items[0].*", "$.purchaseOrder.missing",
                      "$.purchaseOrder.items?(exists(@.parts)).parts[*].partQuantity"));

TEST(PathEvalTest, FieldIdCacheReuseAcrossDocuments) {
  // Same evaluator over many OSON documents: the cached field id must keep
  // resolving correctly even when the dictionary changes between docs.
  PathExpression path = MustParse("$.a.b");
  PathEvaluator eval(&path);
  for (const char* text :
       {R"({"a":{"b":1}})", R"({"a":{"b":2}})",
        R"({"zzz":0,"a":{"b":3},"extra":1})", R"({"a":{"c":9}})",
        R"({"a":{"b":4}})"}) {
    std::string bytes = oson::EncodeFromText(text).MoveValue();
    oson::OsonDom dom = oson::OsonDom::Open(bytes).MoveValue();
    Result<std::optional<Value>> v = eval.FirstScalar(dom);
    ASSERT_TRUE(v.ok());
    std::string doc(text);
    if (doc.find("\"b\"") != std::string::npos) {
      ASSERT_TRUE(v.value().has_value()) << text;
    } else {
      EXPECT_FALSE(v.value().has_value()) << text;
    }
  }
}

}  // namespace
}  // namespace fsdm::jsonpath
