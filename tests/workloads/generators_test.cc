#include "workloads/generators.h"

#include <gtest/gtest.h>

#include "dataguide/dataguide.h"
#include "json/parser.h"

namespace fsdm::workloads {
namespace {

TEST(GeneratorsTest, PurchaseOrderIsValidJsonWithExpectedFields) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    std::string doc = PurchaseOrder(&rng, i);
    auto parsed = json::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    const json::JsonNode* po = parsed.value()->GetField("purchaseOrder");
    ASSERT_NE(po, nullptr);
    for (const char* field :
         {"id", "reference", "requestor", "costcenter", "podate",
          "instructions", "items"}) {
      EXPECT_NE(po->GetField(field), nullptr) << field;
    }
    const json::JsonNode* items = po->GetField("items");
    ASSERT_TRUE(items->is_array());
    ASSERT_GE(items->array_size(), 3u);
    const json::JsonNode* item = items->element(0);
    for (const char* field :
         {"itemno", "partno", "description", "quantity", "unitprice"}) {
      EXPECT_NE(item->GetField(field), nullptr) << field;
    }
  }
}

TEST(GeneratorsTest, PurchaseOrderRelationalMatchesJson) {
  Rng rng1(7), rng2(7);
  PurchaseOrderRelational rel = PurchaseOrderRows(&rng1, 42);
  std::string doc = PurchaseOrder(&rng2, 42);
  EXPECT_EQ(RenderPurchaseOrder(rel), doc);
  EXPECT_EQ(rel.id, 42);
  EXPECT_FALSE(rel.items.empty());
  // Reference embeds the requestor + id (Q6's SUBSTR/INSTR target shape).
  EXPECT_NE(rel.reference.find('-'), std::string::npos);
}

TEST(GeneratorsTest, GeneratorIsDeterministic) {
  Rng a(99), b(99);
  EXPECT_EQ(PurchaseOrder(&a, 1), PurchaseOrder(&b, 1));
  Rng c(100);
  EXPECT_NE(PurchaseOrder(&a, 1), PurchaseOrder(&c, 1));
}

TEST(GeneratorsTest, NobenchShape) {
  Rng rng(5);
  dataguide::DataGuide guide;
  int dyn_number = 0, dyn_string = 0;
  for (int i = 0; i < 200; ++i) {
    std::string doc = Nobench(&rng, i);
    auto parsed = json::Parse(doc);
    ASSERT_TRUE(parsed.ok()) << doc;
    const json::JsonNode* root = parsed.value().get();
    for (const char* field : {"str1", "str2", "num", "bool", "dyn1", "dyn2",
                              "nested_obj", "nested_arr", "thousandth"}) {
      EXPECT_NE(root->GetField(field), nullptr) << field;
    }
    // Exactly 10 sparse fields per doc.
    int sparse = 0;
    for (size_t f = 0; f < root->field_count(); ++f) {
      if (root->field_name(f).rfind("sparse_", 0) == 0) ++sparse;
    }
    EXPECT_EQ(sparse, 10);
    if (root->GetField("dyn1")->scalar().IsNumeric()) {
      ++dyn_number;
    } else {
      ++dyn_string;
    }
    ASSERT_TRUE(guide.AddJsonText(doc).ok());
  }
  // dyn1 is genuinely dynamically typed.
  EXPECT_GT(dyn_number, 40);
  EXPECT_GT(dyn_string, 40);
  // Sparse universe: hundreds of distinct paths accumulate (NOBENCH's
  // ~1000 sparse + 11 common fields; 200 docs cover a large fraction).
  EXPECT_GT(guide.distinct_path_count(), 300u);
}

TEST(GeneratorsTest, NobenchHeterogeneousMode) {
  Rng rng(5);
  NobenchOptions opt;
  opt.unique_field_per_doc = true;
  dataguide::DataGuide guide;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(guide.AddJsonText(Nobench(&rng, i, opt)).ok());
  }
  // Every doc adds its own uniq_i path.
  size_t uniq = 0;
  for (const dataguide::PathEntry* e : guide.SortedEntries()) {
    if (e->path.rfind("$.uniq_", 0) == 0) ++uniq;
  }
  EXPECT_EQ(uniq, 50u);
}

TEST(GeneratorsTest, YcsbShape) {
  Rng rng(3);
  std::string doc = Ycsb(&rng, 17);
  auto parsed = json::Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()->GetField("key")->scalar().AsString(), "user17");
  for (int f = 0; f < 10; ++f) {
    const json::JsonNode* field =
        parsed.value()->GetField("field" + std::to_string(f));
    ASSERT_NE(field, nullptr);
    EXPECT_EQ(field->scalar().AsString().size(), 100u);
  }
  // 10 fields + key -> 12 distinct paths incl. '$' (Table 12's YCSB row).
  dataguide::DataGuide guide;
  ASSERT_TRUE(guide.AddJsonText(doc).ok());
  EXPECT_EQ(guide.distinct_path_count(), 12u);
}

TEST(GeneratorsTest, AllTable10CollectionsParse) {
  for (const std::string& name : Table10CollectionNames()) {
    Rng rng(11);
    std::string doc = Collection(name, &rng, 1, /*scale=*/0.002);
    ASSERT_FALSE(doc.empty()) << name;
    EXPECT_TRUE(json::Validate(doc).ok()) << name;
  }
}

TEST(GeneratorsTest, LargeCollectionsScale) {
  Rng rng(2);
  std::string small = Collection("SensorData", &rng, 1, 0.001);
  Rng rng2(2);
  std::string bigger = Collection("SensorData", &rng2, 1, 0.01);
  EXPECT_GT(bigger.size(), small.size() * 5);
  // Repetitive structure: distinct paths stay constant as size grows.
  dataguide::DataGuide g1, g2;
  ASSERT_TRUE(g1.AddJsonText(small).ok());
  ASSERT_TRUE(g2.AddJsonText(bigger).ok());
  EXPECT_EQ(g1.distinct_path_count(), g2.distinct_path_count());
}

TEST(GeneratorsTest, CollectionSizeOrderingMatchesTable10) {
  // salesOrder < workOrder < purchaseOrder < eventMessage < bookOrder —
  // the relative size ordering of Table 10's small collections.
  auto avg_size = [](const std::string& name) {
    Rng rng(42);
    size_t total = 0;
    for (int i = 0; i < 30; ++i) {
      total += Collection(name, &rng, i).size();
    }
    return total / 30;
  };
  EXPECT_LT(avg_size("salesOrder"), avg_size("workOrder"));
  EXPECT_LT(avg_size("workOrder"), avg_size("eventMessage"));
  EXPECT_LT(avg_size("eventMessage"), avg_size("bookOrder"));
}

TEST(GeneratorsTest, UnknownCollectionYieldsEmptyObject) {
  Rng rng(1);
  EXPECT_EQ(Collection("nope", &rng, 1), "{}");
}

}  // namespace
}  // namespace fsdm::workloads
