#include "dataguide/views.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace fsdm::dataguide {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Row;
using rdbms::Table;
using sqljson::JsonStorage;

constexpr const char* kDoc1 =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08",
        "items":[{"name":"phone","price":100,"quantity":2},
                 {"name":"ipad","price":350.86,"quantity":3}]}})";

constexpr const char* kDoc3 =
    R"({"purchaseOrder":{"id":3,"podate":"2015-06-03","foreign_id":"CDEG35",
        "items":[{"name":"TV","price":345.55,"quantity":1,
                  "parts":[{"partName":"remoteCon","partQuantity":"1"}]}]}})";

constexpr const char* kDoc5 =
    R"({"purchaseOrder":{"id":5,"podate":"2015-08-03",
        "items":[{"name":"SSD","price":200,"quantity":1}],
        "discount_items":[{"dis_itemName":"cable","dis_itemPrice":5}]}})";

struct Fixture {
  std::unique_ptr<Table> table;
  DataGuide guide;

  explicit Fixture(std::vector<const char*> docs) {
    table = std::make_unique<Table>(
        "PO", std::vector<ColumnDef>{
                  {.name = "DID", .type = ColumnType::kNumber},
                  {.name = "JCOL",
                   .type = ColumnType::kJson,
                   .check_is_json = true},
              });
    int64_t id = 1;
    for (const char* doc : docs) {
      EXPECT_TRUE(
          table->Insert({Value::Int64(id++), Value::String(doc)}).ok());
      EXPECT_TRUE(guide.AddJsonText(doc).ok());
    }
  }
};

std::vector<std::string> RunView(const DmdvView& view) {
  Result<rdbms::OperatorPtr> plan = view.MakePlan();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  Result<std::vector<std::string>> rows =
      rdbms::CollectStrings(plan.value().get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? rows.MoveValue() : std::vector<std::string>{};
}

TEST(AddVcTest, AddsSingletonScalarColumns) {
  Fixture fx({kDoc1, kDoc3});
  Result<std::vector<std::string>> added =
      AddVc(fx.table.get(), "JCOL", JsonStorage::kText, fx.guide);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  // Table 7's three virtual columns: id, podate, foreign_id.
  std::vector<std::string> names = added.value();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"JCOL$foreign_id", "JCOL$id",
                                             "JCOL$podate"}));

  // The columns evaluate through JSON_VALUE on scan.
  auto plan = rdbms::Project(
      rdbms::Scan(fx.table.get()),
      {{"id", rdbms::Col("JCOL$id")},
       {"fid", rdbms::Col("JCOL$foreign_id")}});
  Result<std::vector<std::string>> rows =
      rdbms::CollectStrings(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(),
            (std::vector<std::string>{"1|NULL", "3|CDEG35"}));
}

TEST(AddVcTest, FrequencyThresholdFiltersSparseFields) {
  Fixture fx({kDoc1, kDoc1, kDoc1, kDoc3});  // foreign_id in 1 of 4 docs
  GenerateOptions opts;
  opts.min_frequency_fraction = 0.5;
  Result<std::vector<std::string>> added =
      AddVc(fx.table.get(), "JCOL", JsonStorage::kText, fx.guide, opts);
  ASSERT_TRUE(added.ok());
  for (const std::string& name : added.value()) {
    EXPECT_EQ(name.find("foreign_id"), std::string::npos) << name;
  }
}

TEST(CreateViewOnPathTest, FullDocumentDmdv) {
  Fixture fx({kDoc1, kDoc3, kDoc5});
  Result<DmdvView> view_r =
      CreateViewOnPath(fx.table.get(), "JCOL", JsonStorage::kText, fx.guide,
                       "$", "PO_RV");
  ASSERT_TRUE(view_r.ok()) << view_r.status().ToString();
  const DmdvView& view = view_r.value();

  // Master columns + items nested + parts nested under items + sibling
  // discount_items nested, like Table 8.
  std::vector<std::string> cols = view.OutputColumns();
  auto has = [&](const std::string& c) {
    return std::find(cols.begin(), cols.end(), c) != cols.end();
  };
  EXPECT_TRUE(has("DID"));
  EXPECT_TRUE(has("JCOL$id"));
  EXPECT_TRUE(has("JCOL$podate"));
  EXPECT_TRUE(has("JCOL$foreign_id"));
  EXPECT_TRUE(has("JCOL$name"));
  EXPECT_TRUE(has("JCOL$price"));
  EXPECT_TRUE(has("JCOL$partName"));
  EXPECT_TRUE(has("JCOL$dis_itemName"));

  std::vector<std::string> rows = RunView(view);
  // doc1: 2 items (no parts) -> 2 rows; doc3: 1 item with 1 part -> 1 row;
  // doc5: 1 item + 1 discount (union join) -> 2 rows.
  EXPECT_EQ(rows.size(), 5u);
}

TEST(CreateViewOnPathTest, MasterDetailLeftOuterAndUnionJoin) {
  Fixture fx({kDoc5});
  DmdvView view = CreateViewOnPath(fx.table.get(), "JCOL", JsonStorage::kText,
                                   fx.guide, "$", "V")
                      .MoveValue();
  // Project a readable subset.
  auto plan = view.MakePlan().MoveValue();
  auto projected = rdbms::Project(
      std::move(plan), {{"name", rdbms::Col("JCOL$name")},
                        {"dis", rdbms::Col("JCOL$dis_itemName")}});
  Result<std::vector<std::string>> rows =
      rdbms::CollectStrings(projected.get());
  ASSERT_TRUE(rows.ok());
  // Sibling nested blocks emit in alphabetical order (discount_items
  // before items); each row carries NULLs for the other sibling.
  EXPECT_EQ(rows.value(),
            (std::vector<std::string>{"NULL|cable", "SSD|NULL"}));
}

TEST(CreateViewOnPathTest, BranchRootedView) {
  Fixture fx({kDoc1});
  // CreateViewOnPath('$.purchaseOrder.items'): rows are the items.
  DmdvView view =
      CreateViewOnPath(fx.table.get(), "JCOL", JsonStorage::kText, fx.guide,
                       "$.purchaseOrder.items", "ITEMS_V")
          .MoveValue();
  auto plan = view.MakePlan().MoveValue();
  auto projected =
      rdbms::Project(std::move(plan), {{"n", rdbms::Col("JCOL$name")},
                                       {"q", rdbms::Col("JCOL$quantity")}});
  Result<std::vector<std::string>> rows =
      rdbms::CollectStrings(projected.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(),
            (std::vector<std::string>{"phone|2", "ipad|3"}));
}

TEST(CreateViewOnPathTest, UnknownPathFails) {
  Fixture fx({kDoc1});
  EXPECT_FALSE(CreateViewOnPath(fx.table.get(), "JCOL", JsonStorage::kText,
                                fx.guide, "$.nothing", "V")
                   .ok());
}

TEST(CreateViewOnPathTest, FrequencyThresholdPrunesDmdvColumns) {
  Fixture fx({kDoc1, kDoc1, kDoc1, kDoc3});
  GenerateOptions opts;
  opts.min_frequency_fraction = 0.5;
  DmdvView view = CreateViewOnPath(fx.table.get(), "JCOL", JsonStorage::kText,
                                   fx.guide, "$", "V", opts)
                      .MoveValue();
  std::vector<std::string> cols = view.OutputColumns();
  for (const std::string& c : cols) {
    EXPECT_EQ(c.find("foreign_id"), std::string::npos) << c;
    EXPECT_EQ(c.find("partName"), std::string::npos) << c;
  }
}


TEST(CreateViewOnPathTest, ToSqlTextRendersTable8Shape) {
  Fixture fx({kDoc1, kDoc3});
  DmdvView view = CreateViewOnPath(fx.table.get(), "JCOL",
                                   JsonStorage::kText, fx.guide, "$", "PO_RV")
                      .MoveValue();
  std::string sql = view.ToSqlText();
  EXPECT_NE(sql.find("CREATE VIEW PO_RV AS"), std::string::npos);
  EXPECT_NE(sql.find("JSON_TABLE(\"JCOL\" FORMAT JSON"), std::string::npos);
  EXPECT_NE(sql.find("NESTED PATH '$.purchaseOrder.items[*]'"),
            std::string::npos);
  EXPECT_NE(sql.find("NESTED PATH '$.parts[*]'"), std::string::npos);
  EXPECT_NE(sql.find("\"JCOL$id\" number path '$.purchaseOrder.id'"),
            std::string::npos);
  EXPECT_NE(sql.find("PO.DID"), std::string::npos);
}


TEST(AddVcTest, RenameAnnotationsOverrideNames) {
  Fixture fx({kDoc3});
  GenerateOptions opts;
  opts.column_renames["$.purchaseOrder.id"] = "PO_ID";
  Result<std::vector<std::string>> added =
      AddVc(fx.table.get(), "JCOL", JsonStorage::kText, fx.guide, opts);
  ASSERT_TRUE(added.ok());
  bool saw_rename = false;
  for (const std::string& n : added.value()) {
    if (n == "PO_ID") saw_rename = true;
    EXPECT_NE(n, "JCOL$id");
  }
  EXPECT_TRUE(saw_rename);
}

TEST(CreateViewOnPathTest, RenameAnnotationsInDmdv) {
  Fixture fx({kDoc1});
  GenerateOptions opts;
  opts.column_renames["$.purchaseOrder.items.price"] = "ITEM_PRICE";
  DmdvView view = CreateViewOnPath(fx.table.get(), "JCOL",
                                   JsonStorage::kText, fx.guide, "$", "V",
                                   opts)
                      .MoveValue();
  std::vector<std::string> cols = view.OutputColumns();
  EXPECT_NE(std::find(cols.begin(), cols.end(), "ITEM_PRICE"), cols.end());
  EXPECT_EQ(std::find(cols.begin(), cols.end(), "JCOL$price"), cols.end());
}

TEST(JsonDataGuideAggTest, AggregatesOverQuery) {
  Fixture fx({kDoc1, kDoc3});
  // SELECT json_dataguideagg(JCOL) FROM PO (Q-style of Table 9).
  auto plan = rdbms::GroupBy(
      rdbms::Scan(fx.table.get()), {}, {},
      {JsonDataGuideAgg(rdbms::Col("JCOL"), "dg")});
  Result<std::vector<Row>> rows = rdbms::Collect(plan.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 1u);
  const std::string& flat = rows.value()[0][0].AsString();
  EXPECT_NE(flat.find("$.purchaseOrder.items.parts"), std::string::npos);
  EXPECT_NE(flat.find("\"o:frequency\""), std::string::npos);
}

TEST(JsonDataGuideAggTest, GroupByProducesPerGroupGuides) {
  Fixture fx({kDoc1, kDoc3});
  // Group by DID parity: two groups, two guides.
  std::vector<DataGuide> guides;
  auto plan = rdbms::GroupBy(
      rdbms::Scan(fx.table.get()), {rdbms::Col("DID")}, {"DID"},
      {JsonDataGuideAggInto(rdbms::Col("JCOL"), "dg", &guides)});
  Result<std::vector<Row>> rows = rdbms::Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
  ASSERT_EQ(guides.size(), 2u);
  // Only the group containing doc3 has the parts path.
  int with_parts = 0;
  for (const DataGuide& g : guides) {
    if (g.Find("$.purchaseOrder.items.parts", json::NodeKind::kArray, true) !=
        nullptr) {
      ++with_parts;
    }
  }
  EXPECT_EQ(with_parts, 1);
}

TEST(JsonDataGuideAggTest, FilteredAggregation) {
  Fixture fx({kDoc1, kDoc3});
  // Q3 of Table 9: only docs having foreign_id.
  auto exists = sqljson::JsonExists("JCOL", "$.purchaseOrder.foreign_id",
                                    JsonStorage::kText)
                    .MoveValue();
  std::vector<DataGuide> guides;
  auto plan = rdbms::GroupBy(
      rdbms::Filter(rdbms::Scan(fx.table.get()), exists), {}, {},
      {JsonDataGuideAggInto(rdbms::Col("JCOL"), "dg", &guides)});
  ASSERT_TRUE(rdbms::Collect(plan.get()).ok());
  ASSERT_EQ(guides.size(), 1u);
  EXPECT_EQ(guides[0].document_count(), 1u);  // only doc3
}

TEST(JsonDataGuideAggTest, SampledAggregationShrinksDocCount) {
  Fixture fx({kDoc1});
  // Insert many copies then sample 50%.
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(
        fx.table->Insert({Value::Int64(100 + i), Value::String(kDoc1)}).ok());
  }
  std::vector<DataGuide> guides;
  auto plan = rdbms::GroupBy(
      rdbms::Sample(rdbms::Scan(fx.table.get()), 50.0, /*seed=*/9), {}, {},
      {JsonDataGuideAggInto(rdbms::Col("JCOL"), "dg", &guides)});
  ASSERT_TRUE(rdbms::Collect(plan.get()).ok());
  ASSERT_EQ(guides.size(), 1u);
  EXPECT_GT(guides[0].document_count(), 120u);
  EXPECT_LT(guides[0].document_count(), 280u);
}

}  // namespace
}  // namespace fsdm::dataguide
