#include "dataguide/dataguide.h"

#include <gtest/gtest.h>

#include <map>

#include "json/parser.h"

namespace fsdm::dataguide {
namespace {

// The paper's running example documents (Tables 1, 3, 5).
constexpr const char* kDoc1 =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08",
        "items":[{"name":"phone","price":100,"quantity":2},
                 {"name":"ipad","price":350.86,"quantity":3}]}})";

constexpr const char* kDoc2 =
    R"({"purchaseOrder":{"id":2,"podate":"2015-03-04",
        "items":[{"name":"table","price":52.78,"quantity":2},
                 {"name":"chair","price":35.24,"quantity":4}]}})";

constexpr const char* kDoc3 =
    R"({"purchaseOrder":{"id":2,"podate":"2015-06-03","foreign_id":"CDEG35",
        "items":[
          {"name":"TV","price":345.55,"quantity":1,
           "parts":[{"partName":"remoteCon","partQuantity":"1"}]},
          {"name":"PC","price":546.78,"quantity":10,
           "parts":[{"partName":"mouse","partQuantity":"2"},
                    {"partName":"keyboard","partQuantity":"1"}]}]}})";

constexpr const char* kDoc5 =
    R"({"purchaseOrder":{"id":4,"podate":"2015-08-03",
        "items":[{"name":"SSD","price":200,"quantity":1}],
        "discount_items":[
          {"dis_itemName":"cable","dis_itemPrice":5,"dis_itemQuanitty":2,
           "dis_parts":[{"dis_partName":"plug","dis_partQuantity":3}]}]}})";

// path -> type string, from the guide.
std::map<std::string, std::string> TypeMap(const DataGuide& guide) {
  std::map<std::string, std::string> out;
  for (const PathEntry* e : guide.SortedEntries()) {
    // A path can appear once per node kind; last-in wins is fine for the
    // homogeneous fixtures, heterogeneity is tested separately.
    out[e->path] = e->TypeString();
  }
  return out;
}

int MustAdd(DataGuide* guide, const char* doc) {
  Result<int> r = guide->AddJsonText(doc);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : -1;
}

TEST(DataGuideTest, PaperTable2) {
  // Two purchase orders produce exactly the $DG rows of Table 2.
  DataGuide guide;
  MustAdd(&guide, kDoc1);
  MustAdd(&guide, kDoc2);

  std::map<std::string, std::string> types = TypeMap(guide);
  std::map<std::string, std::string> expected = {
      {"$", "object"},
      {"$.purchaseOrder", "object"},
      {"$.purchaseOrder.id", "number"},
      {"$.purchaseOrder.podate", "string"},
      {"$.purchaseOrder.items", "array"},
      {"$.purchaseOrder.items.name", "array of string"},
      {"$.purchaseOrder.items.price", "array of number"},
      {"$.purchaseOrder.items.quantity", "array of number"},
  };
  // The items elements themselves add one "array of object" row.
  expected["$.purchaseOrder.items"] = types["$.purchaseOrder.items"];
  for (const auto& [path, type] : expected) {
    EXPECT_EQ(types[path], type) << path;
  }
  // Table 2 counts 7 rows (without '$' and the element-object row).
  EXPECT_EQ(guide.document_count(), 2u);
}

TEST(DataGuideTest, PaperTable4GrowsDeeper) {
  DataGuide guide;
  MustAdd(&guide, kDoc1);
  MustAdd(&guide, kDoc2);
  size_t before = guide.distinct_path_count();
  int added = MustAdd(&guide, kDoc3);
  EXPECT_GT(added, 0);
  EXPECT_EQ(guide.distinct_path_count(), before + static_cast<size_t>(added));

  std::map<std::string, std::string> types = TypeMap(guide);
  EXPECT_EQ(types["$.purchaseOrder.items.parts"], "array of array");
  EXPECT_EQ(types["$.purchaseOrder.items.parts.partName"],
            "array of string");
  EXPECT_EQ(types["$.purchaseOrder.items.parts.partQuantity"],
            "array of string");  // "1", "2" are strings in Table 3
  EXPECT_EQ(types["$.purchaseOrder.foreign_id"], "string");
}

TEST(DataGuideTest, PaperTable6GrowsWider) {
  DataGuide guide;
  MustAdd(&guide, kDoc1);
  MustAdd(&guide, kDoc3);
  int added = MustAdd(&guide, kDoc5);
  EXPECT_GT(added, 0);
  std::map<std::string, std::string> types = TypeMap(guide);
  EXPECT_EQ(types["$.purchaseOrder.discount_items"], "array");
  EXPECT_EQ(types["$.purchaseOrder.discount_items.dis_parts"],
            "array of array");
  EXPECT_EQ(types["$.purchaseOrder.discount_items.dis_parts.dis_partName"],
            "array of string");
  EXPECT_EQ(
      types["$.purchaseOrder.discount_items.dis_parts.dis_partQuantity"],
      "array of number");
  EXPECT_EQ(types["$.purchaseOrder.discount_items.dis_itemName"],
            "array of string");
  EXPECT_EQ(types["$.purchaseOrder.discount_items.dis_itemPrice"],
            "array of number");
  EXPECT_EQ(types["$.purchaseOrder.discount_items.dis_itemQuanitty"],
            "array of number");
}

TEST(DataGuideTest, IdenticalDocumentAddsNoPaths) {
  DataGuide guide;
  EXPECT_GT(MustAdd(&guide, kDoc1), 0);
  EXPECT_EQ(MustAdd(&guide, kDoc1), 0);  // fast common case (§3.2.1)
  EXPECT_EQ(MustAdd(&guide, kDoc2), 0);  // same structure, new values
  EXPECT_EQ(guide.document_count(), 3u);
}

TEST(DataGuideTest, ScalarTypeGeneralization) {
  // Number in one doc, string in another -> string (§3.1).
  DataGuide guide;
  MustAdd(&guide, R"({"a":{"b":5}})");
  MustAdd(&guide, R"({"a":{"b":"five"}})");
  const PathEntry* e = guide.Find("$.a.b", json::NodeKind::kScalar, false);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->TypeString(), "string");
  EXPECT_EQ(e->frequency, 2u);
}

TEST(DataGuideTest, KindConflictKeepsBothPaths) {
  // Scalar in one doc, object in another: both rows kept (§3.1's example).
  DataGuide guide;
  MustAdd(&guide, R"({"a":{"b":1}})");
  MustAdd(&guide, R"({"a":{"b":{"c":2}}})");
  EXPECT_NE(guide.Find("$.a.b", json::NodeKind::kScalar, false), nullptr);
  EXPECT_NE(guide.Find("$.a.b", json::NodeKind::kObject, false), nullptr);
  EXPECT_NE(guide.Find("$.a.b.c", json::NodeKind::kScalar, false), nullptr);
}

TEST(DataGuideTest, NullMergesIntoOtherTypes) {
  DataGuide guide;
  MustAdd(&guide, R"({"x":null})");
  const PathEntry* e = guide.Find("$.x", json::NodeKind::kScalar, false);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->TypeString(), "null");
  EXPECT_EQ(e->null_count, 1u);
  MustAdd(&guide, R"({"x":3})");
  e = guide.Find("$.x", json::NodeKind::kScalar, false);
  EXPECT_EQ(e->TypeString(), "number");
  EXPECT_EQ(e->null_count, 1u);
}

TEST(DataGuideTest, StatisticsMinMaxLengthFrequency) {
  DataGuide guide;
  MustAdd(&guide, R"({"p":10,"s":"ab"})");
  MustAdd(&guide, R"({"p":-5,"s":"abcdef"})");
  MustAdd(&guide, R"({"p":99})");
  const PathEntry* p = guide.Find("$.p", json::NodeKind::kScalar, false);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->frequency, 3u);
  EXPECT_EQ(p->min_value->AsInt64(), -5);
  EXPECT_EQ(p->max_value->AsInt64(), 99);
  const PathEntry* s = guide.Find("$.s", json::NodeKind::kScalar, false);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->frequency, 2u);
  EXPECT_EQ(s->max_length, 6u);
}

TEST(DataGuideTest, FrequencyCountsDocumentsNotOccurrences) {
  DataGuide guide;
  // 'name' occurs twice in the doc but in one document.
  MustAdd(&guide, kDoc1);
  const PathEntry* e =
      guide.Find("$.purchaseOrder.items.name", json::NodeKind::kScalar, true);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->frequency, 1u);
}

TEST(DataGuideTest, MergeEqualsSequentialAdds) {
  DataGuide a, b, merged;
  MustAdd(&a, kDoc1);
  MustAdd(&a, kDoc3);
  MustAdd(&b, kDoc5);
  MustAdd(&b, kDoc2);
  a.Merge(b);

  MustAdd(&merged, kDoc1);
  MustAdd(&merged, kDoc3);
  MustAdd(&merged, kDoc5);
  MustAdd(&merged, kDoc2);

  EXPECT_EQ(a.document_count(), merged.document_count());
  EXPECT_EQ(a.distinct_path_count(), merged.distinct_path_count());
  EXPECT_EQ(a.ToFlatJson(), merged.ToFlatJson());
}

TEST(DataGuideTest, MergeIsIdempotentOnStructure) {
  DataGuide a, b;
  MustAdd(&a, kDoc1);
  MustAdd(&b, kDoc1);
  size_t paths = a.distinct_path_count();
  a.Merge(b);
  EXPECT_EQ(a.distinct_path_count(), paths);
  EXPECT_EQ(a.document_count(), 2u);
}

TEST(DataGuideTest, FlatJsonIsValidAndComplete) {
  DataGuide guide;
  MustAdd(&guide, kDoc1);
  std::string flat = guide.ToFlatJson();
  auto parsed = json::Parse(flat);
  ASSERT_TRUE(parsed.ok()) << flat;
  ASSERT_TRUE(parsed.value()->is_array());
  EXPECT_EQ(parsed.value()->array_size(), guide.distinct_path_count());
  // Every element has o:path, type, o:frequency.
  for (size_t i = 0; i < parsed.value()->array_size(); ++i) {
    const json::JsonNode* el = parsed.value()->element(i);
    EXPECT_NE(el->GetField("o:path"), nullptr);
    EXPECT_NE(el->GetField("type"), nullptr);
    EXPECT_NE(el->GetField("o:frequency"), nullptr);
  }
}

TEST(DataGuideTest, HierarchicalJsonIsValid) {
  DataGuide guide;
  MustAdd(&guide, kDoc1);
  MustAdd(&guide, kDoc5);
  std::string hier = guide.ToHierarchicalJson();
  auto parsed = json::Parse(hier);
  ASSERT_TRUE(parsed.ok()) << hier;
  const json::JsonNode* root = parsed.value().get();
  ASSERT_NE(root->GetField("properties"), nullptr);
  const json::JsonNode* po =
      root->GetField("properties")->GetField("purchaseOrder");
  ASSERT_NE(po, nullptr);
  EXPECT_NE(po->GetField("properties")->GetField("items"), nullptr);
}

TEST(DataGuideTest, SingletonScalarPaths) {
  DataGuide guide;
  MustAdd(&guide, kDoc3);
  std::vector<std::string> singles;
  for (const PathEntry* e : guide.SingletonScalarPaths()) {
    singles.push_back(e->path);
  }
  EXPECT_EQ(singles, (std::vector<std::string>{
                         "$.purchaseOrder.foreign_id", "$.purchaseOrder.id",
                         "$.purchaseOrder.podate"}));
}

TEST(DataGuideTest, ArrayOfScalarsDirectly) {
  DataGuide guide;
  MustAdd(&guide, R"({"tags":["a","b",3]})");
  const PathEntry* arr = guide.Find("$.tags", json::NodeKind::kArray, false);
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(arr->TypeString(), "array");
  const PathEntry* el = guide.Find("$.tags", json::NodeKind::kScalar, true);
  ASSERT_NE(el, nullptr);
  EXPECT_EQ(el->TypeString(), "array of string");  // string+number -> string
}

TEST(DataGuideTest, NestedArraysOfArrays) {
  DataGuide guide;
  MustAdd(&guide, R"({"m":[[1,2],[3]]})");
  EXPECT_NE(guide.Find("$.m", json::NodeKind::kArray, false), nullptr);
  const PathEntry* inner = guide.Find("$.m", json::NodeKind::kArray, true);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->TypeString(), "array of array");
  const PathEntry* leaf = guide.Find("$.m", json::NodeKind::kScalar, true);
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->TypeString(), "array of number");
}

TEST(DataGuideTest, EmptyContainers) {
  DataGuide guide;
  EXPECT_EQ(MustAdd(&guide, "{}"), 1);  // just '$'
  EXPECT_EQ(MustAdd(&guide, "[]"), 1);  // '$' as array
  EXPECT_NE(guide.Find("$", json::NodeKind::kObject, false), nullptr);
  EXPECT_NE(guide.Find("$", json::NodeKind::kArray, false), nullptr);
}

}  // namespace
}  // namespace fsdm::dataguide
