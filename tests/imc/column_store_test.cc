#include "imc/column_store.h"

#include <gtest/gtest.h>

#include "sqljson/operators.h"

namespace fsdm::imc {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::CompareOp;
using rdbms::Row;
using rdbms::Table;

std::vector<Value> Ints(std::initializer_list<int64_t> vs) {
  std::vector<Value> out;
  for (int64_t v : vs) out.push_back(Value::Int64(v));
  return out;
}

TEST(ColumnVectorTest, EncodingSelection) {
  EXPECT_EQ(ColumnVector::Build(Ints({1, 2, 3})).encoding(),
            ColumnEncoding::kInt64);
  EXPECT_EQ(ColumnVector::Build({Value::Int64(1), Value::Double(2.5)})
                .encoding(),
            ColumnEncoding::kNumber);
  EXPECT_EQ(ColumnVector::Build({Value::Bool(true), Value::Null()})
                .encoding(),
            ColumnEncoding::kBool);
  EXPECT_EQ(ColumnVector::Build({Value::String("a"), Value::String("b")})
                .encoding(),
            ColumnEncoding::kString);
  EXPECT_EQ(ColumnVector::Build({Value::Int64(1), Value::String("x")})
                .encoding(),
            ColumnEncoding::kMixed);
}

TEST(ColumnVectorTest, DictionaryEncodingKicksInForRepetitiveStrings) {
  std::vector<Value> vals;
  for (int i = 0; i < 100; ++i) {
    vals.push_back(Value::String(i % 3 == 0 ? "aa" : (i % 3 == 1 ? "bb" : "cc")));
  }
  ColumnVector col = ColumnVector::Build(vals);
  EXPECT_EQ(col.encoding(), ColumnEncoding::kDictString);
  EXPECT_EQ(col.GetValue(0).AsString(), "aa");
  EXPECT_EQ(col.GetValue(1).AsString(), "bb");
}

TEST(ColumnVectorTest, NullsPreserved) {
  ColumnVector col =
      ColumnVector::Build({Value::Int64(1), Value::Null(), Value::Int64(3)});
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2).AsInt64(), 3);
}

TEST(ColumnVectorTest, FilterCompareInt) {
  ColumnVector col = ColumnVector::Build(Ints({5, 10, 15, 20, 25}));
  std::vector<uint32_t> out;
  ASSERT_TRUE(
      col.FilterCompare(CompareOp::kGt, Value::Int64(12), nullptr, &out)
          .ok());
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 3, 4}));
  // Chained selection.
  std::vector<uint32_t> out2;
  ASSERT_TRUE(
      col.FilterCompare(CompareOp::kLt, Value::Int64(25), &out, &out2).ok());
  EXPECT_EQ(out2, (std::vector<uint32_t>{2, 3}));
}

TEST(ColumnVectorTest, FilterCompareFractionalLiteralOnIntColumn) {
  ColumnVector col = ColumnVector::Build(Ints({1, 2, 3}));
  std::vector<uint32_t> out;
  ASSERT_TRUE(col.FilterCompare(CompareOp::kGe,
                                Value::Double(1.5), nullptr, &out)
                  .ok());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
}

TEST(ColumnVectorTest, FilterCompareDictString) {
  std::vector<Value> vals;
  for (int i = 0; i < 30; ++i) {
    vals.push_back(Value::String(i % 2 ? "xx" : "yy"));
  }
  ColumnVector col = ColumnVector::Build(vals);
  ASSERT_EQ(col.encoding(), ColumnEncoding::kDictString);
  std::vector<uint32_t> out;
  ASSERT_TRUE(col.FilterCompare(CompareOp::kEq, Value::String("xx"), nullptr,
                                &out)
                  .ok());
  EXPECT_EQ(out.size(), 15u);
  out.clear();
  ASSERT_TRUE(col.FilterCompare(CompareOp::kGt, Value::String("xx"), nullptr,
                                &out)
                  .ok());
  EXPECT_EQ(out.size(), 15u);  // the "yy"s
  out.clear();
  ASSERT_TRUE(col.FilterCompare(CompareOp::kEq, Value::String("zz"), nullptr,
                                &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(ColumnVectorTest, NullsNeverMatchFilters) {
  ColumnVector col =
      ColumnVector::Build({Value::Int64(1), Value::Null(), Value::Int64(3)});
  std::vector<uint32_t> out;
  ASSERT_TRUE(
      col.FilterCompare(CompareOp::kGe, Value::Int64(0), nullptr, &out).ok());
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 2}));
}

TEST(ColumnVectorTest, TypeMismatchedFilterErrors) {
  ColumnVector col = ColumnVector::Build(Ints({1}));
  std::vector<uint32_t> out;
  EXPECT_FALSE(
      col.FilterCompare(CompareOp::kEq, Value::String("x"), nullptr, &out)
          .ok());
}

TEST(ColumnVectorTest, SumSelected) {
  ColumnVector col = ColumnVector::Build(Ints({10, 20, 30}));
  std::vector<uint32_t> sel = {0, 2};
  EXPECT_DOUBLE_EQ(col.SumSelected(sel).value(), 40.0);
  ColumnVector strs = ColumnVector::Build({Value::String("a")});
  EXPECT_FALSE(strs.SumSelected(sel).ok());
}

class ColumnStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>(
        "T", std::vector<ColumnDef>{
                 {.name = "id", .type = ColumnType::kNumber},
                 {.name = "doc",
                  .type = ColumnType::kJson,
                  .check_is_json = true},
             });
    // JSON_VALUE virtual column (the §5.2.1 columnar projection).
    ColumnDef vc;
    vc.name = "num_vc";
    vc.type = ColumnType::kNumber;
    vc.virtual_expr =
        sqljson::JsonValue("doc", "$.num", sqljson::JsonStorage::kText,
                           sqljson::Returning::kNumber)
            .MoveValue();
    ASSERT_TRUE(table_->AddVirtualColumn(vc).ok());
    // Hidden OSON image column (§5.2.2).
    ColumnDef oson;
    oson.name = "OSON_IMG";
    oson.type = ColumnType::kRaw;
    oson.hidden = true;
    oson.virtual_expr = sqljson::OsonConstructor("doc");
    ASSERT_TRUE(table_->AddVirtualColumn(oson).ok());

    for (int i = 0; i < 50; ++i) {
      std::string doc = "{\"num\":" + std::to_string(i * 10) +
                        ",\"tag\":\"t" + std::to_string(i % 4) + "\"}";
      ASSERT_TRUE(
          table_->Insert({Value::Int64(i), Value::String(doc)}).ok());
    }
  }

  std::unique_ptr<Table> table_;
};

TEST_F(ColumnStoreTest, PopulateEvaluatesVirtualColumnsOnce) {
  ColumnStore store =
      ColumnStore::Populate(*table_, {"id", "num_vc"}).MoveValue();
  EXPECT_EQ(store.row_count(), 50u);
  const ColumnVector* vc = store.column("num_vc");
  ASSERT_NE(vc, nullptr);
  EXPECT_EQ(vc->encoding(), ColumnEncoding::kInt64);
  EXPECT_EQ(vc->GetValue(7).AsInt64(), 70);
}

TEST_F(ColumnStoreTest, HiddenOsonColumnLoadsByName) {
  ColumnStore store =
      ColumnStore::Populate(*table_, {"id", "OSON_IMG"}).MoveValue();
  const ColumnVector* img = store.column("OSON_IMG");
  ASSERT_NE(img, nullptr);
  EXPECT_EQ(img->encoding(), ColumnEncoding::kBinary);
  Value v = img->GetValue(3);
  EXPECT_EQ(v.type(), ScalarType::kBinary);
  EXPECT_EQ(v.AsBinary().substr(0, 4), "OSON");
}

TEST_F(ColumnStoreTest, PopulateSkipsDeletedRows) {
  ASSERT_TRUE(table_->Delete(0).ok());
  ASSERT_TRUE(table_->Delete(10).ok());
  ColumnStore store = ColumnStore::Populate(*table_, {"id"}).MoveValue();
  EXPECT_EQ(store.row_count(), 48u);
}

TEST_F(ColumnStoreTest, UnknownColumnFails) {
  EXPECT_FALSE(ColumnStore::Populate(*table_, {"nope"}).ok());
}

TEST_F(ColumnStoreTest, ScanFeedsExecutorPlans) {
  ColumnStore store =
      ColumnStore::Populate(*table_, {"id", "num_vc"}).MoveValue();
  auto plan = rdbms::Filter(store.Scan(),
                            rdbms::Ge(rdbms::Col("num_vc"),
                                      rdbms::Lit(Value::Int64(480))));
  Result<std::vector<Row>> rows = rdbms::Collect(plan.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);  // 480, 490
}

TEST_F(ColumnStoreTest, FilterScanVectorized) {
  ColumnStore store =
      ColumnStore::Populate(*table_, {"id", "num_vc"}).MoveValue();
  Result<std::vector<Row>> rows = store.FilterScan(
      {{"num_vc", CompareOp::kGe, Value::Int64(100)},
       {"num_vc", CompareOp::kLt, Value::Int64(150)}},
      {"id"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 5u);  // 100..140
  EXPECT_EQ(rows.value()[0][0].AsInt64(), 10);
}

TEST_F(ColumnStoreTest, FilterPositionsEmptyPredicateMatchesAll) {
  ColumnStore store = ColumnStore::Populate(*table_, {"id"}).MoveValue();
  Result<std::vector<uint32_t>> pos = store.FilterPositions({});
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos.value().size(), 50u);
}

TEST_F(ColumnStoreTest, MemoryAccounting) {
  ColumnStore store =
      ColumnStore::Populate(*table_, {"id", "num_vc"}).MoveValue();
  EXPECT_GT(store.MemoryBytes(), 50u * 8u);
}

// Pins the MemoryBytes() accounting for every encoding Build() produces:
// bitmaps at one bit per row rounded up, typed arrays at element width,
// dictionary codes at 4 bytes plus the dictionary's own strings, string
// payloads through StringAllocBytes, boxed values at sizeof(Value) plus
// spilled heap.
TEST(ColumnVectorTest, MemoryBytesPinnedPerEncoding) {
  auto bitmap = [](size_t rows) { return (rows + 7) / 8; };

  // kInt64: null bitmap + 8 bytes per row.
  EXPECT_EQ(ColumnVector::Build(Ints({1, 2, 3})).MemoryBytes(),
            bitmap(3) + 3 * sizeof(int64_t));

  // kNumber: mixed numerics widen to doubles.
  ColumnVector num =
      ColumnVector::Build({Value::Int64(1), Value::Double(2.5)});
  ASSERT_EQ(num.encoding(), ColumnEncoding::kNumber);
  EXPECT_EQ(num.MemoryBytes(), bitmap(2) + 2 * sizeof(double));

  // kBool: two bitmaps (nulls + values), both rounded up.
  ColumnVector bools = ColumnVector::Build(
      {Value::Bool(true), Value::Null(), Value::Bool(false)});
  ASSERT_EQ(bools.encoding(), ColumnEncoding::kBool);
  EXPECT_EQ(bools.MemoryBytes(), 2 * bitmap(3));

  // kString, SSO payloads: no heap block, just the inline objects.
  ColumnVector sso =
      ColumnVector::Build({Value::String("a"), Value::String("b")});
  ASSERT_EQ(sso.encoding(), ColumnEncoding::kString);
  EXPECT_EQ(StringHeapBytes(std::string("a")), 0u);
  EXPECT_EQ(sso.MemoryBytes(), bitmap(2) + 2 * StringAllocBytes("a"));

  // kString, spilled payloads: the allocated block (capacity + NUL)
  // counts, not the logical size.
  std::string long_a(40, 'a'), long_b(48, 'b');
  ColumnVector spilled = ColumnVector::Build(
      {Value::String(long_a), Value::String(long_b)});
  ASSERT_EQ(spilled.encoding(), ColumnEncoding::kString);
  EXPECT_GT(StringHeapBytes(long_a), long_a.size());
  EXPECT_EQ(spilled.MemoryBytes(), bitmap(2) + StringAllocBytes(long_a) +
                                       StringAllocBytes(long_b));

  // kDictString: 4-byte codes per row + the dictionary's strings once —
  // NOT one string per row (the pre-fix accounting billed nothing for the
  // dictionary's allocation and undercounted bitmaps).
  std::vector<Value> rep;
  for (int i = 0; i < 30; ++i) rep.push_back(Value::String(i % 2 ? "xx" : "yy"));
  ColumnVector dict = ColumnVector::Build(rep);
  ASSERT_EQ(dict.encoding(), ColumnEncoding::kDictString);
  EXPECT_EQ(dict.MemoryBytes(), bitmap(30) + 30 * sizeof(uint32_t) +
                                    2 * StringAllocBytes("xx"));

  // kBinary behaves like kString.
  ColumnVector bin = ColumnVector::Build({Value::Binary("raw")});
  ASSERT_EQ(bin.encoding(), ColumnEncoding::kBinary);
  EXPECT_EQ(bin.MemoryBytes(), bitmap(1) + StringAllocBytes("raw"));

  // kMixed: boxed Values; only string/binary payloads add heap.
  ColumnVector mixed =
      ColumnVector::Build({Value::Int64(1), Value::String(long_a)});
  ASSERT_EQ(mixed.encoding(), ColumnEncoding::kMixed);
  EXPECT_EQ(mixed.MemoryBytes(),
            bitmap(2) + 2 * sizeof(Value) + StringHeapBytes(long_a));
}

}  // namespace
}  // namespace fsdm::imc
