#include "stats/hll.h"

#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace fsdm::stats {
namespace {

// Deterministic seeded stream: distinct values "v<seed>-<i>". The sketch
// hashes display forms, so distinct strings are distinct values.
void Feed(Hll* hll, uint64_t seed, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    hll->Add("v" + std::to_string(seed) + "-" + std::to_string(i));
  }
}

TEST(HllTest, EmptyEstimatesZero) {
  Hll hll;
  EXPECT_EQ(hll.Estimate(), 0.0);
}

TEST(HllTest, SmallCardinalitiesAreNearExact) {
  // Linear counting regime: with 1024 registers and a handful of values
  // the estimate rounds to the exact count.
  for (size_t n : {1u, 2u, 5u, 10u, 50u, 100u}) {
    Hll hll;
    Feed(&hll, 7, n);
    EXPECT_NEAR(hll.Estimate(), static_cast<double>(n),
                std::max(1.0, 0.02 * static_cast<double>(n)))
        << "n=" << n;
  }
}

TEST(HllTest, DuplicatesDoNotInflateTheEstimate) {
  Hll hll;
  for (int pass = 0; pass < 10; ++pass) Feed(&hll, 3, 200);
  EXPECT_NEAR(hll.Estimate(), 200.0, 10.0);
}

TEST(HllTest, LargeStreamsStayWithinDocumentedErrorBound) {
  // The documented relative standard error is 1.04/sqrt(m) = 3.25%. Allow
  // 4 sigma on several independent seeded streams — loose enough to be
  // robust, tight enough to catch a broken rank computation (which is off
  // by factors, not percent).
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (size_t n : {1000u, 10000u, 50000u}) {
      Hll hll;
      Feed(&hll, seed, n);
      const double est = hll.Estimate();
      const double rel = std::abs(est - static_cast<double>(n)) /
                         static_cast<double>(n);
      EXPECT_LT(rel, 4 * Hll::kStdError) << "seed=" << seed << " n=" << n
                                         << " est=" << est;
    }
  }
}

TEST(HllTest, EstimateIsDeterministic) {
  Hll a, b;
  Feed(&a, 11, 5000);
  Feed(&b, 11, 5000);
  EXPECT_EQ(a.Estimate(), b.Estimate());
}

TEST(HllTest, MergeEqualsUnionOfStreams) {
  // Overlapping streams: A holds [0, 6000), B holds [4000, 10000) of the
  // same value universe. The merged sketch must equal a sketch fed the
  // union directly — register-wise max is exact, not approximate.
  Hll a, b, u;
  for (size_t i = 0; i < 6000; ++i) a.Add("u-" + std::to_string(i));
  for (size_t i = 4000; i < 10000; ++i) b.Add("u-" + std::to_string(i));
  for (size_t i = 0; i < 10000; ++i) u.Add("u-" + std::to_string(i));

  a.Merge(b);
  EXPECT_EQ(a.Estimate(), u.Estimate());
  const double rel = std::abs(a.Estimate() - 10000.0) / 10000.0;
  EXPECT_LT(rel, 4 * Hll::kStdError);
}

TEST(HllTest, MergeWithEmptyIsIdentity) {
  Hll a, empty;
  Feed(&a, 9, 300);
  const double before = a.Estimate();
  a.Merge(empty);
  EXPECT_EQ(a.Estimate(), before);
}

TEST(HllTest, ClearResets) {
  Hll hll;
  Feed(&hll, 1, 100);
  hll.Clear();
  EXPECT_EQ(hll.Estimate(), 0.0);
}

}  // namespace
}  // namespace fsdm::stats
