#include "stats/path_stats.h"

#include <string>

#include <gtest/gtest.h>

#include "common/value.h"

namespace fsdm::stats {
namespace {

// Feeds documents through the ScalarSink interface the way the DataGuide
// walk does: OnScalar per leaf, OnDocumentEnd per document.
class PathStatsTest : public ::testing::Test {
 protected:
  void Doc(std::initializer_list<std::pair<std::string, Value>> scalars) {
    for (const auto& [path, v] : scalars) {
      repo_.OnScalar(path, /*under_array=*/false, v);
    }
    repo_.OnDocumentEnd();
  }

  PathStatsRepository repo_;
};

TEST_F(PathStatsTest, DocFrequencyCountsDocumentsNotOccurrences) {
  // Two occurrences of $.a in one document must count one document.
  repo_.OnScalar("$.a", false, Value::Int64(1));
  repo_.OnScalar("$.a", true, Value::Int64(2));
  repo_.OnDocumentEnd();
  Doc({{"$.a", Value::Int64(3)}, {"$.b", Value::String("x")}});

  const PathStats* a = repo_.Find("$.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->doc_frequency, 2u);
  EXPECT_EQ(a->value_count, 3u);
  EXPECT_EQ(repo_.docs_seen(), 2u);
  EXPECT_EQ(repo_.Find("$.b")->doc_frequency, 1u);
}

TEST_F(PathStatsTest, ExistenceSelectivity) {
  // No documents at all: unknown — caller falls back to the DataGuide.
  EXPECT_FALSE(repo_.ExistenceSelectivity("$.a").has_value());

  Doc({{"$.a", Value::Int64(1)}});
  Doc({{"$.a", Value::Int64(2)}});
  Doc({{"$.b", Value::Int64(3)}});
  Doc({{"$.b", Value::Int64(4)}});

  EXPECT_DOUBLE_EQ(*repo_.ExistenceSelectivity("$.a"), 0.5);
  // Known-absent path: confidently zero, not "unknown".
  EXPECT_DOUBLE_EQ(*repo_.ExistenceSelectivity("$.nope"), 0.0);
}

TEST_F(PathStatsTest, MinMaxAndNdv) {
  for (int i = 0; i < 20; ++i) {
    Doc({{"$.n", Value::Int64(i % 5)}});
  }
  const PathStats* n = repo_.Find("$.n");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->min_value->ToDisplayString(), "0");
  EXPECT_EQ(n->max_value->ToDisplayString(), "4");
  EXPECT_NEAR(repo_.NdvEstimate("$.n"), 5.0, 1.0);
  EXPECT_EQ(repo_.NdvEstimate("$.unknown"), 0.0);
}

TEST_F(PathStatsTest, AllNullPathHasNoValueStats) {
  // Edge case: a path that only ever held JSON null. Nulls count as nulls,
  // not values; no min/max, no NDV, no histogram.
  for (int i = 0; i < 3; ++i) Doc({{"$.gone", Value::Null()}});

  const PathStats* s = repo_.Find("$.gone");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->doc_frequency, 3u);
  EXPECT_EQ(s->null_count, 3u);
  EXPECT_EQ(s->value_count, 0u);
  EXPECT_FALSE(s->min_value.has_value());
  EXPECT_FALSE(s->max_value.has_value());
  EXPECT_EQ(s->ndv.Estimate(), 0.0);
  EXPECT_EQ(s->histogram.total(), 0u);
  // The path still exists in every document that carried the null.
  EXPECT_DOUBLE_EQ(*repo_.ExistenceSelectivity("$.gone"), 1.0);
}

TEST_F(PathStatsTest, HistogramSingleValuePath) {
  // Edge case: a numeric path holding one constant. The frozen range is
  // degenerate ([c, c]); FractionBelow must behave as a step function.
  for (int i = 0; i < 200; ++i) Doc({{"$.c", Value::Int64(42)}});

  const PathStats* s = repo_.Find("$.c");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->histogram.total(), 200u);
  EXPECT_TRUE(s->histogram.frozen());
  EXPECT_DOUBLE_EQ(s->histogram.FractionBelow(41.0, true), 0.0);
  EXPECT_DOUBLE_EQ(s->histogram.FractionBelow(42.0, false), 0.0);
  EXPECT_DOUBLE_EQ(s->histogram.FractionBelow(42.0, true), 1.0);
  EXPECT_DOUBLE_EQ(s->histogram.FractionBelow(43.0, false), 1.0);
}

TEST_F(PathStatsTest, HistogramFractionsApproximateUniformData) {
  // 0..999 uniform, scrambled so the 64-value seed spans the range (a
  // sorted stream freezes on its prefix — the clamp staleness covered by
  // OutOfRangeValuesClampIntoEdgeBuckets): FractionBelow(250) ~ 0.25.
  for (int i = 0; i < 1000; ++i) {
    Doc({{"$.u", Value::Int64(i * 617 % 1000)}});
  }
  const ValueHistogram& h = repo_.Find("$.u")->histogram;
  EXPECT_TRUE(h.frozen());
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_NEAR(h.FractionBelow(250.0, false), 0.25, 0.08);
  EXPECT_NEAR(h.FractionBelow(500.0, false), 0.50, 0.08);
  EXPECT_NEAR(h.FractionBelow(750.0, false), 0.75, 0.08);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-1.0, true), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(2000.0, true), 1.0);
}

TEST_F(PathStatsTest, HistogramExactWhileBuffering) {
  // Below the seed capacity the histogram answers from the exact buffer.
  for (int i = 0; i < 10; ++i) Doc({{"$.x", Value::Int64(i)}});
  const ValueHistogram& h = repo_.Find("$.x")->histogram;
  EXPECT_FALSE(h.frozen());
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0, false), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionBelow(5.0, true), 0.6);
}

TEST_F(PathStatsTest, OutOfRangeValuesClampIntoEdgeBuckets) {
  // Freeze on [0, 99], then feed far-out values: totals keep counting and
  // the cumulative fractions stay monotone (documented staleness).
  for (int i = 0; i < 100; ++i) Doc({{"$.y", Value::Int64(i)}});
  for (int i = 0; i < 50; ++i) Doc({{"$.y", Value::Int64(100000)}});
  const ValueHistogram& h = repo_.Find("$.y")->histogram;
  EXPECT_EQ(h.total(), 150u);
  const double below_hi = h.FractionBelow(99.0, true);
  EXPECT_GT(below_hi, 0.5);
  EXPECT_LE(below_hi, 1.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(1e9, true), 1.0);
}

TEST_F(PathStatsTest, NonNumericValuesSkipHistogramButCountNdv) {
  Doc({{"$.s", Value::String("alpha")}});
  Doc({{"$.s", Value::String("beta")}});
  Doc({{"$.s", Value::String("alpha")}});
  const PathStats* s = repo_.Find("$.s");
  EXPECT_EQ(s->histogram.total(), 0u);
  EXPECT_EQ(s->value_count, 3u);
  EXPECT_NEAR(s->ndv.Estimate(), 2.0, 0.5);
  EXPECT_EQ(s->min_value->ToDisplayString(), "alpha");
  EXPECT_EQ(s->max_value->ToDisplayString(), "beta");
}

TEST_F(PathStatsTest, ClearResetsEverything) {
  Doc({{"$.a", Value::Int64(1)}});
  repo_.Clear();
  EXPECT_EQ(repo_.docs_seen(), 0u);
  EXPECT_EQ(repo_.Find("$.a"), nullptr);
  EXPECT_FALSE(repo_.ExistenceSelectivity("$.a").has_value());
}

}  // namespace
}  // namespace fsdm::stats
