#include "stats/operator_costs.h"

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace fsdm::stats {
namespace {

class OperatorCostsTest : public ::testing::Test {
 protected:
  // The model is process-global; every test starts from the seeds.
  void SetUp() override { OperatorCostModel::Global().Reset(); }
  void TearDown() override { OperatorCostModel::Global().Reset(); }
};

TEST_F(OperatorCostsTest, SeedsOrderTheAccessPathsSensibly) {
  OperatorCostModel& m = OperatorCostModel::Global();
  // Vectorized scans are cheapest per row, document scans sit in the
  // middle, per-document JSON predicate evaluation is the most expensive.
  EXPECT_LT(m.UsPerRow("ImcFilterScan"), m.UsPerRow("Scan"));
  EXPECT_LT(m.UsPerRow("Scan"), m.UsPerRow("IndexedValueScan"));
  EXPECT_LT(m.UsPerRow("IndexedValueScan"), m.UsPerRow("Filter"));
  // Unseeded operators default to 1 us/row.
  EXPECT_DOUBLE_EQ(m.UsPerRow("SomethingNew"), 1.0);
}

TEST_F(OperatorCostsTest, FirstSampleReplacesSeedThenEwmaSmooths) {
  OperatorCostModel& m = OperatorCostModel::Global();
  m.Record("Filter", 100, 1000.0);  // 10 us/row
  EXPECT_DOUBLE_EQ(m.UsPerRow("Filter"), 10.0);
  m.Record("Filter", 100, 2000.0);  // 20 us/row, alpha = 0.2
  EXPECT_DOUBLE_EQ(m.UsPerRow("Filter"), 0.8 * 10.0 + 0.2 * 20.0);

  auto snap = m.Snapshot();
  EXPECT_EQ(snap.at("Filter").samples, 2u);
  EXPECT_EQ(snap.at("Filter").rows_total, 200u);
  EXPECT_DOUBLE_EQ(snap.at("Filter").last_us_per_row, 20.0);
  EXPECT_DOUBLE_EQ(snap.at("Filter").seed_us_per_row, 2.0);
}

TEST_F(OperatorCostsTest, ZeroRowsAndClamping) {
  OperatorCostModel& m = OperatorCostModel::Global();
  m.Record("Scan", 0, 500.0);  // no rows -> no information
  EXPECT_DOUBLE_EQ(m.UsPerRow("Scan"), 0.5);
  // Clock-granularity zero must not collapse the estimate to 0.
  m.Record("Scan", 1000, 0.0);
  EXPECT_DOUBLE_EQ(m.UsPerRow("Scan"), 0.001);
}

TEST_F(OperatorCostsTest, FrozenModelIgnoresMeasurements) {
  OperatorCostModel& m = OperatorCostModel::Global();
  m.set_frozen(true);
  m.Record("Scan", 10, 10000.0);
  EXPECT_DOUBLE_EQ(m.UsPerRow("Scan"), 0.5);
  m.set_frozen(false);
  m.Record("Scan", 10, 10000.0);
  EXPECT_DOUBLE_EQ(m.UsPerRow("Scan"), 1000.0);  // clamped raw obs
}

TEST_F(OperatorCostsTest, RecordSpanTreeUsesExclusiveTimeAndRowBasis) {
  // Filter(10 rows out) over Scan(40 rows out): the Filter's exclusive
  // time is 100 - 60 = 40us over 40 consumed rows = 1 us/row; the leaf
  // Scan processed its 40 emitted rows in 60us = 1.5 us/row.
  auto scan = telemetry::MakeSpan("Scan", "");
  scan->rows_out = 40;
  scan->elapsed_us = 60.0;
  auto filter = telemetry::MakeSpan("Filter", "");
  filter->rows_out = 10;
  filter->elapsed_us = 100.0;
  filter->children.push_back(std::move(scan));

  OperatorCostModel& m = OperatorCostModel::Global();
  m.RecordSpanTree(*filter);
  EXPECT_DOUBLE_EQ(m.UsPerRow("Filter"), 1.0);
  EXPECT_DOUBLE_EQ(m.UsPerRow("Scan"), 1.5);
}

TEST_F(OperatorCostsTest, RecordSpanTreeSkipsImcReplaySpans) {
  auto imc = telemetry::MakeSpan("ImcFilterScan", "");
  imc->rows_out = 5;
  imc->elapsed_us = 1000.0;
  OperatorCostModel& m = OperatorCostModel::Global();
  m.RecordSpanTree(*imc);
  // Untouched: the replay span would record result-row basis, not the
  // scanned-row basis the router records directly.
  auto snap = m.Snapshot();
  EXPECT_EQ(snap.at("ImcFilterScan").samples, 0u);
  EXPECT_DOUBLE_EQ(m.UsPerRow("ImcFilterScan"), 0.05);
}

TEST_F(OperatorCostsTest, ResetRestoresSeeds) {
  OperatorCostModel& m = OperatorCostModel::Global();
  m.Record("IndexedValueScan", 10, 500.0);
  m.set_frozen(true);
  m.Reset();
  EXPECT_FALSE(m.frozen());
  EXPECT_DOUBLE_EQ(m.UsPerRow("IndexedValueScan"), 0.8);
  EXPECT_EQ(m.Snapshot().at("IndexedValueScan").samples, 0u);
}

}  // namespace
}  // namespace fsdm::stats
