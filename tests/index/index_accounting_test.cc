#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dataguide/dataguide.h"
#include "index/search_index.h"
#include "rdbms/table.h"

/// Posting-list and DataGuide memory accounting (ISSUE 9 satellite). The
/// search index maintains MemoryBytes() incrementally on every posting
/// mutation; the invariant is exact equality with the O(postings)
/// RecomputeMemoryBytes() walk across inserts, replaces, deletes,
/// observer-driven rollbacks and full rebuilds.

namespace fsdm::index {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Row;
using rdbms::Table;

std::unique_ptr<Table> MakeDocs() {
  return std::make_unique<Table>(
      "IACCT", std::vector<ColumnDef>{
                   {.name = "DID", .type = ColumnType::kNumber},
                   {.name = "JDOC",
                    .type = ColumnType::kJson,
                    .check_is_json = true},
               });
}

std::string Doc(int i) {
  return "{\"id\":" + std::to_string(i) + ",\"tag\":\"t" +
         std::to_string(i % 3) + "\",\"nested\":{\"k" + std::to_string(i % 7) +
         "\":" + std::to_string(i * 10) + "}}";
}

class VetoObserver final : public rdbms::TableObserver {
 public:
  Status OnInsert(size_t, const Row&) override { return Veto(); }
  Status OnDelete(size_t, const Row&) override { return Veto(); }
  Status OnReplace(size_t, const Row&, const Row&) override { return Veto(); }

 private:
  static Status Veto() { return Status::InvalidArgument("vetoed by test"); }
};

TEST(IndexAccountingTest, DmlMixStaysReconciled) {
  auto table = MakeDocs();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int64(i), Value::String(Doc(i))}).ok());
    ASSERT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes())
        << "after insert " << i;
  }
  EXPECT_GT(idx->MemoryBytes(), 0u);

  // Replace changes the posting shape (different sparse key), delete prunes
  // row ids out of postings.
  ASSERT_TRUE(table
                  ->Replace(4, {Value::Int64(4),
                                Value::String("{\"id\":4,\"other\":true}")})
                  .ok());
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());
  ASSERT_TRUE(table->Delete(9).ok());
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());
  ASSERT_TRUE(table->Delete(10).ok());
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());
}

TEST(IndexAccountingTest, RolledBackDmlStaysReconciled) {
  auto table = MakeDocs();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int64(i), Value::String(Doc(i))}).ok());
  }
  const uint64_t steady = idx->MemoryBytes();
  ASSERT_EQ(steady, idx->RecomputeMemoryBytes());

  // The veto observer registers *after* the index, so the index's On*
  // succeeds first and its Undo* must unwind the posting mutations.
  VetoObserver veto;
  table->AddObserver(&veto);
  EXPECT_FALSE(
      table->Insert({Value::Int64(50), Value::String(Doc(50))}).ok());
  EXPECT_FALSE(
      table->Replace(3, {Value::Int64(3), Value::String(Doc(99))}).ok());
  EXPECT_FALSE(table->Delete(5).ok());
  table->RemoveObserver(&veto);

  // Undo prunes the row ids back out but may leave empty posting shells
  // for keys the vetoed DML introduced — the footprint can grow a little,
  // yet the incremental counter must still match the recompute walk
  // exactly, and the index must keep answering from the pre-DML state.
  EXPECT_GE(idx->MemoryBytes(), steady);
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());
  EXPECT_EQ(idx->indexed_document_count(), 10u);
  EXPECT_EQ(idx->DocsWithValue("$.id", Value::Int64(50)),
            std::vector<size_t>{});
  EXPECT_EQ(idx->DocsWithValue("$.id", Value::Int64(3)),
            (std::vector<size_t>{3}));
}

TEST(IndexAccountingTest, RebuildStaysReconciled) {
  auto table = MakeDocs();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        table->Insert({Value::Int64(i), Value::String(Doc(i))}).ok());
  }
  ASSERT_TRUE(table->Delete(2).ok());
  const uint64_t before = idx->MemoryBytes();
  ASSERT_TRUE(idx->Rebuild().ok());
  // A rebuild indexes only live rows and creates no empty posting shells,
  // so it can only shrink the footprint — and the incremental counter must
  // land exactly on the recompute walk over the fresh postings.
  EXPECT_LE(idx->MemoryBytes(), before);
  EXPECT_GT(idx->MemoryBytes(), 0u);
  EXPECT_EQ(idx->MemoryBytes(), idx->RecomputeMemoryBytes());
}

TEST(DataGuideAccountingTest, DeterministicAndGrowsOnlyWithNewPaths) {
  dataguide::DataGuide a;
  dataguide::DataGuide b;
  EXPECT_EQ(a.MemoryBytes(), 0u);

  const std::vector<std::string> docs = {
      "{\"x\":1,\"y\":{\"z\":\"s\"}}",
      "{\"x\":2,\"arr\":[{\"m\":true}]}",
      "{\"x\":3,\"y\":{\"z\":\"t\"}}",
  };
  for (const std::string& d : docs) {
    ASSERT_TRUE(a.AddJsonText(d).ok());
    ASSERT_TRUE(b.AddJsonText(d).ok());
  }
  EXPECT_GT(a.MemoryBytes(), 0u);
  // Same documents, same guide, same accounted footprint: the formula is
  // size-based and value-independent.
  EXPECT_EQ(a.MemoryBytes(), b.MemoryBytes());

  // A document whose structure is already known adds no entries and no
  // bytes; a new path grows the footprint.
  const uint64_t known = a.MemoryBytes();
  ASSERT_TRUE(a.AddJsonText("{\"x\":77}").ok());
  EXPECT_EQ(a.MemoryBytes(), known);
  ASSERT_TRUE(a.AddJsonText("{\"brand_new_path\":1}").ok());
  EXPECT_GT(a.MemoryBytes(), known);

  // Merge is the union of paths: merging a guide into itself is a no-op
  // for accounting, merging disjoint paths adds them.
  dataguide::DataGuide c;
  ASSERT_TRUE(c.AddJsonText("{\"only_in_c\":[1,2]}").ok());
  const uint64_t before_merge = a.MemoryBytes();
  a.Merge(a);
  EXPECT_EQ(a.MemoryBytes(), before_merge);
  a.Merge(c);
  EXPECT_GT(a.MemoryBytes(), before_merge);
}

}  // namespace
}  // namespace fsdm::index
