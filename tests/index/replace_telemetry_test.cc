#include <gtest/gtest.h>

#include "index/search_index.h"
#include "telemetry/telemetry.h"

namespace fsdm::index {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Table;

// Regression for the Replace double-count: a document replace used to hit
// the index as an unindex + index pair, reporting one delete and one
// insert (and two maintenance-latency observations). It must report as
// exactly one replace.
TEST(ReplaceTelemetryTest, ReplaceCountsOnceNotAsDeletePlusInsert) {
  if (!telemetry::kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
  auto table = std::make_unique<Table>(
      "PO", std::vector<ColumnDef>{
                {.name = "DID", .type = ColumnType::kNumber},
                {.name = "JDOC",
                 .type = ColumnType::kJson,
                 .check_is_json = true},
            });
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  ASSERT_TRUE(
      table->Insert({Value::Int64(1), Value::String(R"({"a":1})")}).ok());

  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
  const uint64_t replaced = reg.CounterValue("fsdm_index_docs_replaced_total");
  const uint64_t indexed = reg.CounterValue("fsdm_index_docs_indexed_total");
  const uint64_t unindexed =
      reg.CounterValue("fsdm_index_docs_unindexed_total");
  const telemetry::Histogram* maintain =
      reg.FindHistogram("fsdm_index_maintain_us");
  ASSERT_NE(maintain, nullptr);  // the insert above must have observed one
  const uint64_t maintain_count = maintain->count();

  ASSERT_TRUE(
      table->Replace(0, {Value::Int64(1), Value::String(R"({"a":2})")}).ok());

  EXPECT_EQ(reg.CounterValue("fsdm_index_docs_replaced_total"), replaced + 1);
  EXPECT_EQ(reg.CounterValue("fsdm_index_docs_indexed_total"), indexed);
  EXPECT_EQ(reg.CounterValue("fsdm_index_docs_unindexed_total"), unindexed);
  // One combined latency observation for the whole replace, not two.
  EXPECT_EQ(maintain->count(), maintain_count + 1);

  // The replace really happened.
  EXPECT_EQ(idx->DocsWithValue("$.a", Value::Int64(2)),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(idx->DocsWithValue("$.a", Value::Int64(1)).empty());
  EXPECT_EQ(idx->indexed_document_count(), 1u);
}

}  // namespace
}  // namespace fsdm::index
