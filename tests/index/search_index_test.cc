#include "index/search_index.h"

#include <gtest/gtest.h>

namespace fsdm::index {
namespace {

using rdbms::ColumnDef;
using rdbms::ColumnType;
using rdbms::Table;

constexpr const char* kDoc1 =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08",
        "items":[{"name":"smart phone","price":100}]}})";
constexpr const char* kDoc2 =
    R"({"purchaseOrder":{"id":2,"podate":"2015-03-04",
        "items":[{"name":"office chair","price":35.24}]}})";
constexpr const char* kDoc3 =
    R"({"purchaseOrder":{"id":3,"foreign_id":"CDEG35",
        "items":[{"name":"TV","price":345.55}]}})";

std::unique_ptr<Table> MakePo() {
  return std::make_unique<Table>(
      "PO", std::vector<ColumnDef>{
                {.name = "DID", .type = ColumnType::kNumber},
                {.name = "JDOC",
                 .type = ColumnType::kJson,
                 .check_is_json = true},
            });
}

TEST(TokenizerTest, SplitsAndLowercases) {
  EXPECT_EQ(TokenizeKeywords("Smart Phone-2000!"),
            (std::vector<std::string>{"smart", "phone", "2000"}));
  EXPECT_TRUE(TokenizeKeywords("  ,;  ").empty());
}

TEST(SearchIndexTest, IncrementalMaintenanceOnInsert) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();

  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  table->Insert({Value::Int64(2), Value::String(kDoc2)});
  table->Insert({Value::Int64(3), Value::String(kDoc3)});

  EXPECT_EQ(idx->indexed_document_count(), 3u);
  EXPECT_EQ(idx->DocsWithPath("$.purchaseOrder.items.name"),
            (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(idx->DocsWithPath("$.purchaseOrder.foreign_id"),
            (std::vector<size_t>{2}));
  EXPECT_TRUE(idx->DocsWithPath("$.nope").empty());
}

TEST(SearchIndexTest, BackfillsExistingRows) {
  auto table = MakePo();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  EXPECT_EQ(idx->indexed_document_count(), 1u);
  EXPECT_EQ(idx->DocsWithPath("$.purchaseOrder.id"),
            (std::vector<size_t>{0}));
}

TEST(SearchIndexTest, ValueAndKeywordLookup) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  table->Insert({Value::Int64(2), Value::String(kDoc2)});

  EXPECT_EQ(idx->DocsWithValue("$.purchaseOrder.id", Value::Int64(2)),
            (std::vector<size_t>{1}));
  EXPECT_TRUE(idx->DocsWithValue("$.purchaseOrder.id", Value::Int64(9))
                  .empty());
  // Keyword search hits inside tokenized strings (full-text, §3.2.1).
  EXPECT_EQ(idx->DocsWithKeyword("$.purchaseOrder.items.name", "PHONE"),
            (std::vector<size_t>{0}));
  EXPECT_EQ(idx->DocsWithKeyword("$.purchaseOrder.items.name",
                                 "office chair"),
            (std::vector<size_t>{1}));
  EXPECT_TRUE(
      idx->DocsWithKeyword("$.purchaseOrder.items.name", "sofa").empty());
}

TEST(SearchIndexTest, DeleteRemovesPostingsButKeepsDataGuide) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc3)});
  size_t paths_before = idx->dataguide().distinct_path_count();
  ASSERT_TRUE(table->Delete(0).ok());
  EXPECT_TRUE(idx->DocsWithPath("$.purchaseOrder.foreign_id").empty());
  // Additive DataGuide (§3.4): paths survive deletes.
  EXPECT_EQ(idx->dataguide().distinct_path_count(), paths_before);
}

TEST(SearchIndexTest, ReplaceReindexes) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  ASSERT_TRUE(
      table->Replace(0, {Value::Int64(1), Value::String(kDoc3)}).ok());
  EXPECT_EQ(idx->DocsWithPath("$.purchaseOrder.foreign_id"),
            (std::vector<size_t>{0}));
  EXPECT_EQ(idx->DocsWithValue("$.purchaseOrder.id", Value::Int64(3)),
            (std::vector<size_t>{0}));
  EXPECT_TRUE(
      idx->DocsWithValue("$.purchaseOrder.id", Value::Int64(1)).empty());
}

TEST(SearchIndexTest, DgTableHasPaperShape) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  rdbms::Schema schema = idx->DgSchema();
  EXPECT_EQ(schema.columns()[0], "PATH");
  EXPECT_EQ(schema.columns()[1], "TYPE");
  std::vector<rdbms::Row> rows = idx->DgRows();
  ASSERT_FALSE(rows.empty());
  bool found = false;
  for (const rdbms::Row& row : rows) {
    if (row[0].AsString() == "$.purchaseOrder.items.price") {
      EXPECT_EQ(row[1].AsString(), "array of number");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SearchIndexTest, DgWriteCountTracksStructuralNovelty) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  table->Insert({Value::Int64(2), Value::String(kDoc2)});  // same structure
  EXPECT_EQ(idx->dg_write_count(), 1u);
  table->Insert({Value::Int64(3), Value::String(kDoc3)});  // adds foreign_id
  EXPECT_EQ(idx->dg_write_count(), 2u);
}

TEST(SearchIndexTest, GetDataGuideForms) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  EXPECT_EQ(idx->GetDataGuide(false)[0], '[');  // flat = array
  EXPECT_EQ(idx->GetDataGuide(true)[0], '{');   // hierarchical = object
}

TEST(SearchIndexTest, PostingsCanBeDisabled) {
  auto table = MakePo();
  JsonSearchIndex::Options opts;
  opts.maintain_postings = false;
  auto idx =
      JsonSearchIndex::Create(table.get(), "JDOC", opts).MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  EXPECT_EQ(idx->posting_count(), 0u);
  EXPECT_GT(idx->dataguide().distinct_path_count(), 0u);
}

TEST(SearchIndexTest, CreateValidatesColumn) {
  auto table = MakePo();
  EXPECT_FALSE(JsonSearchIndex::Create(table.get(), "NOPE").ok());
  EXPECT_FALSE(JsonSearchIndex::Create(table.get(), "DID").ok());
}


TEST(IndexedScanTest, PathValueAndKeywordScans) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  table->Insert({Value::Int64(2), Value::String(kDoc2)});
  table->Insert({Value::Int64(3), Value::String(kDoc3)});

  auto drain = [](rdbms::OperatorPtr op) {
    Result<std::vector<rdbms::Row>> rows = rdbms::Collect(op.get());
    EXPECT_TRUE(rows.ok());
    std::vector<int64_t> dids;
    for (const rdbms::Row& r : rows.value()) dids.push_back(r[0].AsInt64());
    return dids;
  };

  EXPECT_EQ(drain(IndexedPathScan(table.get(), idx.get(),
                                  "$.purchaseOrder.foreign_id")),
            (std::vector<int64_t>{3}));
  EXPECT_EQ(drain(IndexedValueScan(table.get(), idx.get(),
                                   "$.purchaseOrder.id", Value::Int64(2))),
            (std::vector<int64_t>{2}));
  EXPECT_EQ(drain(IndexedKeywordScan(table.get(), idx.get(),
                                     "$.purchaseOrder.items.name", "chair")),
            (std::vector<int64_t>{2}));
  EXPECT_TRUE(drain(IndexedPathScan(table.get(), idx.get(), "$.none"))
                  .empty());
}

TEST(IndexedScanTest, SkipsRowsDeletedAfterLookup) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::String(kDoc1)});
  table->Insert({Value::Int64(2), Value::String(kDoc1)});
  auto scan = IndexedPathScan(table.get(), idx.get(), "$.purchaseOrder.id");
  ASSERT_TRUE(table->Delete(0).ok());
  Result<std::vector<rdbms::Row>> rows = rdbms::Collect(scan.get());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0].AsInt64(), 2);
}

TEST(SearchIndexTest, NullDocumentsAreSkipped) {
  auto table = MakePo();
  auto idx = JsonSearchIndex::Create(table.get(), "JDOC").MoveValue();
  table->Insert({Value::Int64(1), Value::Null()});
  EXPECT_EQ(idx->indexed_document_count(), 0u);
  EXPECT_EQ(idx->posting_count(), 0u);
}

}  // namespace
}  // namespace fsdm::index
