#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "json/node.h"
#include "oson/oson.h"
#include "workloads/generators.h"

namespace fsdm::oson {
namespace {

/// Corruption smoke fuzz (ISSUE 3 satellite): the decoder must return a
/// Status for arbitrary byte-flipped or truncated images, never crash or
/// read out of bounds (the chaos CI job runs this under ASan). Seeds are
/// fixed so a failure reproduces exactly.

TEST(OsonCorruptionFuzz, HeaderLevelCorruptionIsRejected) {
  Result<std::string> image = EncodeFromText("{\"a\": [1, \"two\", null]}");
  ASSERT_TRUE(image.ok());
  const std::string& bytes = image.value();

  EXPECT_FALSE(Decode("").ok());
  EXPECT_FALSE(Decode("zz").ok());
  // Truncated below the fixed header.
  EXPECT_FALSE(Decode(std::string_view(bytes).substr(0, 3)).ok());
  // Broken magic.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0x7f;
  EXPECT_FALSE(Decode(bad_magic).ok());
  // Unsupported version.
  std::string bad_version = bytes;
  bad_version[4] = char(0x7f);
  EXPECT_FALSE(Decode(bad_version).ok());
}

TEST(OsonCorruptionFuzz, SeededByteFlipsAndTruncationsNeverCrash) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    Rng doc_rng(seed);
    Rng fuzz_rng(seed * 2654435761u + 1);
    size_t decoded_ok = 0;
    size_t rejected = 0;
    for (int64_t doc_id = 0; doc_id < 8; ++doc_id) {
      std::string json = workloads::Nobench(&doc_rng, doc_id);
      Result<std::string> image = EncodeFromText(json);
      ASSERT_TRUE(image.ok()) << image.status().message();
      const std::string& bytes = image.value();
      ASSERT_TRUE(Decode(bytes).ok());  // pristine image round-trips

      for (int k = 0; k < 150; ++k) {
        std::string corrupted = bytes;
        switch (fuzz_rng.Uniform(3)) {
          case 0: {  // single byte flip
            size_t pos = fuzz_rng.Uniform(corrupted.size());
            corrupted[pos] ^=
                static_cast<char>(1 + fuzz_rng.Uniform(255));
            break;
          }
          case 1: {  // burst of flips
            for (int b = 0; b < 8; ++b) {
              size_t pos = fuzz_rng.Uniform(corrupted.size());
              corrupted[pos] ^=
                  static_cast<char>(1 + fuzz_rng.Uniform(255));
            }
            break;
          }
          case 2:  // truncation
            corrupted.resize(fuzz_rng.Uniform(corrupted.size()));
            break;
        }
        // The contract under test: a Status comes back either way; ASan
        // catches any out-of-bounds read the corrupted offsets provoke.
        Result<std::unique_ptr<json::JsonNode>> decoded = Decode(corrupted);
        if (decoded.ok()) {
          ++decoded_ok;
        } else {
          ++rejected;
          EXPECT_FALSE(decoded.status().message().empty());
        }
      }
    }
    // Most corruptions must be detected; a benign flip (e.g. inside an
    // unreferenced dictionary byte) may still decode.
    EXPECT_GT(rejected, decoded_ok) << "seed " << seed;
  }
}

}  // namespace
}  // namespace fsdm::oson
