#include "oson/set_encoding.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "jsonpath/evaluator.h"
#include "workloads/generators.h"

namespace fsdm::oson {
namespace {

std::vector<std::string> SampleDocs(int n) {
  Rng rng(31);
  std::vector<std::string> docs;
  for (int i = 0; i < n; ++i) {
    docs.push_back(workloads::PurchaseOrder(&rng, i + 1));
  }
  return docs;
}

struct EncodedSet {
  SetEncoder encoder;
  std::vector<std::string> images;
};

EncodedSet EncodeAll(const std::vector<std::string>& docs) {
  EncodedSet set;
  std::vector<std::unique_ptr<json::JsonNode>> trees;
  for (const std::string& text : docs) {
    trees.push_back(json::Parse(text).MoveValue());
    set.encoder.CollectNames(*trees.back());
  }
  EXPECT_TRUE(set.encoder.FinalizeDictionary().ok());
  for (const auto& tree : trees) {
    Result<std::string> img = set.encoder.Encode(*tree);
    EXPECT_TRUE(img.ok()) << img.status().ToString();
    set.images.push_back(img.MoveValue());
  }
  return set;
}

TEST(SharedDictionaryTest, BuildAndLookup) {
  SharedDictionary::Builder builder;
  builder.AddName("alpha");
  builder.AddName("beta");
  builder.AddName("alpha");  // duplicates collapse
  SharedDictionary dict = std::move(builder).Build();
  EXPECT_EQ(dict.field_count(), 2u);
  auto id = dict.LookupId("alpha", FieldNameHash("alpha"));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(dict.FieldName(*id), "alpha");
  EXPECT_EQ(dict.FieldHash(*id), FieldNameHash("alpha"));
  EXPECT_FALSE(dict.LookupId("gamma", FieldNameHash("gamma")).has_value());
  // Hash-sorted ids.
  for (uint32_t i = 0; i + 1 < dict.field_count(); ++i) {
    EXPECT_LE(dict.FieldHash(i), dict.FieldHash(i + 1));
  }
}

TEST(SetEncodingTest, RoundTripThroughSharedDictionary) {
  std::vector<std::string> docs = SampleDocs(10);
  EncodedSet set = EncodeAll(docs);
  for (size_t i = 0; i < docs.size(); ++i) {
    Result<OsonDom> dom = OpenSetImage(set.images[i],
                                       &set.encoder.dictionary());
    ASSERT_TRUE(dom.ok()) << dom.status().ToString();
    auto original = json::Parse(docs[i]).MoveValue();
    auto roundtrip =
        json::Parse(json::Serialize(dom.value())).MoveValue();
    EXPECT_TRUE(original->Equals(*roundtrip)) << i;
  }
}

TEST(SetEncodingTest, ImagesAreSmallerThanSelfContained) {
  std::vector<std::string> docs = SampleDocs(20);
  EncodedSet set = EncodeAll(docs);
  size_t set_total = set.encoder.dictionary().MemoryBytes();
  size_t self_total = 0;
  for (size_t i = 0; i < docs.size(); ++i) {
    set_total += set.images[i].size();
    self_total += EncodeFromText(docs[i]).MoveValue().size();
  }
  // One dictionary instead of 20 dominates for homogeneous collections.
  EXPECT_LT(set_total, self_total);
}

TEST(SetEncodingTest, RequiresDictionaryAtOpen) {
  std::vector<std::string> docs = SampleDocs(1);
  EncodedSet set = EncodeAll(docs);
  // Plain Open refuses set images.
  EXPECT_FALSE(OsonDom::Open(set.images[0]).ok());
  EXPECT_FALSE(OpenSetImage(set.images[0], nullptr).ok());
  // And self-contained images refuse a dictionary.
  std::string self = EncodeFromText(docs[0]).MoveValue();
  EXPECT_FALSE(OpenSetImage(self, &set.encoder.dictionary()).ok());
}

TEST(SetEncodingTest, EncodeBeforeFinalizeFails) {
  SetEncoder enc;
  auto doc = json::Parse(R"({"a":1})").MoveValue();
  EXPECT_FALSE(enc.Encode(*doc).ok());
}

TEST(SetEncodingTest, UnknownFieldFailsEncode) {
  SetEncoder enc;
  auto known = json::Parse(R"({"a":1})").MoveValue();
  enc.CollectNames(*known);
  ASSERT_TRUE(enc.FinalizeDictionary().ok());
  auto unknown = json::Parse(R"({"zz":1})").MoveValue();
  EXPECT_FALSE(enc.Encode(*unknown).ok());
}

TEST(SetEncodingTest, HeterogeneousCollectionSupported) {
  // Unlike Dremel (§7), differing types/positions per instance are fine.
  std::vector<std::string> docs = {
      R"({"name":"str"})", R"({"name":42})",
      R"({"name":{"inner":1}})", R"({"name":[1,2]})"};
  EncodedSet set = EncodeAll(docs);
  for (size_t i = 0; i < docs.size(); ++i) {
    OsonDom dom =
        OpenSetImage(set.images[i], &set.encoder.dictionary()).MoveValue();
    auto original = json::Parse(docs[i]).MoveValue();
    auto roundtrip = json::Parse(json::Serialize(dom)).MoveValue();
    EXPECT_TRUE(original->Equals(*roundtrip)) << docs[i];
  }
}

TEST(SetEncodingTest, PathEngineWithGlobalIdCache) {
  // Global field ids mean the per-step look-back cache never misses
  // across documents of the set.
  std::vector<std::string> docs = SampleDocs(25);
  EncodedSet set = EncodeAll(docs);
  jsonpath::PathExpression path =
      jsonpath::PathExpression::Parse("$.purchaseOrder.costcenter")
          .MoveValue();
  jsonpath::PathEvaluator eval(&path);
  int found = 0;
  for (const std::string& img : set.images) {
    OsonDom dom = OpenSetImage(img, &set.encoder.dictionary()).MoveValue();
    Result<std::optional<Value>> v = eval.FirstScalar(dom);
    ASSERT_TRUE(v.ok());
    if (v.value().has_value()) ++found;
  }
  EXPECT_EQ(found, 25);
}

TEST(SetEncodingTest, FieldLookupByNameWorks) {
  std::vector<std::string> docs = SampleDocs(3);
  EncodedSet set = EncodeAll(docs);
  OsonDom dom =
      OpenSetImage(set.images[0], &set.encoder.dictionary()).MoveValue();
  json::Dom::NodeRef po = dom.GetFieldValue(dom.root(), "purchaseOrder");
  ASSERT_NE(po, json::Dom::kInvalidNode);
  json::Dom::NodeRef id = dom.GetFieldValue(po, "id");
  Value v;
  ASSERT_TRUE(dom.GetScalarValue(id, &v).ok());
  EXPECT_EQ(v.AsInt64(), 1);
  // GetFieldAt surfaces shared-dictionary names.
  std::string_view name;
  json::Dom::NodeRef child;
  dom.GetFieldAt(dom.root(), 0, &name, &child);
  EXPECT_EQ(name, "purchaseOrder");
}

}  // namespace
}  // namespace fsdm::oson
