#include "oson/oson.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "json/parser.h"
#include "json/serializer.h"

namespace fsdm::oson {
namespace {

constexpr const char* kPo =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[)"
    R"({"name":"phone","price":100,"quantity":2},)"
    R"({"name":"ipad","price":350.86,"quantity":3}]}})";

std::string MustEncode(std::string_view text, const EncodeOptions& opts = {}) {
  Result<std::string> r = EncodeFromText(text, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(OsonTest, EncodeDecodeRoundTrip) {
  for (const char* text :
       {"{}", "[]", "null", "true", "42", "\"str\"", R"({"a":1})",
        R"([1,[2,[3,[4]]]])", R"({"a":{"b":{"c":[1,2,3]}}})",
        R"({"s":"hello","t":true,"f":false,"n":null})",
        R"({"neg":-42,"big":99999999999999999999,"d":0.125})", kPo}) {
    std::string bytes = MustEncode(text);
    Result<std::unique_ptr<json::JsonNode>> back = Decode(bytes);
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    auto original = json::Parse(text).MoveValue();
    EXPECT_TRUE(original->Equals(*back.value()))
        << text << " -> " << json::Serialize(*back.value());
  }
}

TEST(OsonTest, HeaderValidation) {
  std::string bytes = MustEncode(kPo);
  EXPECT_TRUE(OsonDom::Open(bytes).ok());
  EXPECT_FALSE(OsonDom::Open("").ok());
  EXPECT_FALSE(OsonDom::Open("OSONxxxx").ok());
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(OsonDom::Open(bad_magic).ok());
  std::string bad_version = bytes;
  bad_version[4] = 99;
  EXPECT_FALSE(OsonDom::Open(bad_version).ok());
  std::string truncated = bytes.substr(0, bytes.size() - 3);
  EXPECT_FALSE(OsonDom::Open(truncated).ok());
}

TEST(OsonDomTest, NavigationAndFieldIds) {
  std::string bytes = MustEncode(kPo);
  OsonDom dom = OsonDom::Open(bytes).MoveValue();

  // 7 distinct field names despite repetition inside the items array.
  EXPECT_EQ(dom.field_count(), 7u);

  json::Dom::NodeRef root = dom.root();
  json::Dom::NodeRef po = dom.GetFieldValue(root, "purchaseOrder");
  ASSERT_NE(po, json::Dom::kInvalidNode);

  // Field-id resolution with a precomputed hash (query-compile-time path).
  uint32_t hash = FieldNameHash("price");
  std::optional<uint32_t> id = dom.LookupFieldId("price", hash);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(dom.FieldName(*id), "price");
  EXPECT_EQ(dom.FieldHash(*id), hash);
  EXPECT_FALSE(dom.LookupFieldId("absent", FieldNameHash("absent")));

  json::Dom::NodeRef items = dom.GetFieldValue(po, "items");
  EXPECT_EQ(dom.GetArrayLength(items), 2u);
  json::Dom::NodeRef item1 = dom.GetArrayElement(items, 1);
  json::Dom::NodeRef price = dom.GetFieldValueById(item1, *id);
  ASSERT_NE(price, json::Dom::kInvalidNode);
  Value v;
  ASSERT_TRUE(dom.GetScalarValue(price, &v).ok());
  EXPECT_EQ(v.AsDecimal().ToString(), "350.86");

  // By-id miss on an object lacking the field.
  std::optional<uint32_t> podate_id =
      dom.LookupFieldId("podate", FieldNameHash("podate"));
  EXPECT_EQ(dom.GetFieldValueById(item1, *podate_id),
            json::Dom::kInvalidNode);
}

TEST(OsonDomTest, FieldIdsAreSortedByHash) {
  std::string bytes = MustEncode(kPo);
  OsonDom dom = OsonDom::Open(bytes).MoveValue();
  for (uint32_t i = 0; i + 1 < dom.field_count(); ++i) {
    EXPECT_LE(dom.FieldHash(i), dom.FieldHash(i + 1));
  }
}

TEST(OsonDomTest, GetFieldAtReturnsNames) {
  std::string bytes = MustEncode(R"({"b":1,"a":2})");
  OsonDom dom = OsonDom::Open(bytes).MoveValue();
  size_t n = dom.GetFieldCount(dom.root());
  ASSERT_EQ(n, 2u);
  bool saw_a = false, saw_b = false;
  for (size_t i = 0; i < n; ++i) {
    std::string_view name;
    json::Dom::NodeRef child;
    dom.GetFieldAt(dom.root(), i, &name, &child);
    Value v;
    ASSERT_TRUE(dom.GetScalarValue(child, &v).ok());
    if (name == "a") {
      saw_a = true;
      EXPECT_EQ(v.AsInt64(), 2);
    }
    if (name == "b") {
      saw_b = true;
      EXPECT_EQ(v.AsInt64(), 1);
    }
  }
  EXPECT_TRUE(saw_a && saw_b);
}

TEST(OsonTest, DictionaryStoresRepeatedNamesOnce) {
  // 100-element array of identical objects: the dictionary segment must not
  // grow with repetition — that is OSON's size advantage (§6.1).
  std::string small = R"([{"alpha":1,"beta":2}])";
  std::string big = "[";
  for (int i = 0; i < 100; ++i) {
    if (i) big += ",";
    big += R"({"alpha":1,"beta":2})";
  }
  big += "]";
  OsonDom d1 = OsonDom::Open(MustEncode(small)).MoveValue();
  std::string big_bytes = MustEncode(big);
  OsonDom d2 = OsonDom::Open(big_bytes).MoveValue();
  EXPECT_EQ(d1.segment_stats().dictionary_size,
            d2.segment_stats().dictionary_size);
  EXPECT_EQ(d2.field_count(), 2u);
}

TEST(OsonTest, LeafDedupSharesIdenticalValues) {
  std::string repeated = "[";
  for (int i = 0; i < 50; ++i) {
    if (i) repeated += ",";
    repeated += "\"same-long-string-value\"";
  }
  repeated += "]";
  EncodeOptions dedup;
  EncodeOptions nodedup;
  nodedup.dedup_leaf_values = false;
  std::string with = MustEncode(repeated, dedup);
  std::string without = MustEncode(repeated, nodedup);
  EXPECT_LT(with.size(), without.size());
  // Both decode identically.
  EXPECT_TRUE(Decode(with).value()->Equals(*Decode(without).value()));
}

TEST(OsonTest, WideOffsetsKickInForLargeImages) {
  // > 64KB of string data forces 4-byte offsets.
  std::string big = "{\"data\":[";
  for (int i = 0; i < 5000; ++i) {
    if (i) big += ",";
    big += "\"string-value-number-" + std::to_string(i) + "\"";
  }
  big += "]}";
  std::string bytes = MustEncode(big);
  EXPECT_GT(bytes.size(), 65535u);
  auto back = Decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(json::Parse(big).value()->Equals(*back.value()));
}

TEST(OsonTest, NumbersAsDoubleOption) {
  EncodeOptions opts;
  opts.numbers_as_double = true;
  std::string bytes = MustEncode(R"({"v":0.5,"i":3})", opts);
  auto back = Decode(bytes).MoveValue();
  EXPECT_EQ(back->GetField("v")->scalar().type(), ScalarType::kDouble);
  EXPECT_EQ(back->GetField("i")->scalar().type(), ScalarType::kDouble);
}

TEST(OsonTest, SegmentStatsAddUp) {
  std::string bytes = MustEncode(kPo);
  OsonDom dom = OsonDom::Open(bytes).MoveValue();
  SegmentStats s = dom.segment_stats();
  EXPECT_EQ(s.header_size + s.dictionary_size + s.tree_size + s.values_size,
            s.total_size);
  EXPECT_EQ(s.field_count, 7u);
  EXPECT_GT(s.dictionary_size, 0u);
  EXPECT_GT(s.tree_size, 0u);
  EXPECT_GT(s.values_size, 0u);
}

TEST(OsonUpdaterTest, InPlaceLeafUpdates) {
  EncodeOptions opts;
  opts.updatable = true;
  std::string image = MustEncode(R"({"n":100,"s":"hello","b":true})", opts);
  OsonDom dom = OsonDom::Open(image).MoveValue();
  json::Dom::NodeRef n = dom.GetFieldValue(dom.root(), "n");
  json::Dom::NodeRef s = dom.GetFieldValue(dom.root(), "s");
  json::Dom::NodeRef b = dom.GetFieldValue(dom.root(), "b");

  OsonUpdater updater(&image);
  ASSERT_TRUE(updater.UpdateLeaf(n, Value::Int64(7)).ok());
  ASSERT_TRUE(updater.UpdateLeaf(s, Value::String("hi")).ok());
  ASSERT_TRUE(updater.UpdateLeaf(b, Value::Bool(false)).ok());

  auto back = Decode(image).MoveValue();
  EXPECT_EQ(back->GetField("n")->scalar().AsInt64(), 7);
  EXPECT_EQ(back->GetField("s")->scalar().AsString(), "hi");
  EXPECT_FALSE(back->GetField("b")->scalar().AsBool());
}

TEST(OsonUpdaterTest, RejectsOversizedAndRetyped) {
  EncodeOptions opts;
  opts.updatable = true;
  std::string image = MustEncode(R"({"s":"ab","n":5})", opts);
  OsonDom dom = OsonDom::Open(image).MoveValue();
  json::Dom::NodeRef s = dom.GetFieldValue(dom.root(), "s");
  json::Dom::NodeRef n = dom.GetFieldValue(dom.root(), "n");
  json::Dom::NodeRef root = dom.root();

  OsonUpdater updater(&image);
  EXPECT_FALSE(updater.UpdateLeaf(s, Value::String("way-too-long")).ok());
  EXPECT_FALSE(updater.UpdateLeaf(s, Value::Int64(1)).ok());
  EXPECT_FALSE(updater.UpdateLeaf(n, Value::String("x")).ok());
  EXPECT_FALSE(updater.UpdateLeaf(root, Value::Int64(1)).ok());
}

TEST(OsonUpdaterTest, RequiresUnsharedLeaves) {
  std::string image = MustEncode(R"({"a":1,"b":1})");  // dedup on
  OsonDom dom = OsonDom::Open(image).MoveValue();
  json::Dom::NodeRef a = dom.GetFieldValue(dom.root(), "a");
  OsonUpdater updater(&image);
  Status st = updater.UpdateLeaf(a, Value::Int64(2));
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(OsonTest, ExtendedScalarTypesRoundTrip) {
  auto obj = json::JsonNode::MakeObject();
  obj->AddField("d", json::JsonNode::MakeScalar(Value::Date(20000)));
  obj->AddField("ts",
                json::JsonNode::MakeScalar(Value::Timestamp(1234567890123456)));
  obj->AddField("bin", json::JsonNode::MakeScalar(
                           Value::Binary(std::string("\x00\x01\xff", 3))));
  Result<std::string> enc = Encode(*obj);
  ASSERT_TRUE(enc.ok());
  auto back = Decode(enc.value()).MoveValue();
  EXPECT_EQ(back->GetField("d")->scalar().AsDate(), 20000);
  EXPECT_EQ(back->GetField("ts")->scalar().AsTimestamp(), 1234567890123456);
  EXPECT_EQ(back->GetField("bin")->scalar().AsBinary(),
            std::string("\x00\x01\xff", 3));
}

// Property: random documents round-trip through OSON, and OsonDom navigation
// agrees with TreeDom navigation on random paths.
class OsonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::unique_ptr<json::JsonNode> RandomDoc(Rng* rng, int depth) {
  double r = rng->NextDouble();
  if (depth >= 4 || r < 0.45) {
    switch (rng->Uniform(5)) {
      case 0:
        return json::JsonNode::MakeNull();
      case 1:
        return json::JsonNode::MakeBool(rng->NextBool());
      case 2:
        return json::JsonNode::MakeNumber(rng->Range(-1000000, 1000000));
      case 3: {
        Decimal d = Decimal::FromString(
                        std::to_string(rng->Range(-999, 999)) + "." +
                        std::to_string(rng->Range(1, 999)))
                        .MoveValue();
        return json::JsonNode::MakeScalar(Value::Dec(d));
      }
      default:
        return json::JsonNode::MakeString(rng->AlphaNum(rng->Uniform(20)));
    }
  }
  if (r < 0.75) {
    auto obj = json::JsonNode::MakeObject();
    size_t n = rng->Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      obj->AddField("k" + std::to_string(rng->Uniform(40)) + "_" +
                        std::to_string(i),
                    RandomDoc(rng, depth + 1));
    }
    return obj;
  }
  auto arr = json::JsonNode::MakeArray();
  size_t n = rng->Uniform(6);
  for (size_t i = 0; i < n; ++i) arr->Append(RandomDoc(rng, depth + 1));
  return arr;
}

TEST_P(OsonPropertyTest, RandomDocsRoundTripAndNavigate) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    auto doc = RandomDoc(&rng, 0);
    Result<std::string> enc = Encode(*doc);
    ASSERT_TRUE(enc.ok()) << enc.status().ToString();
    Result<std::unique_ptr<json::JsonNode>> back = Decode(enc.value());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(doc->Equals(*back.value()))
        << json::Serialize(*doc) << "\nvs\n" << json::Serialize(*back.value());

    // Serialization through either Dom produces structurally equal text.
    OsonDom odom = OsonDom::Open(enc.value()).MoveValue();
    auto via_oson = json::Parse(json::Serialize(odom)).MoveValue();
    EXPECT_TRUE(doc->Equals(*via_oson));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OsonPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace fsdm::oson
