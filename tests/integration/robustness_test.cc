// Failure-injection / robustness properties: corrupt binary images and
// hostile inputs must produce Status errors, never crashes or silent
// garbage.

#include <gtest/gtest.h>

#include <set>

#include "bson/bson.h"
#include "common/rng.h"
#include "json/parser.h"
#include "json/serializer.h"
#include "jsonpath/evaluator.h"
#include "oson/oson.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

std::string SampleOson() {
  Rng rng(5);
  return oson::EncodeFromText(workloads::PurchaseOrder(&rng, 1)).MoveValue();
}

// Walks a whole Dom defensively; any Status error is fine, crashes and
// infinite loops are not. Corrupted offsets can form cycles or DAG blowup
// in the node graph, so the walk is visited-deduplicated and budgeted.
void DefensiveWalkImpl(const json::Dom& dom, json::Dom::NodeRef node,
                       int depth, std::set<json::Dom::NodeRef>* seen,
                       size_t* budget) {
  if (depth > 64 || *budget == 0) return;
  --*budget;
  if (!seen->insert(node).second) return;  // cycle / shared subtree
  switch (dom.GetNodeType(node)) {
    case json::NodeKind::kObject: {
      size_t n = std::min<size_t>(dom.GetFieldCount(node), 4096);
      for (size_t i = 0; i < n; ++i) {
        std::string_view name;
        json::Dom::NodeRef child = json::Dom::kInvalidNode;
        dom.GetFieldAt(node, i, &name, &child);
        if (child != json::Dom::kInvalidNode) {
          DefensiveWalkImpl(dom, child, depth + 1, seen, budget);
        }
      }
      break;
    }
    case json::NodeKind::kArray: {
      size_t n = std::min<size_t>(dom.GetArrayLength(node), 4096);
      for (size_t i = 0; i < n; ++i) {
        json::Dom::NodeRef child = dom.GetArrayElement(node, i);
        if (child != json::Dom::kInvalidNode) {
          DefensiveWalkImpl(dom, child, depth + 1, seen, budget);
        }
      }
      break;
    }
    case json::NodeKind::kScalar: {
      Value v;
      (void)dom.GetScalarValue(node, &v);
      break;
    }
  }
}

void DefensiveWalk(const json::Dom& dom, json::Dom::NodeRef node, int) {
  std::set<json::Dom::NodeRef> seen;
  size_t budget = 100000;
  DefensiveWalkImpl(dom, node, 0, &seen, &budget);
}

class CorruptionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CorruptionTest, TruncatedOsonNeverCrashes) {
  std::string image = SampleOson();
  Rng rng(GetParam());
  for (int iter = 0; iter < 100; ++iter) {
    size_t cut = rng.Uniform(image.size());
    std::string truncated = image.substr(0, cut);
    Result<oson::OsonDom> dom = oson::OsonDom::Open(truncated);
    if (dom.ok()) {
      // If the header happened to validate, navigation must stay memory-
      // safe and decode must fail or produce a tree, not crash.
      DefensiveWalk(dom.value(), dom.value().root(), 0);
      (void)oson::Decode(truncated);
    }
  }
}

TEST_P(CorruptionTest, BitFlippedOsonNeverCrashes) {
  std::string image = SampleOson();
  Rng rng(GetParam());
  for (int iter = 0; iter < 150; ++iter) {
    std::string mutated = image;
    // Flip 1-4 random bytes.
    int flips = static_cast<int>(rng.Range(1, 4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next() & 0xff);
    }
    Result<oson::OsonDom> dom = oson::OsonDom::Open(mutated);
    if (dom.ok()) {
      DefensiveWalk(dom.value(), dom.value().root(), 0);
      (void)oson::Decode(mutated);
    }
  }
}

TEST_P(CorruptionTest, BitFlippedBsonNeverCrashes) {
  Rng seed_rng(5);
  std::string image =
      bson::EncodeFromText(workloads::PurchaseOrder(&seed_rng, 1))
          .MoveValue();
  Rng rng(GetParam());
  for (int iter = 0; iter < 150; ++iter) {
    std::string mutated = image;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next() & 0xff);
    Result<bson::BsonDom> dom = bson::BsonDom::Open(mutated);
    if (dom.ok()) {
      DefensiveWalk(dom.value(), dom.value().root(), 0);
      (void)bson::Decode(mutated);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest,
                         ::testing::Values(101, 202, 303));

TEST(RobustnessTest, RandomGarbageImagesRejected) {
  Rng rng(9);
  for (int iter = 0; iter < 200; ++iter) {
    std::string garbage = rng.AlphaNum(rng.Uniform(200));
    EXPECT_FALSE(oson::Decode(garbage).ok());
    (void)bson::BsonDom::Open(garbage);
    (void)json::Parse(garbage);  // may parse (alphanum could be a number)
  }
}

TEST(RobustnessTest, DeeplyNestedDocumentsBounded) {
  // 400 nesting levels: parse succeeds (default cap 512); OSON round-trips
  // without stack issues; path evaluation on a long chain works.
  std::string open_doc, close;
  for (int i = 0; i < 400; ++i) {
    open_doc += "{\"a\":";
    close += "}";
  }
  std::string doc = open_doc + "1" + close;
  auto tree = json::Parse(doc);
  ASSERT_TRUE(tree.ok());
  auto image = oson::Encode(*tree.value());
  ASSERT_TRUE(image.ok());
  auto back = oson::Decode(image.value());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(tree.value()->Equals(*back.value()));

  std::string path = "$";
  for (int i = 0; i < 400; ++i) path += ".a";
  auto p = jsonpath::PathExpression::Parse(path).MoveValue();
  jsonpath::PathEvaluator eval(&p);
  oson::OsonDom dom = oson::OsonDom::Open(image.value()).MoveValue();
  auto v = eval.FirstScalar(dom);
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_EQ(v.value()->AsInt64(), 1);
}

TEST(RobustnessTest, HugeFieldNamesAndValues) {
  std::string big_name(10000, 'k');
  std::string big_value(100000, 'v');
  std::string doc = "{\"" + big_name + "\":\"" + big_value + "\"}";
  auto image = oson::EncodeFromText(doc);
  ASSERT_TRUE(image.ok());
  auto back = oson::Decode(image.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->GetField(big_name)->scalar().AsString(),
            big_value);
}

TEST(RobustnessTest, ManyDistinctFieldsCrossIdWidths) {
  // >255 distinct fields forces 2-byte field ids; >65535 would force 4.
  std::string doc = "{";
  for (int i = 0; i < 700; ++i) {
    if (i) doc += ",";
    doc += "\"f" + std::to_string(i) + "\":" + std::to_string(i);
  }
  doc += "}";
  auto image = oson::EncodeFromText(doc);
  ASSERT_TRUE(image.ok());
  oson::OsonDom dom = oson::OsonDom::Open(image.value()).MoveValue();
  EXPECT_EQ(dom.field_count(), 700u);
  Value v;
  json::Dom::NodeRef ref = dom.GetFieldValue(dom.root(), "f456");
  ASSERT_NE(ref, json::Dom::kInvalidNode);
  ASSERT_TRUE(dom.GetScalarValue(ref, &v).ok());
  EXPECT_EQ(v.AsInt64(), 456);
  auto back = oson::Decode(image.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()->field_count(), 700u);
}

TEST(RobustnessTest, RoundTripFuzzAcrossFormats) {
  // Random documents survive text -> OSON -> text -> BSON -> text.
  Rng rng(12321);
  for (int iter = 0; iter < 50; ++iter) {
    std::string doc = workloads::Nobench(&rng, iter);
    auto oson_img = oson::EncodeFromText(doc).MoveValue();
    auto via_oson = json::Serialize(*oson::Decode(oson_img).value());
    auto bson_img = bson::EncodeFromText(via_oson).MoveValue();
    auto via_bson = json::Serialize(*bson::Decode(bson_img).value());
    auto a = json::Parse(doc).MoveValue();
    auto b = json::Parse(via_bson).MoveValue();
    EXPECT_TRUE(a->Equals(*b)) << doc;
  }
}

}  // namespace
}  // namespace fsdm
