#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collection/collections_table.h"
#include "collection/path_stats_table.h"
#include "collection/wal_table.h"
#include "rdbms/executor.h"
#include "stats/stats_table.h"
#include "telemetry/ash_table.h"
#include "telemetry/log_table.h"
#include "telemetry/metrics_table.h"

/// Golden-schema test (ISSUE 9 satellite): pins the column names *and
/// order* of every TELEMETRY$ virtual relation. These schemas are a public
/// SQL surface — dashboards, the README table and scripts/ash_report.py
/// all address columns positionally or by name — so changing one must be a
/// conscious, test-visible act. Add a column at the end; never rename or
/// reorder silently.

namespace fsdm {
namespace {

using Columns = std::vector<std::string>;

Columns SchemaOf(rdbms::OperatorPtr op) { return op->schema().columns(); }

TEST(TelemetrySchemaTest, Metrics) {
  EXPECT_EQ(SchemaOf(telemetry::MetricsScan()),
            (Columns{"NAME", "KIND", "VALUE", "COUNT", "SUM", "MIN", "MAX",
                     "P50", "P95", "P99"}));
}

TEST(TelemetrySchemaTest, Events) {
  EXPECT_EQ(SchemaOf(telemetry::EventsScan()),
            (Columns{"TS_US", "THREAD", "CATEGORY", "NAME", "PHASE", "DUR_US",
                     "ARGS"}));
}

TEST(TelemetrySchemaTest, SlowQueries) {
  EXPECT_EQ(SchemaOf(telemetry::SlowQueriesScan()),
            (Columns{"TS_US", "QUERY_ID", "QUERY", "ACCESS_PATH", "ELAPSED_US",
                     "ROWS", "EST_ROWS", "PEAK_MEM_BYTES", "EVENT_COUNT",
                     "TRACE"}));
}

TEST(TelemetrySchemaTest, QueryMonitor) {
  EXPECT_EQ(SchemaOf(telemetry::QueryMonitorScan()),
            (Columns{"QUERY_ID", "COLLECTION", "QUERY", "ACCESS_PATH",
                     "OPERATOR", "DEPTH", "SHARD", "WORKER", "STATE",
                     "ROWS_OUT", "EST_ROWS", "ELAPSED_US"}));
}

TEST(TelemetrySchemaTest, Memory) {
  EXPECT_EQ(SchemaOf(telemetry::MemoryScan()),
            (Columns{"SUBSYSTEM", "COLLECTION", "BYTES", "PEAK_BYTES"}));
}

TEST(TelemetrySchemaTest, Ash) {
  EXPECT_EQ(SchemaOf(telemetry::AshScan()),
            (Columns{"TS_US", "THREAD", "WAIT_STATE", "WAIT_CLASS",
                     "COLLECTION", "ACCESS_PATH", "OP", "QUERY", "QUERY_ID",
                     "SHARD", "WORKER"}));
}

TEST(TelemetrySchemaTest, Snapshots) {
  EXPECT_EQ(SchemaOf(telemetry::SnapshotsScan()),
            (Columns{"SNAP_ID", "TS_US", "LABEL", "SAMPLER_TICKS",
                     "DB_SAMPLES", "CPU_PCT", "TOP_WAIT_CLASS", "TOP_WAIT_PCT",
                     "TOP_QUERY", "TOP_QUERY_SAMPLES", "SHARD_SKEW",
                     "MEM_BYTES", "MEM_PEAK_BYTES"}));
}

TEST(TelemetrySchemaTest, Collections) {
  // REASON (ISSUE 10) sits beside HEALTH rather than at the end: the two
  // are read together, and the relation predates any positional consumer
  // of the columns behind it.
  EXPECT_EQ(SchemaOf(collection::CollectionsScan()),
            (Columns{"NAME", "HEALTH", "REASON", "DOC_COUNT", "INDEX_PATHS",
                     "IMC_STATE", "LAST_REBUILD_TS", "SHARDS",
                     "SHARDS_HEALTHY"}));
}

TEST(TelemetrySchemaTest, PathStats) {
  EXPECT_EQ(SchemaOf(collection::PathStatsScan()),
            (Columns{"COLLECTION", "SHARD", "PATH", "DOCS_SEEN",
                     "DOC_FREQUENCY", "VALUE_COUNT", "NULL_COUNT", "NDV",
                     "MIN", "MAX", "HIST_TOTAL", "HIST_LO", "HIST_HI"}));
}

TEST(TelemetrySchemaTest, OperatorCosts) {
  EXPECT_EQ(SchemaOf(stats::OperatorCostsScan()),
            (Columns{"OPERATOR", "US_PER_ROW", "SEED_US_PER_ROW", "SAMPLES",
                     "ROWS_OBSERVED", "LAST_US_PER_ROW"}));
}

TEST(TelemetrySchemaTest, Log) {
  EXPECT_EQ(SchemaOf(telemetry::LogScan()),
            (Columns{"TS_US", "THREAD", "LEVEL", "COMPONENT", "EVENT_ID",
                     "MESSAGE", "ARGS"}));
}

TEST(TelemetrySchemaTest, Incidents) {
  EXPECT_EQ(SchemaOf(telemetry::IncidentsScan()),
            (Columns{"ID", "TS_US", "TYPE", "SUBJECT", "REASON", "BUNDLE_PATH",
                     "LOG_RECORDS"}));
}

TEST(TelemetrySchemaTest, Wal) {
  EXPECT_EQ(SchemaOf(collection::WalScan()),
            (Columns{"NAME", "POLICY", "SEGMENTS", "LAST_LSN", "DURABLE_LSN",
                     "APPENDS", "APPEND_BYTES", "FSYNCS", "CHECKPOINTS",
                     "ABORTS", "RECOVERED_RECORDS", "TORN_TAIL"}));
}

// The relation names themselves are part of the contract.
TEST(TelemetrySchemaTest, RelationNames) {
  EXPECT_STREQ(telemetry::kMetricsTableName, "TELEMETRY$METRICS");
  EXPECT_STREQ(telemetry::kEventsTableName, "TELEMETRY$EVENTS");
  EXPECT_STREQ(telemetry::kSlowQueriesTableName, "TELEMETRY$SLOW_QUERIES");
  EXPECT_STREQ(telemetry::kQueryMonitorTableName, "TELEMETRY$QUERY_MONITOR");
  EXPECT_STREQ(telemetry::kMemoryTableName, "TELEMETRY$MEMORY");
  EXPECT_STREQ(telemetry::kAshTableName, "TELEMETRY$ASH");
  EXPECT_STREQ(telemetry::kSnapshotsTableName, "TELEMETRY$SNAPSHOTS");
  EXPECT_STREQ(collection::kCollectionsTableName, "TELEMETRY$COLLECTIONS");
  EXPECT_STREQ(collection::kPathStatsTableName, "TELEMETRY$PATH_STATS");
  EXPECT_STREQ(stats::kOperatorCostsTableName, "TELEMETRY$OPERATOR_COSTS");
  EXPECT_STREQ(collection::kWalTableName, "TELEMETRY$WAL");
  EXPECT_STREQ(telemetry::kLogTableName, "TELEMETRY$LOG");
  EXPECT_STREQ(telemetry::kIncidentsTableName, "TELEMETRY$INCIDENTS");
}

}  // namespace
}  // namespace fsdm
