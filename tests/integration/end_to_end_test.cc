// Cross-module integration tests: the full "write without schema, read
// with schema" pipeline — table + IS JSON + search index + DataGuide +
// generated views + all three storages + the in-memory store — exercised
// together on one collection.

#include <gtest/gtest.h>

#include <algorithm>

#include "collection/collection.h"
#include "dataguide/views.h"
#include "imc/column_store.h"
#include "index/search_index.h"
#include "rdbms/executor.h"
#include "sqljson/json_table.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

using rdbms::Col;
using rdbms::Row;
using sqljson::JsonStorage;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The collection facade wires the whole stack: backing table with
    // IS JSON, hidden OSON virtual column, search index + DataGuide.
    coll_ = collection::JsonCollection::Create(&db_, "PO").MoveValue();
    table_ = coll_->table();
    index_ = coll_->search_index();

    Rng rng(4242);
    for (int64_t i = 1; i <= 60; ++i) {
      ASSERT_TRUE(
          coll_->Insert(Value::Int64(i), workloads::PurchaseOrder(&rng, i))
              .ok());
    }
  }

  rdbms::Database db_;
  std::unique_ptr<collection::JsonCollection> coll_;
  rdbms::Table* table_ = nullptr;
  const index::JsonSearchIndex* index_ = nullptr;
};

TEST_F(EndToEndTest, DataGuideIsMaintainedOnDml) {
  EXPECT_EQ(index_->indexed_document_count(), 60u);
  // Homogeneous generator: exactly one $DG write.
  EXPECT_EQ(index_->dg_write_count(), 1u);
  EXPECT_NE(index_->dataguide().Find("$.purchaseOrder.items.partno",
                                     json::NodeKind::kScalar, true),
            nullptr);
  EXPECT_EQ(index_->dg_table()->row_count(),
            index_->dataguide().distinct_path_count());
}

TEST_F(EndToEndTest, DmdvOverAllStoragesAgrees) {
  // Generate a view from the persistent DataGuide, run it over text; then
  // recreate over OSON by re-pointing storage; row multisets must match.
  auto text_view =
      dataguide::CreateViewOnPath(table_, "JDOC", JsonStorage::kText,
                                  index_->dataguide(), "$", "V")
          .MoveValue();
  auto text_rows =
      rdbms::CollectStrings(text_view.MakePlan().MoveValue().get())
          .MoveValue();

  // OSON variant: same definition over the hidden OSON column.
  dataguide::DmdvView oson_view = text_view;
  oson_view.json_column = coll_->oson_column();
  oson_view.storage = JsonStorage::kOson;
  auto scan = coll_->Scan(/*include_hidden=*/true);
  auto jt = sqljson::JsonTable(std::move(scan), coll_->oson_column(),
                               JsonStorage::kOson, oson_view.def)
                .MoveValue();
  std::vector<std::pair<std::string, rdbms::ExprPtr>> exprs;
  for (const std::string& c : oson_view.OutputColumns()) {
    exprs.emplace_back(c, Col(c));
  }
  auto plan = rdbms::Project(std::move(jt), std::move(exprs));
  auto oson_rows = rdbms::CollectStrings(plan.get()).MoveValue();

  ASSERT_EQ(text_rows.size(), oson_rows.size());
  std::sort(text_rows.begin(), text_rows.end());
  std::sort(oson_rows.begin(), oson_rows.end());
  EXPECT_EQ(text_rows, oson_rows);
}

TEST_F(EndToEndTest, SearchIndexAgreesWithJsonExistsScan) {
  // Pushed-down JSON_EXISTS over the scan must select exactly the rows the
  // inverted index reports (index row ids == DID - 1 here).
  auto exists = sqljson::JsonExists("JDOC", "$.purchaseOrder.items",
                                    JsonStorage::kText)
                    .MoveValue();
  auto plan = rdbms::Project(rdbms::Filter(rdbms::Scan(table_), exists),
                             {{"DID", Col("DID")}});
  auto rows = rdbms::Collect(plan.get()).MoveValue();
  std::vector<size_t> via_scan;
  for (const Row& r : rows) {
    via_scan.push_back(static_cast<size_t>(r[0].AsInt64() - 1));
  }
  EXPECT_EQ(via_scan, index_->DocsWithPath("$.purchaseOrder.items"));
}

TEST_F(EndToEndTest, ValueIndexAgreesWithPredicateScan) {
  // Pick a real costcenter value and cross-check both access paths.
  auto jv = sqljson::JsonValue("JDOC", "$.purchaseOrder.costcenter",
                               JsonStorage::kText)
                .MoveValue();
  auto plan = rdbms::Project(
      rdbms::Filter(rdbms::Scan(table_),
                    rdbms::Eq(jv, rdbms::Lit(Value::String("CC7")))),
      {{"DID", Col("DID")}});
  auto rows = rdbms::Collect(plan.get()).MoveValue();
  std::vector<size_t> via_scan;
  for (const Row& r : rows) {
    via_scan.push_back(static_cast<size_t>(r[0].AsInt64() - 1));
  }
  EXPECT_EQ(via_scan, index_->DocsWithValue("$.purchaseOrder.costcenter",
                                            Value::String("CC7")));
}

TEST_F(EndToEndTest, ImcMatchesRowEngineOnSameQuery) {
  // AddVC from the DataGuide, load into IMC, compare columnar vs row scan.
  auto added = dataguide::AddVc(table_, "JDOC", JsonStorage::kText,
                                index_->dataguide());
  ASSERT_TRUE(added.ok());
  imc::ColumnStore store =
      imc::ColumnStore::Populate(*table_, {"DID", "JDOC$id"}).MoveValue();

  auto imc_rows = store.FilterScan(
      {{"JDOC$id", rdbms::CompareOp::kGt, Value::Int64(50)}}, {"DID"});
  ASSERT_TRUE(imc_rows.ok());

  auto row_plan = rdbms::Project(
      rdbms::Filter(rdbms::Scan(table_),
                    rdbms::Gt(Col("JDOC$id"), rdbms::Lit(Value::Int64(50)))),
      {{"DID", Col("DID")}});
  auto row_rows = rdbms::Collect(row_plan.get()).MoveValue();
  ASSERT_EQ(imc_rows.value().size(), row_rows.size());
  for (size_t i = 0; i < row_rows.size(); ++i) {
    EXPECT_EQ(imc_rows.value()[i][0].AsInt64(), row_rows[i][0].AsInt64());
  }
}

TEST_F(EndToEndTest, TransientAggMatchesPersistentGuide) {
  // JSON_DataGuideAgg over the full collection must find exactly the
  // persistent DataGuide's paths (it saw the same documents).
  std::vector<dataguide::DataGuide> guides;
  auto plan = rdbms::GroupBy(
      rdbms::Scan(table_), {}, {},
      {dataguide::JsonDataGuideAggInto(Col("JDOC"), "dg", &guides)});
  ASSERT_TRUE(rdbms::Collect(plan.get()).ok());
  ASSERT_EQ(guides.size(), 1u);
  EXPECT_EQ(guides[0].distinct_path_count(),
            index_->dataguide().distinct_path_count());
  EXPECT_EQ(guides[0].ToFlatJson(), index_->GetDataGuide(false));
}

TEST_F(EndToEndTest, DeleteKeepsEverythingConsistent) {
  ASSERT_TRUE(coll_->Delete(0).ok());
  ASSERT_TRUE(coll_->Delete(30).ok());
  // Scans skip deleted rows.
  auto plan = rdbms::GroupBy(
      rdbms::Scan(table_), {}, {},
      {{rdbms::AggSpec::Kind::kCountStar, nullptr, "CNT"}});
  auto rows = rdbms::Collect(plan.get()).MoveValue();
  EXPECT_EQ(rows[0][0].AsInt64(), 58);
  // Index postings no longer contain the rows.
  auto docs = index_->DocsWithPath("$.purchaseOrder.items");
  EXPECT_EQ(docs.size(), 58u);
  EXPECT_TRUE(std::find(docs.begin(), docs.end(), 0u) == docs.end());
  // IMC populated after the delete skips them too.
  imc::ColumnStore store =
      imc::ColumnStore::Populate(*table_, {"DID"}).MoveValue();
  EXPECT_EQ(store.row_count(), 58u);
}

TEST_F(EndToEndTest, Q7RevenueIdenticalAcrossStorages) {
  // A full OLAP aggregate (sum of quantity*unitprice by costcenter) must
  // produce byte-identical results over text and OSON storages — exact
  // Decimal arithmetic everywhere.
  auto run = [&](const std::string& column, JsonStorage storage) {
    sqljson::JsonTableDef def;
    def.columns = {{"CC", "$.purchaseOrder.costcenter",
                    sqljson::Returning::kString}};
    sqljson::JsonTableDef items;
    items.row_path = "$.purchaseOrder.items[*]";
    items.columns = {{"Q", "$.quantity", sqljson::Returning::kNumber},
                     {"P", "$.unitprice", sqljson::Returning::kNumber}};
    def.nested.push_back(std::move(items));
    auto jt = sqljson::JsonTable(rdbms::Scan(table_, true), column, storage,
                                 def)
                  .MoveValue();
    auto agg = rdbms::Sort(
        rdbms::GroupBy(std::move(jt), {Col("CC")}, {"CC"},
                       {{rdbms::AggSpec::Kind::kSum,
                         rdbms::Mul(Col("Q"), Col("P")), "REV"}}),
        {{Col("CC"), true}});
    return rdbms::CollectStrings(agg.get()).MoveValue();
  };
  EXPECT_EQ(run("JDOC", JsonStorage::kText),
            run(coll_->oson_column(), JsonStorage::kOson));
}

}  // namespace
}  // namespace fsdm
