#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "common/rng.h"
#include "json/serializer.h"
#include "oson/oson.h"
#include "rdbms/executor.h"

namespace fsdm {
namespace {

namespace fs = std::filesystem;

using collection::CollectionOptions;
using collection::JsonCollection;

/// Kill-and-recover chaos harness (ISSUE 8's headline test): fork a child
/// that runs a seeded DML storm against a durable collection with
/// FSDM_WAL_FSYNC=always, reporting every operation over a pipe — one "B"
/// line before it starts, one "A" line after the engine acknowledged it.
/// The parent SIGKILLs the child at a random point, reopens the WAL
/// directory in-process, and asserts the recovered collection equals the
/// acknowledged state exactly — plus at most the single in-flight
/// operation (begun, never acknowledged: durability of an un-acked op is
/// the allowed direction of the crash ambiguity; losing an acked one is
/// the bug this harness exists to catch).
///
/// Seeds are fixed; the CI matrix pins one per job via FSDM_CHAOS_SEED.
/// On failure the evidence — protocol tail, expected/actual diff, the
/// WAL's RecoveryInfo — is dumped to crash_chaos_report_seed<N>.txt for
/// artifact upload.
///
/// Fork-safety: the harness never routes queries or populates IMC state
/// in the parent before forking (no worker-pool threads), and the ASH
/// sampler is pinned off for the whole binary below.

const bool kAshOff = [] {
  ::setenv("FSDM_ASH_HZ", "0", 1);
  return true;
}();

std::string Canon(const std::string& text) {
  auto img = oson::EncodeFromText(text);
  if (!img.ok()) return "<encode-error>";
  auto node = oson::Decode(img.value());
  if (!node.ok()) return "<decode-error>";
  return json::Serialize(*node.value());
}

std::map<std::string, std::string> Contents(const JsonCollection& coll) {
  std::map<std::string, std::string> out;
  auto rows = rdbms::Collect(coll.Scan().get());
  EXPECT_TRUE(rows.ok()) << rows.status().message();
  if (rows.ok()) {
    for (const rdbms::Row& row : rows.value()) {
      out[row[0].ToDisplayString()] = Canon(row[1].AsString());
    }
  }
  return out;
}

std::string MapToString(const std::map<std::string, std::string>& m) {
  std::string out;
  for (const auto& [k, v] : m) out += "  " + k + " -> " + v + "\n";
  return out.empty() ? "  (empty)\n" : out;
}

/// The child's side: a storm of ops, each framed by B/A protocol lines
/// written unbuffered straight to the pipe. Never returns.
[[noreturn]] void RunStormChild(uint64_t seed, const std::string& wal_dir,
                                size_t shards, int pipe_fd) {
  CollectionOptions options;
  options.wal_dir = wal_dir;
  options.wal_fsync = wal::FsyncPolicy::kAlways;  // ack == durable
  options.shard_count = shards;
  rdbms::Database db;
  auto coll_r = JsonCollection::Create(&db, "STORM", options);
  if (!coll_r.ok()) _exit(2);
  JsonCollection* coll = coll_r.value().get();

  Rng rng(seed);
  int64_t next_key = 1;
  std::map<int64_t, size_t> live;  // key -> row id
  for (int op = 0; op < 400; ++op) {
    const double roll = rng.NextDouble();
    if (roll < 0.6 || live.size() < 5) {
      const int64_t key = next_key++;
      const std::string doc = "{\"k\":" + std::to_string(key) +
                              ",\"pad\":\"" + rng.AlphaNum(rng.Uniform(24)) +
                              "\"}";
      dprintf(pipe_fd, "B I %lld %s\n", static_cast<long long>(key),
              doc.c_str());
      auto row = coll->Insert(Value::Int64(key), doc);
      if (!row.ok()) _exit(3);
      live[key] = row.value();
      dprintf(pipe_fd, "A I %lld\n", static_cast<long long>(key));
    } else if (roll < 0.8) {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      dprintf(pipe_fd, "B D %lld\n", static_cast<long long>(it->first));
      if (!coll->Delete(it->second).ok()) _exit(4);
      dprintf(pipe_fd, "A D %lld\n", static_cast<long long>(it->first));
      live.erase(it);
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      const std::string doc = "{\"k\":" + std::to_string(it->first) +
                              ",\"v\":\"" + rng.AlphaNum(rng.Uniform(24)) +
                              "\"}";
      dprintf(pipe_fd, "B R %lld %s\n", static_cast<long long>(it->first),
              doc.c_str());
      if (!coll->Replace(it->second, Value::Int64(it->first), doc).ok()) {
        _exit(5);
      }
      dprintf(pipe_fd, "A R %lld\n", static_cast<long long>(it->first));
    }
  }
  dprintf(pipe_fd, "DONE\n");
  _exit(0);
}

struct ProtocolState {
  /// Acknowledged state: key -> canonical document.
  std::map<std::string, std::string> acked;
  /// The one begun-but-unacked op, applied to a copy of `acked`.
  bool has_inflight = false;
  std::map<std::string, std::string> with_inflight;
  std::vector<std::string> tail;  // last lines, for the failure report
};

/// Replays the B/A protocol into the model. Every "A" commits the
/// preceding "B"; a trailing "B" without its "A" becomes the in-flight op.
ProtocolState ParseProtocol(const std::vector<std::string>& lines) {
  ProtocolState st;
  std::string pending;  // the "B" line awaiting its "A"
  for (const std::string& line : lines) {
    if (line == "DONE") continue;
    if (line.empty()) continue;
    if (line[0] == 'B') {
      pending = line;
      continue;
    }
    if (line[0] != 'A' || pending.empty()) continue;
    // Commit the pending op.
    std::istringstream in(pending);
    std::string tag, kind, key;
    in >> tag >> kind >> key;
    if (kind == "D") {
      st.acked.erase(key);
    } else {
      std::string doc;
      std::getline(in, doc);
      if (!doc.empty() && doc[0] == ' ') doc.erase(0, 1);
      st.acked[key] = Canon(doc);
    }
    pending.clear();
  }
  st.with_inflight = st.acked;
  if (!pending.empty()) {
    st.has_inflight = true;
    std::istringstream in(pending);
    std::string tag, kind, key;
    in >> tag >> kind >> key;
    if (kind == "D") {
      st.with_inflight.erase(key);
    } else {
      std::string doc;
      std::getline(in, doc);
      if (!doc.empty() && doc[0] == ' ') doc.erase(0, 1);
      st.with_inflight[key] = Canon(doc);
    }
  }
  const size_t keep = lines.size() < 12 ? 0 : lines.size() - 12;
  for (size_t i = keep; i < lines.size(); ++i) st.tail.push_back(lines[i]);
  if (!pending.empty()) st.tail.push_back("(in-flight) " + pending);
  return st;
}

void RunKillAndRecover(uint64_t seed) {
  SCOPED_TRACE("crash-chaos seed " + std::to_string(seed));
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("fsdm_crash_chaos_" + std::to_string(seed));
  fs::remove_all(dir);
  const size_t shards = 1 + seed % 4;  // vary the stack shape per seed

  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(fds[0]);
    RunStormChild(seed, dir.string(), shards, fds[1]);
  }
  close(fds[1]);

  // Read protocol lines until the kill point — a seed-derived number of
  // lines into the storm — then SIGKILL mid-flight and drain what the
  // child managed to write before dying.
  Rng rng(seed ^ 0xdeadbeefULL);
  const size_t kill_after = 20 + rng.Uniform(600);
  std::vector<std::string> lines;
  std::string buf, chunk(4096, '\0');
  bool killed = false;
  auto split = [&]() {
    size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      lines.push_back(buf.substr(0, nl));
      buf.erase(0, nl + 1);
    }
  };
  while (true) {
    const ssize_t n = read(fds[0], chunk.data(), chunk.size());
    if (n <= 0) break;  // EOF: the child died (or finished and exited)
    buf.append(chunk.data(), static_cast<size_t>(n));
    split();
    if (!killed && lines.size() >= kill_after) {
      kill(child, SIGKILL);
      killed = true;
    }
  }
  close(fds[0]);
  int wstatus = 0;
  waitpid(child, &wstatus, 0);
  if (!killed) {
    // The storm finished before the kill point; the "crash" is then a
    // SIGKILL-equivalent exit after the last ack. Still a valid case.
    ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child failed with status " << wstatus;
  }

  ProtocolState st = ParseProtocol(lines);

  // Recover in-process.
  CollectionOptions options;
  options.wal_dir = dir.string();
  options.wal_fsync = wal::FsyncPolicy::kOff;  // verification only
  options.shard_count = shards;
  rdbms::Database db;
  auto coll_r = JsonCollection::Create(&db, "RECOVERED", options);
  ASSERT_TRUE(coll_r.ok()) << coll_r.status().message();
  JsonCollection* coll = coll_r.value().get();

  const std::map<std::string, std::string> recovered = Contents(*coll);
  const bool matches_acked = recovered == st.acked;
  const bool matches_inflight =
      st.has_inflight && recovered == st.with_inflight;
  collection::ConsistencyReport report = coll->CheckConsistency();

  if (!(matches_acked || matches_inflight) || !report.consistent) {
    // Dump the evidence for the CI artifact before failing.
    const std::string path =
        "crash_chaos_report_seed" + std::to_string(seed) + ".txt";
    std::ofstream out(path);
    out << "crash-chaos seed " << seed << " shards " << shards << "\n"
        << "protocol lines: " << lines.size() << " (killed: " << killed
        << ", kill_after: " << kill_after << ")\n\nprotocol tail:\n";
    for (const std::string& l : st.tail) out << "  " << l << "\n";
    out << "\nacked state (" << st.acked.size() << " docs):\n"
        << MapToString(st.acked);
    if (st.has_inflight) {
      out << "\nacked + in-flight (" << st.with_inflight.size()
          << " docs):\n"
          << MapToString(st.with_inflight);
    }
    out << "\nrecovered state (" << recovered.size() << " docs):\n"
        << MapToString(recovered) << "\nconsistency:\n"
        << report.ToString() << "\nrecovery info:\n"
        << coll->wal()->recovery().ToString();
    FAIL() << "recovered state diverges from acknowledged state "
           << "(report written to " << path << ")";
  }
  EXPECT_TRUE(report.consistent) << report.ToString();
  fs::remove_all(dir);
}

TEST(CrashChaosTest, KilledStormRecoversEveryAcknowledgedOp) {
#if defined(__SANITIZE_THREAD__)
  GTEST_SKIP() << "fork-heavy harness is not TSan-compatible";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  GTEST_SKIP() << "fork-heavy harness is not TSan-compatible";
#endif
#endif
  if (const char* env = std::getenv("FSDM_CHAOS_SEED")) {
    RunKillAndRecover(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RunKillAndRecover(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace fsdm
