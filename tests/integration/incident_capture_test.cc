#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "fault/fault.h"
#include "rdbms/executor.h"
#include "sql/parser.h"
#include "telemetry/incident.h"
#include "telemetry/log.h"
#include "telemetry/telemetry.h"

/// ISSUE 10 acceptance: kill a collection's WAL with an injected fsync
/// failure and diagnose it THROUGH SQL ALONE — the TELEMETRY$INCIDENTS
/// rows name the poisoning and the quarantine, TELEMETRY$COLLECTIONS'
/// REASON column carries the errno text, TELEMETRY$LOG holds the error
/// records — then verify the on-disk bundle is self-contained (all five
/// pillar sections, the errno and the quarantine reason in its log slice).

namespace fsdm {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool AnyContains(const std::vector<std::string>& rows,
                 const std::string& needle) {
  for (const std::string& row : rows) {
    if (row.find(needle) != std::string::npos) return true;
  }
  return false;
}

class IncidentCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
    wal_dir_ = fs::path(::testing::TempDir()) / "fsdm_incident_wal";
    incident_dir_ = fs::path(::testing::TempDir()) / "fsdm_incident_bundles";
    fs::remove_all(wal_dir_);
    fs::remove_all(incident_dir_);
    fault::FaultRegistry::Global().DisarmAll();
    telemetry::EngineLog::Global().Reset();
    telemetry::EngineLog::Global().SetLevel(telemetry::LogLevel::kDebug);
    telemetry::IncidentManager& mgr = telemetry::IncidentManager::Global();
    mgr.Reset();
    mgr.SetDirectory(incident_dir_.string());
    mgr.SetFloodIntervalUs(0);
    mgr.SetDedupWindowUs(0);
  }

  void TearDown() override {
    if (telemetry::kEnabled) {
      telemetry::IncidentManager& mgr = telemetry::IncidentManager::Global();
      mgr.Reset();
      mgr.SetDirectory("");
      mgr.SetFloodIntervalUs(100 * 1000);
      mgr.SetDedupWindowUs(5 * 1000 * 1000);
      telemetry::EngineLog::Global().Reset();
      telemetry::EngineLog::Global().SetLevel(telemetry::LogLevelFromEnv());
    }
    fault::FaultRegistry::Global().DisarmAll();
    fs::remove_all(wal_dir_);
    fs::remove_all(incident_dir_);
  }

  std::vector<std::string> Q(const std::string& sql) {
    sql::SqlSession session(&db_);
    auto r = session.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
    return r.ok() ? r.MoveValue() : std::vector<std::string>{};
  }

  rdbms::Database db_;
  fs::path wal_dir_;
  fs::path incident_dir_;
};

TEST_F(IncidentCaptureTest, FsyncFailureDiagnosableThroughSqlAlone) {
  collection::CollectionOptions options;
  options.wal_dir = wal_dir_.string();
  options.wal_fsync = wal::FsyncPolicy::kAlways;
  auto coll =
      collection::JsonCollection::Create(&db_, "ORDERS", options).MoveValue();
  ASSERT_TRUE(coll->Insert("{\"n\":1}").ok());

  // Kill the WAL: the next append's fsync fails with EIO. The writer must
  // poison itself (fsyncgate — the kernel may have dropped the dirty
  // pages) and the collection must quarantine.
  {
    fault::ScopedFault guard("wal.fsync",
                             fault::FaultSpec::Errno(EIO));
    auto failed = coll->Insert("{\"n\":2}");
    ASSERT_FALSE(failed.ok());
    EXPECT_NE(failed.status().message().find("Input/output error"),
              std::string::npos)
        << failed.status().message();
  }
  EXPECT_EQ(coll->health(), collection::CollectionHealth::kQuarantined);
  EXPECT_FALSE(coll->Insert("{\"n\":3}").ok()) << "quarantine must hold";

  // --- Diagnosis through SQL alone -----------------------------------

  // 1. TELEMETRY$INCIDENTS: the poisoning and the quarantine, in order,
  //    with the errno text in their reasons.
  std::vector<std::string> incidents =
      Q("SELECT ID, TYPE, SUBJECT, REASON, BUNDLE_PATH "
        "FROM TELEMETRY$INCIDENTS");
  ASSERT_GE(incidents.size(), 2u);
  EXPECT_TRUE(AnyContains(incidents, "wal-poisoned"));
  EXPECT_TRUE(AnyContains(incidents, "quarantine"));
  EXPECT_TRUE(AnyContains(incidents, "ORDERS"));
  EXPECT_TRUE(AnyContains(incidents, "Input/output error"));

  // 2. TELEMETRY$COLLECTIONS.REASON names the cause next to HEALTH.
  std::vector<std::string> health =
      Q("SELECT NAME, HEALTH, REASON FROM TELEMETRY$COLLECTIONS "
        "WHERE NAME = 'ORDERS'");
  ASSERT_EQ(health.size(), 1u);
  EXPECT_NE(health[0].find("quarantined"), std::string::npos);
  EXPECT_NE(health[0].find("Input/output error"), std::string::npos);

  // 3. TELEMETRY$LOG holds the structured error trail: the WAL fsync
  //    failure (2005), the poisoning (2008), the collection-level append
  //    failure (1010) and the quarantine (1005).
  std::vector<std::string> log =
      Q("SELECT EVENT_ID, COMPONENT, MESSAGE FROM TELEMETRY$LOG "
        "WHERE LEVEL = 'error'");
  EXPECT_TRUE(AnyContains(log, "2005"));
  EXPECT_TRUE(AnyContains(log, "2008"));
  EXPECT_TRUE(AnyContains(log, "1010"));
  EXPECT_TRUE(AnyContains(log, "1005"));
  EXPECT_TRUE(AnyContains(log, "Input/output error"));

  // --- The bundle is a self-contained diagnosis ----------------------
  std::string bundle_path;
  for (const telemetry::Incident& inc :
       telemetry::IncidentManager::Global().Snapshot()) {
    if (inc.type == "quarantine") bundle_path = inc.bundle_path;
  }
  ASSERT_FALSE(bundle_path.empty());
  ASSERT_TRUE(fs::exists(bundle_path));
  const std::string bundle = ReadFile(bundle_path);
  for (const char* section :
       {"\"incident\"", "\"log\"", "\"trace\"", "\"ash\"", "\"metrics\"",
        "\"engine_state\""}) {
    EXPECT_NE(bundle.find(section), std::string::npos) << section;
  }
  // The log slice names the errno; the header names the quarantine
  // reason; the engine_state carries the collection and WAL providers.
  EXPECT_NE(bundle.find("Input/output error"), std::string::npos);
  EXPECT_NE(bundle.find("\"type\":\"quarantine\""), std::string::npos);
  EXPECT_NE(bundle.find("WAL poisoned"), std::string::npos);
  EXPECT_NE(bundle.find("\"collections\":"), std::string::npos);
  EXPECT_NE(bundle.find("\"wal\":"), std::string::npos);
  EXPECT_NE(bundle.find("\"poisoned\":true"), std::string::npos);
}

// Healing: RebuildIndex cannot lift a WAL quarantine usefully (the writer
// stays poisoned), but a reopen recovers the durable prefix — and REASON
// keeps explaining what happened even after the collection heals.
TEST_F(IncidentCaptureTest, ReasonSurvivesHealing) {
  collection::CollectionOptions options;
  options.wal_dir = wal_dir_.string();
  options.wal_fsync = wal::FsyncPolicy::kAlways;
  {
    auto coll =
        collection::JsonCollection::Create(&db_, "HEAL", options).MoveValue();
    ASSERT_TRUE(coll->Insert("{\"n\":1}").ok());
    fault::ScopedFault guard("wal.fsync", fault::FaultSpec::Errno(ENOSPC));
    ASSERT_FALSE(coll->Insert("{\"n\":2}").ok());
    EXPECT_EQ(coll->health(), collection::CollectionHealth::kQuarantined);
    coll->Detach();
    ASSERT_TRUE(db_.DropTable("HEAL").ok());
  }
  // Reopen: replay recovers insert 1 (the failed append was compensated),
  // the fresh writer is healthy.
  auto reopened =
      collection::JsonCollection::Create(&db_, "HEAL", options).MoveValue();
  EXPECT_EQ(reopened->health(), collection::CollectionHealth::kHealthy);
  EXPECT_EQ(reopened->document_count(), 1u);
  ASSERT_TRUE(reopened->Insert("{\"n\":3}").ok());
}

}  // namespace
}  // namespace fsdm
