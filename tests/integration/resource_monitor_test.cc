#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "collection/collection.h"
#include "collection/router.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "rdbms/executor.h"
#include "sql/parser.h"
#include "telemetry/memory_tracker.h"
#include "telemetry/query_monitor.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"
#include "workloads/generators.h"

/// ISSUE 9 acceptance tests: (a) a latency-fault-stalled drain is visible
/// to a concurrent session through TELEMETRY$QUERY_MONITOR with advancing
/// row counts, disappears from the monitor at close, and lands in
/// TELEMETRY$SLOW_QUERIES with a nonzero memory peak; (b) the memory
/// tracker's grand total reconciles with a direct recompute walk over the
/// collection's structures to within 1% for a seeded NOBENCH load.

namespace fsdm {
namespace {

class ResourceMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kEnabled) {
      GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    }
    telemetry::SlowQueryLog::Global().Clear();
    telemetry::MemoryTracker::Global().ResetCharges();
  }
  void TearDown() override {
    if (telemetry::kEnabled) {
      telemetry::SlowQueryLog::Global().Clear();
      telemetry::SlowQueryLog::Global().SetThresholdUs(10000);
    }
  }

  std::vector<std::string> Q(const std::string& sql) {
    sql::SqlSession session(&db_);
    auto r = session.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
    return r.ok() ? r.MoveValue() : std::vector<std::string>{};
  }

  rdbms::Database db_;
};

TEST_F(ResourceMonitorTest, StalledDrainVisibleInMonitorThenInSlowLog) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";

  auto coll = collection::JsonCollection::Create(&db_, "RMON").MoveValue();
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(coll->Insert("{\"num\":" + std::to_string(i) + "}").ok());
  }
  telemetry::SlowQueryLog::Global().SetThresholdUs(0);

  auto routed = collection::RoutePredicates(
                    *coll, {collection::PathPredicate::Compare(
                               "$.num", rdbms::CompareOp::kGt,
                               Value::Int64(-1))})
                    .MoveValue();

  // Hold every probe Next() for 300us: the ~600-row drain stays in flight
  // for ~200ms, long enough for this thread to watch it through SQL.
  // TELEMETRY$ scans do not pass through RoutedQueryProbe, so the polling
  // queries below are unaffected by the armed fault.
  fault::ScopedFault stall("router.drain.next",
                           fault::FaultSpec::StallUs(300));
  std::atomic<bool> drain_ok{false};
  std::thread drainer([&routed, &drain_ok]() {
    auto rows = rdbms::Collect(routed.plan.get());
    drain_ok.store(rows.ok() && rows.value().size() == 600,
                   std::memory_order_relaxed);
  });

  // Poll the monitor: the summary row (OPERATOR IS NULL) must appear with
  // monotonically advancing ROWS_OUT.
  std::vector<uint64_t> progress;
  uint64_t query_id = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::vector<std::string> rows =
        Q("SELECT QUERY_ID, ROWS_OUT FROM TELEMETRY$QUERY_MONITOR "
          "WHERE COLLECTION = 'RMON' AND OPERATOR IS NULL");
    if (!rows.empty()) {
      const size_t sep = rows[0].find('|');
      ASSERT_NE(sep, std::string::npos) << rows[0];
      query_id = std::stoull(rows[0].substr(0, sep));
      const uint64_t rows_out = std::stoull(rows[0].substr(sep + 1));
      if (rows_out > 0 &&
          (progress.empty() || rows_out != progress.back())) {
        progress.push_back(rows_out);
      }
      if (progress.size() >= 3) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  drainer.join();

  EXPECT_TRUE(drain_ok.load(std::memory_order_relaxed));
  EXPECT_NE(query_id, 0u);
  ASSERT_GE(progress.size(), 3u) << "never caught the drain in flight";
  for (size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GT(progress[i], progress[i - 1]);
  }

  // Closed: gone from the monitor...
  EXPECT_TRUE(Q("SELECT QUERY_ID FROM TELEMETRY$QUERY_MONITOR "
                "WHERE COLLECTION = 'RMON'")
                  .empty());

  // ...and present in the slow-query log, cross-linked by query id, with
  // the memory peak the probe sampled during the drain (the resident table
  // heap guarantees it is nonzero).
  std::vector<telemetry::SlowQueryRecord> snap =
      telemetry::SlowQueryLog::Global().Snapshot();
  const telemetry::SlowQueryRecord* rec = nullptr;
  for (const telemetry::SlowQueryRecord& r : snap) {
    if (r.query_id == query_id) rec = &r;
  }
  ASSERT_NE(rec, nullptr) << "slow log lost query " << query_id;
  EXPECT_EQ(rec->rows, 600u);
  EXPECT_GT(rec->peak_mem_bytes, 0u);

  // The SQL exposure carries both columns too.
  std::vector<std::string> sql_rows =
      Q("SELECT QUERY_ID, PEAK_MEM_BYTES FROM TELEMETRY$SLOW_QUERIES");
  bool found = false;
  for (const std::string& row : sql_rows) {
    const size_t sep = row.find('|');
    ASSERT_NE(sep, std::string::npos) << row;
    if (std::stoull(row.substr(0, sep)) != query_id) continue;
    found = true;
    EXPECT_GT(std::stoull(row.substr(sep + 1)), 0u);
  }
  EXPECT_TRUE(found);
}

TEST_F(ResourceMonitorTest, DroppedPlanLeavesMonitorBeforeSpansDie) {
  // Error-path lifetime regression: a plan Open()ed and then destroyed
  // WITHOUT Close() must leave the monitor via the probe's destructor, and
  // RoutedPlan's member order guarantees that unregister runs before the
  // trace (the span tree the monitor walks) is torn down — a snapshot
  // concurrent with the drop can never chase freed spans.
  auto coll = collection::JsonCollection::Create(&db_, "RDROP").MoveValue();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coll->Insert("{\"num\":" + std::to_string(i) + "}").ok());
  }
  telemetry::QueryMonitor& m = telemetry::QueryMonitor::Global();
  const size_t in_flight_before = m.InFlightCount();
  {
    auto routed = collection::RoutePredicates(
                      *coll, {collection::PathPredicate::Compare(
                                 "$.num", rdbms::CompareOp::kGt,
                                 Value::Int64(-1))})
                      .MoveValue();
    ASSERT_TRUE(routed.plan->Open().ok());
    EXPECT_EQ(m.InFlightCount(), in_flight_before + 1);
    rdbms::Row row;
    ASSERT_TRUE(routed.plan->Next(&row).ok());
    // Dropped here: no Close().
  }
  EXPECT_EQ(m.InFlightCount(), in_flight_before);
}

TEST_F(ResourceMonitorTest, TrackerReconcilesWithRecomputeWalkOnNobench) {
  collection::CollectionOptions opts;
  opts.shard_count = 2;  // exercises the facade reporters' shard summing
  auto coll =
      collection::JsonCollection::Create(&db_, "RMEM", opts).MoveValue();
  Rng rng(20160626);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(coll->Insert(workloads::Nobench(&rng, i)).ok());
  }

  // Direct recompute walk over every shard's structures, with the same
  // subsystem coverage the registered reporters have: table heap, index
  // postings, DataGuide (+ its $DG side table), path stats. No WAL, no
  // IMC, and no transient charges are live at rest.
  uint64_t expected = 0;
  for (size_t s = 0; s < coll->shard_count(); ++s) {
    const collection::JsonCollection* shard = coll->shard(s);
    ASSERT_NE(shard->table(), nullptr);
    ASSERT_NE(shard->search_index(), nullptr);
    expected += shard->table()->RecomputeHeapBytes();
    expected += shard->search_index()->RecomputeMemoryBytes();
    expected += shard->search_index()->dataguide().MemoryBytes();
    if (shard->search_index()->dg_table() != nullptr) {
      expected += shard->search_index()->dg_table()->RecomputeHeapBytes();
    }
    expected += shard->path_stats().MemoryBytes();
  }
  ASSERT_GT(expected, 0u);

  const uint64_t tracked = telemetry::MemoryTracker::Global().Refresh();
  const double drift =
      expected > tracked ? static_cast<double>(expected - tracked)
                         : static_cast<double>(tracked - expected);
  EXPECT_LE(drift, 0.01 * static_cast<double>(expected))
      << "tracked=" << tracked << " expected=" << expected;

  // The SQL exposure sees the same load: a nonzero table-heap row for the
  // collection, and the per-query monitor relation is empty at rest.
  std::vector<std::string> rows =
      Q("SELECT BYTES FROM TELEMETRY$MEMORY "
        "WHERE COLLECTION = 'RMEM' AND SUBSYSTEM = 'table-heap'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(std::stoull(rows[0]), 0u);
  EXPECT_TRUE(Q("SELECT QUERY_ID FROM TELEMETRY$QUERY_MONITOR").empty());
}

}  // namespace
}  // namespace fsdm
