#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "workloads/generators.h"

namespace fsdm {
namespace {

using collection::CollectionHealth;
using collection::JsonCollection;
using collection::PathPredicate;

/// Chaos suite (ISSUE 3): a seeded DML storm over NoBench documents with
/// random fault injection, asserting that after recovery (a) every side
/// structure passes CheckConsistency and (b) routed query results equal a
/// full document scan. Seeds are fixed; the CI matrix pins one seed per
/// job via FSDM_CHAOS_SEED. On an inconsistency the report is dumped to
/// chaos_report_seed<N>.txt (uploaded as a CI artifact).

std::vector<std::string> DrainKeys(rdbms::Operator* op) {
  Result<std::vector<rdbms::Row>> rows = rdbms::Collect(op);
  EXPECT_TRUE(rows.ok()) << rows.status().message();
  std::vector<std::string> keys;
  if (rows.ok()) {
    for (const rdbms::Row& row : rows.value()) {
      keys.push_back(row[0].ToDisplayString());
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void RunChaos(uint64_t seed) {
  SCOPED_TRACE("chaos seed " + std::to_string(seed));
  if (!fault::kEnabled) {
    GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  }
  fault::FaultRegistry::Global().DisarmAll();
  rdbms::Database db;
  auto coll_r = JsonCollection::Create(&db, "CHAOS_" + std::to_string(seed));
  ASSERT_TRUE(coll_r.ok()) << coll_r.status().message();
  std::unique_ptr<JsonCollection>& coll = coll_r.value();

  Rng rng(seed);
  Rng doc_rng(seed ^ 0x9e3779b97f4a7c15ull);
  int64_t next_doc = 0;
  auto make_doc = [&]() { return workloads::Nobench(&doc_rng, next_doc++); };

  // Seed corpus.
  std::vector<size_t> live;
  for (int i = 0; i < 120; ++i) {
    Result<size_t> row = coll->Insert(make_doc());
    ASSERT_TRUE(row.ok()) << row.status().message();
    live.push_back(row.value());
  }

  constexpr const char* kPoints[] = {
      "table.insert.apply",         "table.delete.apply",
      "table.replace.apply",        "index.insert.postings",
      "index.insert.dataguide",     "index.remove.postings",
      "index.replace.stage",        "collection.observer.insert",
      "collection.observer.delete", "collection.observer.replace"};

  // The storm: 200 random DML ops; ~20% run with a random single fault
  // armed, ~7% with a primary fault plus a failing compensation (the pair
  // that degrades the index).
  size_t failed_ops = 0;
  for (int op = 0; op < 200; ++op) {
    fault::FaultRegistry::Global().DisarmAll();
    double roll = rng.NextDouble();
    if (roll < 0.20) {
      fault::FaultRegistry::Global().Arm(
          kPoints[rng.Uniform(std::size(kPoints))], fault::FaultSpec::Once());
    } else if (roll < 0.27) {
      fault::FaultRegistry::Global().Arm("index.insert.dataguide",
                                         fault::FaultSpec::Once());
      fault::FaultRegistry::Global().Arm("index.undo.postings",
                                         fault::FaultSpec::Once());
    }
    Status st;
    switch (rng.Uniform(3)) {
      case 0: {
        Result<size_t> row = coll->Insert(make_doc());
        st = row.status();
        if (row.ok()) live.push_back(row.value());
        break;
      }
      case 1: {
        if (live.empty()) break;
        size_t pick = rng.Uniform(live.size());
        st = coll->Delete(live[pick]);
        if (st.ok()) {
          live[pick] = live.back();
          live.pop_back();
        }
        break;
      }
      case 2: {
        if (live.empty()) break;
        size_t pick = rng.Uniform(live.size());
        st = coll->Replace(live[pick], Value::Int64(1000000 + next_doc),
                           make_doc());
        break;
      }
    }
    if (!st.ok()) ++failed_ops;
  }
  fault::FaultRegistry::Global().DisarmAll();
  // A storm that never tripped a fault would not test recovery.
  EXPECT_GT(failed_ops, 0u);
  EXPECT_GT(fault::FaultRegistry::Global().triggers_total(), 0u);

  // Recovery: a degraded index is rebuilt from the surviving rows.
  if (coll->health() != CollectionHealth::kHealthy) {
    ASSERT_TRUE(coll->RebuildIndex().ok());
  }
  ASSERT_EQ(coll->health(), CollectionHealth::kHealthy);

  collection::ConsistencyReport report = coll->CheckConsistency();
  if (!report.consistent) {
    std::ofstream out("chaos_report_seed" + std::to_string(seed) + ".txt");
    out << "seed " << seed << "\n" << report.ToString();
  }
  ASSERT_TRUE(report.consistent)
      << "seed " << seed << "\n"
      << report.ToString();
  EXPECT_EQ(coll->document_count(), live.size());

  // Routed results must equal the baseline full scan, whichever access
  // path the router picks for each probe.
  struct Probe {
    PathPredicate pred;
    sqljson::Returning returning;
  };
  std::vector<Probe> probes;
  for (int s : {110, 320, 777}) {
    probes.push_back(
        {PathPredicate::Exists("$.sparse_" + std::to_string(s)),
         sqljson::Returning::kAny});
  }
  probes.push_back({PathPredicate::Compare("$.num", rdbms::CompareOp::kGt,
                                           Value::Int64(500000)),
                    sqljson::Returning::kNumber});
  probes.push_back({PathPredicate::Compare("$.nested_obj.num",
                                           rdbms::CompareOp::kEq,
                                           Value::Int64(271828)),
                    sqljson::Returning::kNumber});
  for (const Probe& probe : probes) {
    SCOPED_TRACE("probe " + probe.pred.path);
    auto routed = coll->Route({probe.pred});
    ASSERT_TRUE(routed.ok()) << routed.status().message();
    std::vector<std::string> routed_keys =
        DrainKeys(routed.value().plan.get());

    rdbms::ExprPtr filter_expr;
    if (probe.pred.is_existence()) {
      auto expr = coll->JsonExistsExpr(probe.pred.path);
      ASSERT_TRUE(expr.ok());
      filter_expr = expr.MoveValue();
    } else {
      auto value = coll->JsonValueExpr(probe.pred.path, probe.returning);
      ASSERT_TRUE(value.ok());
      filter_expr = rdbms::Cmp(probe.pred.op, value.MoveValue(),
                               rdbms::Lit(*probe.pred.literal));
    }
    rdbms::OperatorPtr baseline =
        rdbms::Filter(coll->Scan(), std::move(filter_expr));
    EXPECT_EQ(routed_keys, DrainKeys(baseline.get()));
  }
}

TEST(ChaosSuite, SeededDmlStorm) {
  const char* env = std::getenv("FSDM_CHAOS_SEED");
  if (env != nullptr) {
    RunChaos(std::strtoull(env, nullptr, 10));
    return;
  }
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunChaos(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace fsdm
