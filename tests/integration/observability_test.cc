#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "collection/collection.h"
#include "collection/collections_table.h"
#include "collection/router.h"
#include "json/parser.h"
#include "rdbms/executor.h"
#include "sql/parser.h"
#include "stats/operator_costs.h"
#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/sampler.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"
#include "telemetry/workload_repo.h"

/// End-to-end checks for the ISSUE 4 flight recorder: one collection
/// insert must show up in the exported chrome trace as a nested span tree,
/// and the TELEMETRY$ virtual relations must be queryable through the SQL
/// mini-engine.

namespace fsdm {
namespace {

using telemetry::FlightRecorder;
using telemetry::SlowQueryLog;

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kEnabled) {
      GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    }
    FlightRecorder::Global().Reset();
    FlightRecorder::Global().Arm();
    SlowQueryLog::Global().Clear();
  }
  void TearDown() override {
    if (telemetry::kEnabled) {
      FlightRecorder::Global().Disarm();
      FlightRecorder::Global().Reset();
      SlowQueryLog::Global().Clear();
      SlowQueryLog::Global().SetThresholdUs(10000);
    }
  }

  std::vector<std::string> Q(rdbms::Database* db, const std::string& sql) {
    sql::SqlSession session(db);
    auto r = session.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
    return r.ok() ? r.MoveValue() : std::vector<std::string>{};
  }

  rdbms::Database db_;
};

// The acceptance criterion: a single JsonCollection insert appears in the
// exported chrome trace as one nested span tree — collection.insert
// enclosing the IS JSON check, the index observer fan-out and the
// DataGuide persist — verified by walking the exported JSON.
TEST_F(ObservabilityTest, SingleInsertExportsNestedSpanTree) {
  auto coll = collection::JsonCollection::Create(&db_, "OBS").MoveValue();
  FlightRecorder::Global().Reset();  // drop the Create() noise

  ASSERT_TRUE(
      coll->Insert(Value::Int64(1), "{\"a\":1,\"b\":{\"c\":\"x\"}}").ok());

  const std::string path =
      ::testing::TempDir() + "/fsdm_observability_trace.json";
  ASSERT_TRUE(FlightRecorder::Global().DumpChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = json::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::remove(path.c_str());

  const json::JsonNode* events = parsed.value()->GetField("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Walk the event list tracking span depth; collect the names of spans
  // opened strictly inside the collection.insert window.
  int depth = 0;
  int insert_depth = -1;
  bool saw_insert = false;
  bool insert_closed = false;
  std::vector<std::string> nested;
  for (size_t i = 0; i < events->array_size(); ++i) {
    const json::JsonNode* e = events->element(i);
    const std::string ph = e->GetField("ph")->scalar().AsString();
    const std::string name = e->GetField("name")->scalar().AsString();
    if (ph == "B") {
      if (insert_depth >= 0 && !insert_closed) nested.push_back(name);
      ++depth;
      if (name == "collection.insert" && insert_depth < 0) {
        insert_depth = depth;
        saw_insert = true;
      }
    } else if (ph == "E") {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced trace at event " << i;
      if (insert_depth >= 0 && depth < insert_depth) insert_closed = true;
    }
  }
  EXPECT_EQ(depth, 0) << "trace left spans open";
  ASSERT_TRUE(saw_insert) << buf.str();
  ASSERT_TRUE(insert_closed);

  auto contains = [&](const std::string& want) {
    for (const std::string& n : nested) {
      if (n == want) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("isjson.check")) << buf.str();
  EXPECT_TRUE(contains("index.insert")) << buf.str();
  EXPECT_TRUE(contains("dg.persist")) << buf.str();
  EXPECT_TRUE(contains("observer.insert")) << buf.str();
}

TEST_F(ObservabilityTest, EventsRelationQueryableFromSql) {
  auto coll = collection::JsonCollection::Create(&db_, "OBS").MoveValue();
  ASSERT_TRUE(coll->Insert(Value::Int64(1), "{\"a\":1}").ok());

  std::vector<std::string> rows =
      Q(&db_, "SELECT CATEGORY, NAME, PHASE FROM TELEMETRY$EVENTS "
              "WHERE NAME = 'collection.insert' AND PHASE = 'E'");
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].substr(0, 29), "collection|collection.insert|");

  // DUR_US is populated on span-end rows and non-negative.
  rows = Q(&db_, "SELECT DUR_US FROM TELEMETRY$EVENTS "
                 "WHERE NAME = 'collection.insert' AND PHASE = 'E'");
  ASSERT_FALSE(rows.empty());
  EXPECT_GE(std::stod(rows[0]), 0.0);
}

TEST_F(ObservabilityTest, SlowQueryCapturedAndQueryableFromSql) {
  SlowQueryLog::Global().SetThresholdUs(0);  // capture everything
  auto coll = collection::JsonCollection::Create(&db_, "OBS").MoveValue();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coll->Insert("{\"num\":" + std::to_string(i) + "}").ok());
  }

  auto routed = collection::RoutePredicates(
                    *coll, {collection::PathPredicate::Compare(
                               "$.num", rdbms::CompareOp::kGt,
                               Value::Int64(-1))})
                    .MoveValue();
  auto rows = rdbms::Collect(routed.plan.get());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().size(), 50u);

  ASSERT_GE(SlowQueryLog::Global().total_captured(), 1u);
  std::vector<telemetry::SlowQueryRecord> snap =
      SlowQueryLog::Global().Snapshot();
  ASSERT_FALSE(snap.empty());
  const telemetry::SlowQueryRecord& rec = snap.back();
  EXPECT_FALSE(rec.access_path.empty());
  EXPECT_EQ(rec.rows, 50u);
  // The captured text is the router candidate table plus the executed
  // span tree with measured rows.
  EXPECT_NE(rec.trace_text.find("access path:"), std::string::npos)
      << rec.trace_text;
  EXPECT_NE(rec.trace_text.find("plan:"), std::string::npos) << rec.trace_text;
  EXPECT_NE(rec.trace_text.find("rows_out=50"), std::string::npos)
      << rec.trace_text;
  // The flight-recorder slice is valid JSON (an event array).
  auto slice = json::Parse(rec.events_json);
  ASSERT_TRUE(slice.ok()) << rec.events_json;
  EXPECT_TRUE(slice.value()->is_array());
  EXPECT_EQ(rec.event_count, slice.value()->array_size());

  std::vector<std::string> sql_rows =
      Q(&db_, "SELECT ACCESS_PATH, ROWS FROM TELEMETRY$SLOW_QUERIES");
  ASSERT_FALSE(sql_rows.empty());
}

// ISSUE 5 acceptance: after a DML + query workload the statistics
// relations answer through SqlSession with nonzero values, and the slow
// query log carries the router's cardinality estimate.
TEST_F(ObservabilityTest, PathStatsRelationQueryableWithNonzeroValues) {
  auto coll = collection::JsonCollection::Create(&db_, "OBSP").MoveValue();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(coll->Insert("{\"num\":" + std::to_string(i) +
                             ",\"tag\":\"t" + std::to_string(i % 4) + "\"}")
                    .ok());
  }

  std::vector<std::string> rows =
      Q(&db_,
        "SELECT PATH, DOC_FREQUENCY, VALUE_COUNT, NDV FROM "
        "TELEMETRY$PATH_STATS WHERE COLLECTION = 'OBSP' AND PATH = '$.tag'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "$.tag|40|40|4");

  rows = Q(&db_, "SELECT MIN, MAX FROM TELEMETRY$PATH_STATS "
                 "WHERE COLLECTION = 'OBSP' AND PATH = '$.num'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "0|39");
}

TEST_F(ObservabilityTest, OperatorCostsRelationReflectsMeasurements) {
  stats::OperatorCostModel::Global().Reset();
  auto coll = collection::JsonCollection::Create(&db_, "OBSO").MoveValue();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(coll->Insert("{\"tag\":\"t" + std::to_string(i % 3) + "\"}")
                    .ok());
  }
  // Seeds are visible before any measurement...
  std::vector<std::string> rows =
      Q(&db_, "SELECT OPERATOR, SAMPLES FROM TELEMETRY$OPERATOR_COSTS "
              "WHERE OPERATOR = 'IndexedValueScan'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "IndexedValueScan|0");

  // ...and draining a routed query feeds the model.
  auto routed = collection::RoutePredicates(
                    *coll, {collection::PathPredicate::Compare(
                               "$.tag", rdbms::CompareOp::kEq,
                               Value::String("t1"))})
                    .MoveValue();
  ASSERT_TRUE(rdbms::Collect(routed.plan.get()).ok());
  rows = Q(&db_,
           "SELECT SAMPLES, ROWS_OBSERVED FROM TELEMETRY$OPERATOR_COSTS "
           "WHERE OPERATOR = 'IndexedValueScan'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "1|10");
  stats::OperatorCostModel::Global().Reset();
}

TEST_F(ObservabilityTest, SlowQueriesCarryEstimatedRows) {
  SlowQueryLog::Global().SetThresholdUs(0);
  auto coll = collection::JsonCollection::Create(&db_, "OBSE").MoveValue();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(coll->Insert("{\"tag\":\"t" + std::to_string(i % 2) + "\"}")
                    .ok());
  }
  auto routed = collection::RoutePredicates(
                    *coll, {collection::PathPredicate::Compare(
                               "$.tag", rdbms::CompareOp::kEq,
                               Value::String("t0"))})
                    .MoveValue();
  ASSERT_TRUE(rdbms::Collect(routed.plan.get()).ok());

  std::vector<std::string> rows =
      Q(&db_, "SELECT ROWS, EST_ROWS FROM TELEMETRY$SLOW_QUERIES");
  ASSERT_FALSE(rows.empty());
  // 20 docs, 2 tags: 10 actual rows and an estimate of ~10 (the NDV
  // sketch is near-exact, not exact, at tiny cardinalities).
  const std::string& last = rows.back();
  const size_t sep = last.find('|');
  ASSERT_NE(sep, std::string::npos) << last;
  EXPECT_EQ(last.substr(0, sep), "10");
  EXPECT_NEAR(std::stod(last.substr(sep + 1)), 10.0, 1.0) << last;
  // The JSONL rendering carries it too.
  const telemetry::SlowQueryRecord rec =
      SlowQueryLog::Global().Snapshot().back();
  EXPECT_NE(rec.ToJsonLine().find("\"est_rows\":"), std::string::npos)
      << rec.ToJsonLine();
}

TEST_F(ObservabilityTest, CollectionsRelationListsLiveCollections) {
  auto coll = collection::JsonCollection::Create(&db_, "OBSC").MoveValue();
  ASSERT_TRUE(coll->Insert("{\"a\":1}").ok());
  ASSERT_TRUE(coll->Insert("{\"a\":2}").ok());

  std::vector<std::string> rows =
      Q(&db_, "SELECT NAME, HEALTH, DOC_COUNT FROM TELEMETRY$COLLECTIONS "
              "WHERE NAME = 'OBSC'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], "OBSC|healthy|2");

  // Detach drops it from the registry: no dangling rows.
  coll.reset();
  rows = Q(&db_, "SELECT NAME FROM TELEMETRY$COLLECTIONS "
                 "WHERE NAME = 'OBSC'");
  EXPECT_TRUE(rows.empty());
}

// ISSUE 8: TELEMETRY$WAL exposes per-collection log state; collections
// without a WAL contribute no rows.
TEST_F(ObservabilityTest, WalRelationListsDurableCollections) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "obs_wal_relation";
  fs::remove_all(dir);
  collection::CollectionOptions opts;
  opts.wal_dir = dir.string();
  opts.wal_fsync = wal::FsyncPolicy::kOff;
  auto durable =
      collection::JsonCollection::Create(&db_, "OBSW", opts).MoveValue();
  auto transient = collection::JsonCollection::Create(&db_, "OBST").MoveValue();
  ASSERT_TRUE(durable->Insert("{\"a\":1}").ok());
  ASSERT_TRUE(durable->Insert("{\"a\":2}").ok());
  ASSERT_TRUE(transient->Insert("{\"a\":3}").ok());

  std::vector<std::string> rows =
      Q(&db_, "SELECT NAME, POLICY, SEGMENTS, APPENDS, TORN_TAIL "
              "FROM TELEMETRY$WAL");
  ASSERT_EQ(rows.size(), 1u);  // only the durable collection has a log
  EXPECT_EQ(rows[0], "OBSW|off|1|2|0");

  ASSERT_TRUE(durable->Checkpoint().ok());
  rows = Q(&db_, "SELECT CHECKPOINTS, LAST_LSN FROM TELEMETRY$WAL "
                 "WHERE NAME = 'OBSW'");
  ASSERT_EQ(rows.size(), 1u);
  // Checkpoint = begin + one doc record per live doc + end: LSN 2+4=6.
  EXPECT_EQ(rows[0], "1|6");

  durable.reset();
  transient.reset();
  fs::remove_all(dir);
}

// ISSUE 7 acceptance: the ASH ring and the workload repository answer
// through the SQL mini-engine.
TEST_F(ObservabilityTest, AshRelationQueryableFromSql) {
  telemetry::ActivitySampler& sampler = telemetry::ActivitySampler::Global();
  sampler.Stop();
  sampler.ClearRing();
  {
    // Deterministic "active session": hold a lease and tick the sampler by
    // hand instead of racing the background thread.
    telemetry::ActivityLease lease = telemetry::ActivityLease::Begin(
        "ASHQ", "indexed-value-scan", "RoutedQueryProbe", "SELECT 1",
        /*shard=*/3, /*worker=*/-1);
    for (int i = 0; i < 4; ++i) ASSERT_GE(sampler.SampleOnce(), 1u);
  }

  std::vector<std::string> rows =
      Q(&db_, "SELECT COLLECTION, WAIT_STATE, WAIT_CLASS, ACCESS_PATH, SHARD "
              "FROM TELEMETRY$ASH WHERE COLLECTION = 'ASHQ'");
  ASSERT_EQ(rows.size(), 4u);
  for (const std::string& row : rows) {
    EXPECT_EQ(row, "ASHQ|on-cpu|cpu|indexed-value-scan|3");
  }
  // Off-pool samples carry a NULL worker; released leases stop sampling.
  rows = Q(&db_, "SELECT TS_US FROM TELEMETRY$ASH "
                 "WHERE COLLECTION = 'ASHQ' AND WORKER IS NULL");
  EXPECT_EQ(rows.size(), 4u);
  sampler.ClearRing();
  (void)sampler.SampleOnce();
  rows = Q(&db_, "SELECT TS_US FROM TELEMETRY$ASH "
                 "WHERE COLLECTION = 'ASHQ'");
  EXPECT_TRUE(rows.empty());
  sampler.ClearRing();
}

TEST_F(ObservabilityTest, SnapshotsRelationQueryableFromSql) {
  telemetry::ActivitySampler& sampler = telemetry::ActivitySampler::Global();
  telemetry::WorkloadRepository& repo =
      telemetry::WorkloadRepository::Global();
  sampler.Stop();
  sampler.ClearRing();
  repo.Clear();

  {
    telemetry::ActivityLease lease = telemetry::ActivityLease::Begin(
        "AWRQ", "full-scan", "probe", "SELECT COUNT(*) FROM AWRQ");
    for (int i = 0; i < 3; ++i) ASSERT_GE(sampler.SampleOnce(), 1u);
    telemetry::ScopedWaitState wait(telemetry::WaitState::kLockWait);
    ASSERT_GE(sampler.SampleOnce(), 1u);
  }
  (void)repo.TakeSnapshot("sql-phase");

  std::vector<std::string> rows =
      Q(&db_,
        "SELECT LABEL, DB_SAMPLES, TOP_WAIT_CLASS, TOP_QUERY FROM "
        "TELEMETRY$SNAPSHOTS WHERE LABEL = 'sql-phase'");
  ASSERT_EQ(rows.size(), 1u);
  // 4 samples: 3 on-cpu, 1 lock-wait -> dominant wait class concurrency.
  EXPECT_EQ(rows[0],
            "sql-phase|4|concurrency|SELECT COUNT(*) FROM AWRQ");
  rows = Q(&db_, "SELECT CPU_PCT FROM TELEMETRY$SNAPSHOTS "
                 "WHERE LABEL = 'sql-phase'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0]), 75.0);

  sampler.ClearRing();
  repo.Clear();
}

}  // namespace
}  // namespace fsdm
