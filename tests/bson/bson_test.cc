#include "bson/bson.h"

#include <gtest/gtest.h>

#include "json/parser.h"
#include "json/serializer.h"

namespace fsdm::bson {
namespace {

constexpr const char* kPo =
    R"({"purchaseOrder":{"id":1,"podate":"2014-09-08","items":[)"
    R"({"name":"phone","price":100,"quantity":2},)"
    R"({"name":"ipad","price":350.86,"quantity":3}]}})";

std::string MustEncode(std::string_view text) {
  Result<std::string> r = EncodeFromText(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(BsonTest, EncodeDecodeRoundTrip) {
  for (const char* text :
       {"{}", R"({"a":1})", R"({"a":{"b":{"c":[1,2,3]}}})",
        R"({"s":"hello","t":true,"f":false,"n":null})",
        R"({"neg":-42,"big":9999999999999,"d":2.5})", kPo}) {
    std::string bytes = MustEncode(text);
    Result<std::unique_ptr<json::JsonNode>> back = Decode(bytes);
    ASSERT_TRUE(back.ok()) << text << ": " << back.status().ToString();
    auto original = json::Parse(text).MoveValue();
    EXPECT_TRUE(original->Equals(*back.value())) << text << " -> "
        << json::Serialize(*back.value());
  }
}

TEST(BsonTest, RootMustBeObject) {
  EXPECT_FALSE(EncodeFromText("[1,2]").ok());
  EXPECT_FALSE(EncodeFromText("42").ok());
}

TEST(BsonTest, SpecFraming) {
  // {"a": 1} per bsonspec: int32 len, 0x10 'a' 00, int32 1, 0x00.
  std::string bytes = MustEncode(R"({"a":1})");
  ASSERT_EQ(bytes.size(), 12u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 12);  // total length LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), 0x10);  // int32 element
  EXPECT_EQ(bytes[5], 'a');
  EXPECT_EQ(bytes[6], '\0');
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 1);
  EXPECT_EQ(bytes.back(), '\0');
}

TEST(BsonTest, Int64VsInt32Selection) {
  std::string small = MustEncode(R"({"v":100})");
  EXPECT_EQ(static_cast<uint8_t>(small[4]), 0x10);  // int32
  std::string big = MustEncode(R"({"v":99999999999})");
  EXPECT_EQ(static_cast<uint8_t>(big[4]), 0x12);  // int64
}

TEST(BsonTest, DecimalBecomesDouble) {
  std::string bytes = MustEncode(R"({"v":0.1})");
  auto back = Decode(bytes).MoveValue();
  EXPECT_EQ(back->GetField("v")->scalar().type(), ScalarType::kDouble);
  EXPECT_DOUBLE_EQ(back->GetField("v")->scalar().AsDouble(), 0.1);
}

TEST(BsonDomTest, SerialFieldNavigation) {
  std::string bytes = MustEncode(kPo);
  Result<BsonDom> dom_r = BsonDom::Open(bytes);
  ASSERT_TRUE(dom_r.ok());
  const BsonDom& dom = dom_r.value();

  json::Dom::NodeRef root = dom.root();
  EXPECT_EQ(dom.GetNodeType(root), json::NodeKind::kObject);
  EXPECT_EQ(dom.GetFieldCount(root), 1u);

  json::Dom::NodeRef po = dom.GetFieldValue(root, "purchaseOrder");
  ASSERT_NE(po, json::Dom::kInvalidNode);
  json::Dom::NodeRef id = dom.GetFieldValue(po, "id");
  Value v;
  ASSERT_TRUE(dom.GetScalarValue(id, &v).ok());
  EXPECT_EQ(v.AsInt64(), 1);

  json::Dom::NodeRef items = dom.GetFieldValue(po, "items");
  EXPECT_EQ(dom.GetNodeType(items), json::NodeKind::kArray);
  EXPECT_EQ(dom.GetArrayLength(items), 2u);
  json::Dom::NodeRef second = dom.GetArrayElement(items, 1);
  json::Dom::NodeRef name = dom.GetFieldValue(second, "name");
  ASSERT_TRUE(dom.GetScalarValue(name, &v).ok());
  EXPECT_EQ(v.AsString(), "ipad");

  EXPECT_EQ(dom.GetFieldValue(po, "nope"), json::Dom::kInvalidNode);
  EXPECT_EQ(dom.GetArrayElement(items, 2), json::Dom::kInvalidNode);
}

TEST(BsonDomTest, GetFieldAtIteratesInOrder) {
  std::string bytes = MustEncode(R"({"z":1,"a":2,"m":3})");
  BsonDom dom = BsonDom::Open(bytes).MoveValue();
  std::string_view name;
  json::Dom::NodeRef child;
  dom.GetFieldAt(dom.root(), 0, &name, &child);
  EXPECT_EQ(name, "z");
  dom.GetFieldAt(dom.root(), 2, &name, &child);
  EXPECT_EQ(name, "m");
  dom.GetFieldAt(dom.root(), 3, &name, &child);
  EXPECT_EQ(child, json::Dom::kInvalidNode);
}

TEST(BsonDomTest, OpenRejectsCorruptImages) {
  EXPECT_FALSE(BsonDom::Open("").ok());
  EXPECT_FALSE(BsonDom::Open("\x05\x00\x00").ok());
  std::string good = MustEncode(R"({"a":1})");
  std::string bad_len = good;
  bad_len[0] = 50;
  EXPECT_FALSE(BsonDom::Open(bad_len).ok());
  std::string no_term = good;
  no_term.back() = 'x';
  EXPECT_FALSE(BsonDom::Open(no_term).ok());
}

TEST(BsonTest, BooleansAndNull) {
  std::string bytes = MustEncode(R"({"t":true,"f":false,"n":null})");
  auto back = Decode(bytes).MoveValue();
  EXPECT_TRUE(back->GetField("t")->scalar().AsBool());
  EXPECT_FALSE(back->GetField("f")->scalar().AsBool());
  EXPECT_TRUE(back->GetField("n")->scalar().is_null());
}

TEST(BsonTest, NestedEmptyContainers) {
  std::string bytes = MustEncode(R"({"o":{},"a":[]})");
  auto back = Decode(bytes).MoveValue();
  EXPECT_EQ(back->GetField("o")->field_count(), 0u);
  EXPECT_EQ(back->GetField("a")->array_size(), 0u);
}

TEST(BsonTest, Utf8FieldNamesAndValues) {
  std::string bytes = MustEncode(R"({"clé":"café"})");
  auto back = Decode(bytes).MoveValue();
  EXPECT_EQ(back->GetField("cl\xc3\xa9")->scalar().AsString(),
            "caf\xc3\xa9");
}

}  // namespace
}  // namespace fsdm::bson
