#include "wal/wal.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "fault/fault.h"
#include "oson/oson.h"

namespace fsdm::wal {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory per test, removed on teardown.
class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("fsdm_wal_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fault::FaultRegistry::Global().DisarmAll();
  }
  void TearDown() override {
    fault::FaultRegistry::Global().DisarmAll();
    fs::remove_all(dir_);
  }

  WalOptions Options(FsyncPolicy policy = FsyncPolicy::kOff) {
    WalOptions o;
    o.dir = dir_.string();
    o.fsync = policy;
    return o;
  }

  static std::string Oson(const std::string& json) {
    auto r = oson::EncodeFromText(json);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return r.ok() ? r.value() : std::string();
  }

  /// All segment files in the directory, sorted.
  std::vector<fs::path> Segments() const {
    std::vector<fs::path> out;
    for (const auto& e : fs::directory_iterator(dir_)) out.push_back(e.path());
    std::sort(out.begin(), out.end());
    return out;
  }

  fs::path dir_;
};

TEST_F(WalTest, AppendAndReplayRoundTrip) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    EXPECT_TRUE(opened.replay.empty());
    Wal* w = opened.wal.get();
    ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{\"a\":1}")).ok());
    ASSERT_TRUE(w->AppendReplace(0, 0, Value::Int64(1), Oson("{\"a\":2}")).ok());
    ASSERT_TRUE(w->AppendDelete(0, 0).ok());
    ASSERT_TRUE(w->Flush().ok());
    EXPECT_EQ(w->last_lsn(), 3u);
    EXPECT_EQ(w->durable_lsn(), 3u);
  }
  auto reopened = Wal::Open(Options()).MoveValue();
  ASSERT_EQ(reopened.replay.size(), 3u);
  EXPECT_EQ(reopened.replay[0].type, RecordType::kInsert);
  EXPECT_EQ(reopened.replay[0].lsn, 1u);
  EXPECT_EQ(reopened.replay[0].key.AsInt64(), 1);
  EXPECT_EQ(reopened.replay[0].oson, Oson("{\"a\":1}"));
  EXPECT_EQ(reopened.replay[1].type, RecordType::kReplace);
  EXPECT_EQ(reopened.replay[1].ref_id, 0u);
  EXPECT_EQ(reopened.replay[1].oson, Oson("{\"a\":2}"));
  EXPECT_EQ(reopened.replay[2].type, RecordType::kDelete);
  EXPECT_EQ(reopened.replay[2].ref_id, 0u);
  // The writer continues after the durable prefix.
  EXPECT_FALSE(reopened.wal->failed());
  auto lsn = reopened.wal->AppendDelete(0, 7);
  ASSERT_TRUE(lsn.ok()) << lsn.status().message();
  EXPECT_EQ(lsn.value(), 4u);
}

TEST_F(WalTest, KeyTypesRoundTrip) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    Wal* w = opened.wal.get();
    const std::string img = Oson("{}");
    ASSERT_TRUE(w->AppendInsert(0, Value::Null(), img).ok());
    ASSERT_TRUE(w->AppendInsert(0, Value::Bool(true), img).ok());
    ASSERT_TRUE(w->AppendInsert(0, Value::Int64(-42), img).ok());
    ASSERT_TRUE(w->AppendInsert(0, Value::Double(2.5), img).ok());
    ASSERT_TRUE(
        w->AppendInsert(0, Value::Dec(Decimal::FromString("12.34").value()),
                        img)
            .ok());
    ASSERT_TRUE(
        w->AppendInsert(0, Value::String(std::string("k\0ey", 4)), img).ok());
    ASSERT_TRUE(w->Flush().ok());
  }
  auto reopened = Wal::Open(Options()).MoveValue();
  ASSERT_EQ(reopened.replay.size(), 6u);
  EXPECT_TRUE(reopened.replay[0].key.is_null());
  EXPECT_EQ(reopened.replay[1].key.AsBool(), true);
  EXPECT_EQ(reopened.replay[2].key.AsInt64(), -42);
  EXPECT_EQ(reopened.replay[3].key.AsDouble(), 2.5);
  EXPECT_EQ(reopened.replay[4].key.AsDecimal().ToString(), "12.34");
  EXPECT_EQ(reopened.replay[5].key.AsString(), std::string("k\0ey", 4));
}

TEST_F(WalTest, RotationKeepsAllRecordsAcrossSegments) {
  WalOptions o = Options();
  o.segment_bytes = 256;  // force frequent rotation
  {
    auto opened = Wal::Open(o).MoveValue();
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(opened.wal
                      ->AppendInsert(0, Value::Int64(i),
                                     Oson("{\"i\":" + std::to_string(i) + "}"))
                      .ok());
    }
    ASSERT_TRUE(opened.wal->Flush().ok());
    EXPECT_GT(opened.wal->segment_count(), 1u);
    EXPECT_GT(opened.wal->rotations(), 0u);
  }
  auto reopened = Wal::Open(o).MoveValue();
  ASSERT_EQ(reopened.replay.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(reopened.replay[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(reopened.replay[i].key.AsInt64(), i);
  }
  EXPECT_GT(reopened.replay.size(), 0u);
  EXPECT_GT(reopened.wal->recovery().segments_scanned, 1u);
}

TEST_F(WalTest, GroupCommitAdvancesDurableLsnInBatches) {
  WalOptions o = Options(FsyncPolicy::kGroup);
  o.group_ops = 4;
  auto opened = Wal::Open(o).MoveValue();
  Wal* w = opened.wal.get();
  const std::string img = Oson("{}");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(w->AppendInsert(0, Value::Int64(i), img).ok());
  }
  EXPECT_EQ(w->durable_lsn(), 0u) << "no fsync before the group fills";
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(3), img).ok());
  EXPECT_EQ(w->durable_lsn(), 4u) << "group boundary fsyncs";
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(4), img).ok());
  EXPECT_EQ(w->durable_lsn(), 4u);
  ASSERT_TRUE(w->Flush().ok());
  EXPECT_EQ(w->durable_lsn(), 5u) << "Flush is the escape hatch";
  EXPECT_GE(w->fsyncs(), 2u);
}

TEST_F(WalTest, AlwaysPolicyFsyncsEveryAppend) {
  auto opened = Wal::Open(Options(FsyncPolicy::kAlways)).MoveValue();
  Wal* w = opened.wal.get();
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{}")).ok());
  EXPECT_EQ(w->durable_lsn(), 1u);
  ASSERT_TRUE(w->AppendDelete(0, 0).ok());
  EXPECT_EQ(w->durable_lsn(), 2u);
  EXPECT_GE(w->fsyncs(), 2u);
}

TEST_F(WalTest, TornTailTruncatedByteTruncation) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          opened.wal->AppendInsert(0, Value::Int64(i), Oson("{\"x\":1}")).ok());
    }
    ASSERT_TRUE(opened.wal->Flush().ok());
  }
  // Chop 3 bytes off the tail: the last record is now short.
  const fs::path seg = Segments().back();
  const auto size = fs::file_size(seg);
  fs::resize_file(seg, size - 3);

  auto reopened = Wal::Open(Options()).MoveValue();
  EXPECT_EQ(reopened.replay.size(), 4u) << "last record discarded";
  EXPECT_TRUE(reopened.wal->recovery().torn_tail);
  EXPECT_GT(reopened.wal->recovery().torn_bytes, 0u);
  // The repair physically truncated the file: a third open is clean.
  auto again = Wal::Open(Options()).MoveValue();
  EXPECT_EQ(again.replay.size(), 4u);
  EXPECT_FALSE(again.wal->recovery().torn_tail);
}

TEST_F(WalTest, MidRecordCorruptionStopsTheScanThere) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          opened.wal->AppendInsert(0, Value::Int64(i), Oson("{\"x\":1}")).ok());
    }
    ASSERT_TRUE(opened.wal->Flush().ok());
  }
  // Flip one byte in the middle of the file: the record containing it
  // fails its CRC and everything after it is discarded too.
  const fs::path seg = Segments().back();
  std::string bytes;
  {
    std::ifstream in(seg, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(seg, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto reopened = Wal::Open(Options()).MoveValue();
  EXPECT_LT(reopened.replay.size(), 5u);
  EXPECT_TRUE(reopened.wal->recovery().torn_tail);
  // The surviving prefix is intact and in order.
  for (size_t i = 0; i < reopened.replay.size(); ++i) {
    EXPECT_EQ(reopened.replay[i].lsn, i + 1);
  }
}

TEST_F(WalTest, DuplicatedTailRecordIsCutByLsnMonotonicity) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          opened.wal->AppendInsert(0, Value::Int64(i), Oson("{\"x\":1}")).ok());
    }
    ASSERT_TRUE(opened.wal->Flush().ok());
  }
  // Duplicate the last record's bytes at the tail (a rewind-style tear:
  // valid CRC, stale LSN). The duplicate must not replay twice.
  const fs::path seg = Segments().back();
  std::string bytes;
  {
    std::ifstream in(seg, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  // All three records are identical length; the last third of the
  // post-header bytes is the last record.
  const size_t body = bytes.size() - kSegmentHeaderSize;
  ASSERT_EQ(body % 3, 0u);
  std::string last = bytes.substr(bytes.size() - body / 3);
  {
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    out.write(last.data(), static_cast<std::streamsize>(last.size()));
  }
  auto reopened = Wal::Open(Options()).MoveValue();
  EXPECT_EQ(reopened.replay.size(), 3u);
  EXPECT_TRUE(reopened.wal->recovery().torn_tail);
}

TEST_F(WalTest, CheckpointTruncatesOlderSegments) {
  WalOptions o = Options();
  o.segment_bytes = 256;
  auto opened = Wal::Open(o).MoveValue();
  Wal* w = opened.wal.get();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(w->AppendInsert(0, Value::Int64(i), Oson("{\"x\":1}")).ok());
  }
  const size_t before = w->segment_count();
  ASSERT_GT(before, 1u);
  ASSERT_TRUE(w->CheckpointBegin(31, {30}).ok());
  ASSERT_TRUE(
      w->CheckpointDoc(0, 5, Value::Int64(5), Oson("{\"x\":1}")).ok());
  ASSERT_TRUE(w->CheckpointEnd(1).ok());
  EXPECT_EQ(w->segment_count(), 1u) << "only the checkpoint segment survives";
  EXPECT_EQ(w->checkpoints(), 1u);
  EXPECT_EQ(Segments().size(), 1u);

  // Replay starts at the checkpoint.
  auto reopened = Wal::Open(o).MoveValue();
  ASSERT_GE(reopened.replay.size(), 3u);
  EXPECT_EQ(reopened.replay[0].type, RecordType::kCheckpointBegin);
  EXPECT_EQ(reopened.replay[0].next_auto_key, 31u);
  ASSERT_EQ(reopened.replay[0].shard_highwater.size(), 1u);
  EXPECT_EQ(reopened.replay[0].shard_highwater[0], 30u);
  EXPECT_EQ(reopened.replay[1].type, RecordType::kCheckpointDoc);
  EXPECT_EQ(reopened.replay[1].ref_id, 5u);
  EXPECT_EQ(reopened.replay[2].type, RecordType::kCheckpointEnd);
  EXPECT_EQ(reopened.replay[2].ref_id, 1u);
}

TEST_F(WalTest, InterruptedCheckpointLosesNothing) {
  auto opened = Wal::Open(Options()).MoveValue();
  Wal* w = opened.wal.get();
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{\"x\":1}")).ok());
  ASSERT_TRUE(w->CheckpointBegin(2, {1}).ok());
  ASSERT_TRUE(w->CheckpointDoc(0, 0, Value::Int64(1), Oson("{\"x\":1}")).ok());
  // No End: the process "crashed" mid-checkpoint. The pre-checkpoint
  // insert segment must still be on disk for replay to fall back to.
  ASSERT_TRUE(w->Flush().ok());
  opened.wal.reset();
  auto reopened = Wal::Open(Options()).MoveValue();
  bool saw_insert = false;
  for (const Record& r : reopened.replay) {
    if (r.type == RecordType::kInsert) saw_insert = true;
    EXPECT_NE(r.type, RecordType::kCheckpointEnd);
  }
  EXPECT_TRUE(saw_insert);
}

TEST_F(WalTest, AbortRecordRoundTrips) {
  {
    auto opened = Wal::Open(Options()).MoveValue();
    auto lsn = opened.wal->AppendInsert(0, Value::Int64(1), Oson("{}"));
    ASSERT_TRUE(lsn.ok());
    opened.wal->AppendAbort(lsn.value());
    EXPECT_EQ(opened.wal->aborts(), 1u);
    ASSERT_TRUE(opened.wal->Flush().ok());
  }
  auto reopened = Wal::Open(Options()).MoveValue();
  ASSERT_EQ(reopened.replay.size(), 2u);
  EXPECT_EQ(reopened.replay[1].type, RecordType::kAbort);
  EXPECT_EQ(reopened.replay[1].ref_id, reopened.replay[0].lsn);
}

TEST_F(WalTest, ShortWriteFaultPoisonsTheWriter) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  auto opened = Wal::Open(Options()).MoveValue();
  Wal* w = opened.wal.get();
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{\"x\":1}")).ok());
  fault::ScopedFault guard("wal.append.short_write", fault::FaultSpec::Once());
  EXPECT_FALSE(w->AppendInsert(0, Value::Int64(2), Oson("{\"x\":2}")).ok());
  EXPECT_TRUE(w->failed());
  // Poisoned: refuses further appends rather than writing after a hole.
  EXPECT_FALSE(w->AppendInsert(0, Value::Int64(3), Oson("{\"x\":3}")).ok());
  EXPECT_FALSE(w->Flush().ok());
  opened.wal.reset();
  // Recovery truncates the half-written record; the first insert survives.
  auto reopened = Wal::Open(Options()).MoveValue();
  ASSERT_EQ(reopened.replay.size(), 1u);
  EXPECT_EQ(reopened.replay[0].key.AsInt64(), 1);
  EXPECT_TRUE(reopened.wal->recovery().torn_tail);
}

TEST_F(WalTest, TornWriteFaultIsSilentUntilRecovery) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  auto opened = Wal::Open(Options()).MoveValue();
  Wal* w = opened.wal.get();
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{\"x\":1}")).ok());
  {
    fault::ScopedFault guard("wal.append.torn_write",
                             fault::FaultSpec::Once());
    // The append SUCCEEDS — the corruption is only visible to recovery.
    ASSERT_TRUE(w->AppendInsert(0, Value::Int64(2), Oson("{\"x\":2}")).ok());
  }
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(3), Oson("{\"x\":3}")).ok());
  ASSERT_TRUE(w->Flush().ok());
  opened.wal.reset();
  auto reopened = Wal::Open(Options()).MoveValue();
  // The CRC catches the flipped byte; record 2 and everything after fall.
  ASSERT_EQ(reopened.replay.size(), 1u);
  EXPECT_EQ(reopened.replay[0].key.AsInt64(), 1);
  EXPECT_TRUE(reopened.wal->recovery().torn_tail);
}

TEST_F(WalTest, FsyncFaultCarriesErrnoAndPoisons) {
  if (!fault::kEnabled) GTEST_SKIP() << "built with -DFSDM_FAULTS=OFF";
  auto opened = Wal::Open(Options(FsyncPolicy::kAlways)).MoveValue();
  Wal* w = opened.wal.get();
  ASSERT_TRUE(w->AppendInsert(0, Value::Int64(1), Oson("{\"x\":1}")).ok());
  {
    fault::ScopedFault guard("wal.fsync", fault::FaultSpec::Errno(ENOSPC));
    Result<uint64_t> r = w->AppendInsert(0, Value::Int64(2), Oson("{\"x\":2}"));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("No space left on device"),
              std::string::npos)
        << r.status().message();
  }
  // The failed append was compensated, and the writer poisoned itself:
  // after a failed fsync the kernel may have dropped the dirty pages, so
  // no later "successful" fsync can vouch for them (the fsyncgate rule —
  // see DESIGN.md). Durability resumes only through reopen + replay.
  EXPECT_EQ(w->aborts(), 1u);
  EXPECT_TRUE(w->failed());
  EXPECT_FALSE(w->AppendInsert(0, Value::Int64(3), Oson("{\"x\":3}")).ok());
  opened.wal.reset();
  auto reopened = Wal::Open(Options()).MoveValue();
  // Replay: insert 1, the compensated insert 2, its abort. The post-
  // poisoning append was refused, so nothing after.
  ASSERT_EQ(reopened.replay.size(), 3u);
  EXPECT_EQ(reopened.replay[0].key.AsInt64(), 1);
  EXPECT_EQ(reopened.replay[2].type, RecordType::kAbort);
  EXPECT_EQ(reopened.replay[2].ref_id, reopened.replay[1].lsn);
  EXPECT_FALSE(reopened.wal->failed());
}

TEST_F(WalTest, FsyncPolicyFromEnv) {
  ::setenv("FSDM_WAL_FSYNC", "group", 1);
  EXPECT_EQ(FsyncPolicyFromEnv(), FsyncPolicy::kGroup);
  ::setenv("FSDM_WAL_FSYNC", "off", 1);
  EXPECT_EQ(FsyncPolicyFromEnv(), FsyncPolicy::kOff);
  ::setenv("FSDM_WAL_FSYNC", "always", 1);
  EXPECT_EQ(FsyncPolicyFromEnv(), FsyncPolicy::kAlways);
  ::setenv("FSDM_WAL_FSYNC", "bogus", 1);
  EXPECT_EQ(FsyncPolicyFromEnv(FsyncPolicy::kGroup), FsyncPolicy::kGroup);
  ::unsetenv("FSDM_WAL_FSYNC");
  EXPECT_EQ(FsyncPolicyFromEnv(), FsyncPolicy::kAlways);
}

TEST_F(WalTest, PolicyAndTypeNames) {
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kGroup), "group");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kOff), "off");
  EXPECT_STREQ(RecordTypeName(RecordType::kInsert), "insert");
  EXPECT_STREQ(RecordTypeName(RecordType::kAbort), "abort");
  EXPECT_STREQ(RecordTypeName(RecordType::kCheckpointBegin),
               "checkpoint-begin");
}

TEST_F(WalTest, ForeignFilesAreIgnored) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "README.txt") << "not a segment";
  std::ofstream(dir_ / "wal-notanumber.walseg") << "junk";
  auto opened = Wal::Open(Options());
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  EXPECT_TRUE(opened.value().replay.empty());
}

}  // namespace
}  // namespace fsdm::wal
