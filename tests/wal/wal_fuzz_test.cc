#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "oson/oson.h"
#include "wal/wal.h"

namespace fsdm::wal {
namespace {

namespace fs = std::filesystem;

/// Seeded WAL corruption fuzz (ISSUE 8 satellite): write a healthy log,
/// mangle its bytes — flips, truncations, duplicated tails, duplicated
/// whole segments, garbage appends — and require that Wal::Open NEVER
/// crashes (CI runs this under ASan) and never returns corrupted records:
/// whatever survives must be a clean LSN-monotonic prefix. Open is allowed
/// to fail cleanly only for I/O-level errors, which the mutations here
/// never produce — so we additionally require ok().

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteFile(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FuzzIteration(uint64_t seed, const fs::path& dir) {
  SCOPED_TRACE("fuzz seed " + std::to_string(seed));
  fs::remove_all(dir);
  Rng rng(seed);

  WalOptions options;
  options.dir = dir.string();
  options.fsync = FsyncPolicy::kOff;
  options.segment_bytes = 512;  // several segments per run

  // A healthy log of mixed record types.
  {
    auto opened = Wal::Open(options).MoveValue();
    Wal* w = opened.wal.get();
    const size_t ops = 20 + rng.Uniform(40);
    for (size_t i = 0; i < ops; ++i) {
      const std::string img =
          oson::EncodeFromText("{\"i\":" + std::to_string(i) + ",\"pad\":\"" +
                               std::string(rng.Uniform(40), 'x') + "\"}")
              .value();
      switch (rng.Uniform(4)) {
        case 0:
        case 1:
          ASSERT_TRUE(
              w->AppendInsert(0, Value::Int64(static_cast<int64_t>(i)), img)
                  .ok());
          break;
        case 2:
          ASSERT_TRUE(w->AppendDelete(0, rng.Uniform(ops)).ok());
          break;
        default:
          ASSERT_TRUE(w->AppendReplace(
                           0, rng.Uniform(ops),
                           Value::Int64(static_cast<int64_t>(i)), img)
                          .ok());
          break;
      }
    }
    ASSERT_TRUE(w->Flush().ok());
  }

  // Mangle 1-4 times.
  std::vector<fs::path> segs;
  for (const auto& e : fs::directory_iterator(dir)) segs.push_back(e.path());
  std::sort(segs.begin(), segs.end());
  ASSERT_FALSE(segs.empty());
  const size_t mutations = 1 + rng.Uniform(4);
  for (size_t m = 0; m < mutations; ++m) {
    const fs::path& victim = segs[rng.Uniform(segs.size())];
    std::string bytes = ReadFile(victim);
    if (bytes.empty()) continue;
    switch (rng.Uniform(5)) {
      case 0: {  // flip 1-8 random bytes
        const size_t flips = 1 + rng.Uniform(8);
        for (size_t f = 0; f < flips; ++f) {
          bytes[rng.Uniform(bytes.size())] ^=
              static_cast<char>(1u << rng.Uniform(8));
        }
        break;
      }
      case 1:  // truncate at a random offset
        bytes.resize(rng.Uniform(bytes.size()));
        break;
      case 2: {  // duplicate a random tail
        const size_t from = rng.Uniform(bytes.size());
        bytes += bytes.substr(from);
        break;
      }
      case 3:  // append garbage
        for (size_t g = 0, n = 1 + rng.Uniform(64); g < n; ++g) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      default: {  // duplicate the whole segment under a higher sequence
        char name[32];
        std::snprintf(name, sizeof(name), "wal-%08llu.walseg",
                      static_cast<unsigned long long>(9000 + m));
        WriteFile(dir / name, bytes);
        break;
      }
    }
    WriteFile(victim, bytes);
  }

  // Recovery must survive anything the mutations produced.
  auto reopened = Wal::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  uint64_t prev_lsn = 0;
  for (const Record& r : reopened.value().replay) {
    EXPECT_GT(r.lsn, prev_lsn) << "replay must stay LSN-monotonic";
    prev_lsn = r.lsn;
    if (r.type == RecordType::kInsert || r.type == RecordType::kReplace) {
      // Payloads that survived their CRC must decode as OSON.
      auto node = oson::Decode(r.oson);
      EXPECT_TRUE(node.ok()) << node.status().message();
    }
  }
  // The repaired log accepts appends and reopens identically (the repair
  // is physical, not just an in-memory view).
  Wal* w = reopened.value().wal.get();
  if (!w->failed()) {
    auto lsn = w->AppendDelete(0, 0);
    EXPECT_TRUE(lsn.ok()) << lsn.status().message();
    EXPECT_TRUE(w->Flush().ok());
    const size_t replayed = reopened.value().replay.size();
    reopened.value().wal.reset();
    auto again = Wal::Open(options);
    ASSERT_TRUE(again.ok()) << again.status().message();
    EXPECT_EQ(again.value().replay.size(), replayed + 1);
  }
}

TEST(WalFuzzTest, SeededCorruptionNeverCrashesRecovery) {
  const fs::path dir = fs::path(::testing::TempDir()) / "fsdm_wal_fuzz";
  uint64_t base = 1;
  if (const char* env = std::getenv("FSDM_CHAOS_SEED")) {
    base = std::strtoull(env, nullptr, 10) * 1000;
  }
  for (uint64_t seed = base; seed < base + 30; ++seed) {
    FuzzIteration(seed, dir);
    if (::testing::Test::HasFatalFailure()) break;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace fsdm::wal
