// Unit tests for the ISSUE 7 sampling stack: activity records + leases,
// the ASH sampler ring, window aggregation, and the workload repository.
// Everything here drives SampleOnce() directly (never the background
// thread) so the assertions stay deterministic.

#include "telemetry/activity.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"
#include "telemetry/workload_repo.h"

namespace fsdm::telemetry {
namespace {

/// Finds the calling thread's own sample in a registry sweep.
ActivitySample OwnSample() {
  ActivityRecord* rec = ActivityRegistry::Global().ForThisThread();
  return rec->Snap();
}

TEST(WaitStateTest, NamesAndClassesCoverEveryState) {
  // The taxonomy scripts/ash_report.py and DESIGN.md document; renaming a
  // state is a cross-layer change and should fail loudly here.
  EXPECT_STREQ(WaitStateName(WaitState::kIdle), "idle");
  EXPECT_STREQ(WaitStateName(WaitState::kOnCpu), "on-cpu");
  EXPECT_STREQ(WaitStateName(WaitState::kPoolQueueWait), "pool-queue-wait");
  EXPECT_STREQ(WaitStateName(WaitState::kLockWait), "lock-wait");
  EXPECT_STREQ(WaitStateName(WaitState::kFaultStall), "fault-stall");
  EXPECT_STREQ(WaitStateName(WaitState::kWalFsync), "wal-fsync");

  EXPECT_STREQ(WaitClassName(WaitState::kIdle), "idle");
  EXPECT_STREQ(WaitClassName(WaitState::kOnCpu), "cpu");
  EXPECT_STREQ(WaitClassName(WaitState::kPoolQueueWait), "scheduler");
  EXPECT_STREQ(WaitClassName(WaitState::kLockWait), "concurrency");
  EXPECT_STREQ(WaitClassName(WaitState::kFaultStall), "fault");
  EXPECT_STREQ(WaitClassName(WaitState::kWalFsync), "io");
}

TEST(ActivityLeaseTest, BeginPublishesAndReleaseRestores) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  ASSERT_FALSE(OwnSample().active) << "a previous test leaked a lease";

  // Pin the monotonic clock's lazy epoch and let it advance past zero, so
  // the lease's begin_ts_us is provably nonzero even when this test is the
  // process's first clock user.
  while (MonotonicNowUs() == 0) {
  }

  {
    ActivityLease lease = ActivityLease::Begin(
        "ORDERS", "indexed-value-scan", "RoutedQueryProbe",
        "SELECT * FROM ORDERS", /*shard=*/2, /*worker=*/1);
    ActivitySample s = OwnSample();
    EXPECT_TRUE(s.active);
    EXPECT_EQ(s.state, WaitState::kOnCpu);
    EXPECT_EQ(s.collection, "ORDERS");
    EXPECT_EQ(s.access_path, "indexed-value-scan");
    EXPECT_EQ(s.op, "RoutedQueryProbe");
    EXPECT_EQ(s.query, "SELECT * FROM ORDERS");
    EXPECT_EQ(s.shard, 2);
    EXPECT_EQ(s.worker, 1);
    EXPECT_GT(s.begin_ts_us, 0u);

    // Release is idempotent: double-release must not double-restore.
    lease.Release();
    lease.Release();
    EXPECT_FALSE(OwnSample().active);
  }
  ActivitySample after = OwnSample();
  EXPECT_FALSE(after.active);
  EXPECT_EQ(after.state, WaitState::kIdle);
  EXPECT_TRUE(after.collection.empty());
}

TEST(ActivityLeaseTest, NestedLeasesRestoreTheOuterIdentity) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  ActivityLease outer =
      ActivityLease::Begin("", "", "worker.task", "", -1, /*worker=*/3);
  {
    // The morsel's scope stacks over the bare worker lease, exactly as
    // ActivityScopeOp does on a pool worker.
    ActivityLease inner = ActivityLease::Begin(
        "SHARDED", "imc-filter-scan", "morsel.drain", "q", /*shard=*/1, 3);
    ActivitySample s = OwnSample();
    EXPECT_EQ(s.collection, "SHARDED");
    EXPECT_EQ(s.shard, 1);
  }
  // Unwinding the inner lease re-publishes the worker identity.
  ActivitySample s = OwnSample();
  EXPECT_TRUE(s.active);
  EXPECT_EQ(s.op, "worker.task");
  EXPECT_EQ(s.worker, 3);
  EXPECT_EQ(s.shard, -1);
  EXPECT_TRUE(s.collection.empty());
  outer.Release();
  EXPECT_FALSE(OwnSample().active);
}

TEST(ActivityLeaseTest, MoveTransfersOwnershipWithoutDoubleRestore) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  ActivityLease a = ActivityLease::Begin("MV", "", "op", "");
  ActivityLease b = std::move(a);
  a.Release();  // moved-from: must be a no-op
  EXPECT_TRUE(OwnSample().active);
  b.Release();
  EXPECT_FALSE(OwnSample().active);
}

TEST(ActivityLeaseTest, ScopedWaitStateFlipsAndRestores) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  ActivityLease lease = ActivityLease::Begin("WS", "", "op", "");
  EXPECT_EQ(OwnSample().state, WaitState::kOnCpu);
  {
    ScopedWaitState wait(WaitState::kLockWait);
    EXPECT_EQ(OwnSample().state, WaitState::kLockWait);
    {
      ScopedWaitState nested(WaitState::kFaultStall);
      EXPECT_EQ(OwnSample().state, WaitState::kFaultStall);
    }
    EXPECT_EQ(OwnSample().state, WaitState::kLockWait);
  }
  EXPECT_EQ(OwnSample().state, WaitState::kOnCpu);
}

TEST(ActivityRegistryTest, ActiveCountTracksLeases) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  const size_t base = ActivityRegistry::Global().ActiveCount();
  ActivityLease lease = ActivityLease::Begin("AC", "", "op", "");
  EXPECT_EQ(ActivityRegistry::Global().ActiveCount(), base + 1);
  lease.Release();
  EXPECT_EQ(ActivityRegistry::Global().ActiveCount(), base);
  EXPECT_GE(ActivityRegistry::Global().record_count(), 1u);
}

// --- AggregateAsh -----------------------------------------------------------

AshSample MakeSample(uint64_t ts, std::string coll, WaitState state,
                     std::string query = "", int shard = -1) {
  AshSample s;
  s.ts_us = ts;
  s.collection = std::move(coll);
  s.state = state;
  s.query = std::move(query);
  s.shard = shard;
  return s;
}

TEST(AggregateAshTest, WindowBoundsAreExclusiveInclusive) {
  std::vector<AshSample> samples;
  samples.push_back(MakeSample(100, "A", WaitState::kOnCpu));
  samples.push_back(MakeSample(200, "A", WaitState::kOnCpu));
  samples.push_back(MakeSample(300, "A", WaitState::kOnCpu));

  // (since, until]: ts=100 excluded (== since), ts=300 included (== until).
  AshAggregate agg = AggregateAsh(samples, 100, 300);
  EXPECT_EQ(agg.db_samples, 2u);
  // until=0 means unbounded above.
  EXPECT_EQ(AggregateAsh(samples, 0, 0).db_samples, 3u);
  EXPECT_EQ(AggregateAsh(samples, 300, 0).db_samples, 0u);
}

TEST(AggregateAshTest, FoldsByCollectionStateQueryAndShard) {
  std::vector<AshSample> samples;
  samples.push_back(MakeSample(1, "A", WaitState::kOnCpu, "q1", 0));
  samples.push_back(MakeSample(2, "A", WaitState::kOnCpu, "q1", 0));
  samples.push_back(MakeSample(3, "A", WaitState::kPoolQueueWait, "q1", 1));
  samples.push_back(MakeSample(4, "B", WaitState::kFaultStall, "q2"));
  samples.push_back(MakeSample(5, "", WaitState::kOnCpu));  // anonymous work

  AshAggregate agg = AggregateAsh(samples, 0, 0);
  EXPECT_EQ(agg.db_samples, 5u);
  ASSERT_EQ(agg.by_collection.count("A"), 1u);
  EXPECT_EQ(agg.by_collection["A"][static_cast<size_t>(WaitState::kOnCpu)],
            2u);
  EXPECT_EQ(
      agg.by_collection["A"][static_cast<size_t>(WaitState::kPoolQueueWait)],
      1u);
  EXPECT_EQ(
      agg.by_collection["B"][static_cast<size_t>(WaitState::kFaultStall)], 1u);
  // Empty collection folds under the "(none)" bucket, not an empty key.
  EXPECT_EQ(agg.by_collection.count(""), 0u);
  EXPECT_EQ(agg.by_collection.count("(none)"), 1u);

  EXPECT_EQ(agg.by_state[static_cast<size_t>(WaitState::kOnCpu)], 3u);
  EXPECT_EQ(agg.by_query["q1"], 3u);
  EXPECT_EQ(agg.by_query["q2"], 1u);
  // Shard -1 (unsharded) never lands in by_shard.
  EXPECT_EQ(agg.by_shard.size(), 2u);
  EXPECT_EQ(agg.by_shard[0], 2u);
  EXPECT_EQ(agg.by_shard[1], 1u);
}

TEST(AggregateAshTest, TopQueriesAndShardSkew) {
  std::vector<AshSample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back(MakeSample(i + 1, "A", WaitState::kOnCpu, "hot", 0));
  }
  samples.push_back(MakeSample(10, "A", WaitState::kOnCpu, "cold", 1));
  AshAggregate agg = AggregateAsh(samples, 0, 0);

  auto top = TopAshQueries(agg, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, "hot");
  EXPECT_EQ(top[0].second, 5u);

  // Shards saw 5 and 1 samples: mean 3, max 5 -> skew 5/3.
  EXPECT_NEAR(AshShardSkew(agg), 5.0 / 3.0, 1e-9);
  EXPECT_EQ(AshShardSkew(AshAggregate{}), 0.0);
}

TEST(AggregateAshTest, AggregateJsonCarriesTheTimeModel) {
  std::vector<AshSample> samples;
  samples.push_back(MakeSample(1, "A", WaitState::kOnCpu, "q", 0));
  samples.push_back(MakeSample(2, "A", WaitState::kLockWait, "q", 0));
  std::string json = AshAggregateJson(AggregateAsh(samples, 0, 0));
  EXPECT_NE(json.find("\"db_samples\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"wait_classes\":{\"cpu\":1,\"concurrency\":1}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"collection\":\"A\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"lock-wait\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pct\":50"), std::string::npos) << json;
  EXPECT_NE(json.find("\"top_queries\":[{\"query\":\"q\",\"samples\":2}]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shard_samples\":{\"0\":2}"), std::string::npos)
      << json;
}

// --- ActivitySampler --------------------------------------------------------

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
    ActivitySampler::Global().Stop();
    ActivitySampler::Global().ClearRing();
  }
  void TearDown() override {
    if (kEnabled) {
      ActivitySampler::Global().Stop();
      ActivitySampler::Global().SetRingCapacity(8192);
      ActivitySampler::Global().ClearRing();
    }
  }
};

TEST_F(SamplerTest, SampleOnceRetainsOnlyActiveRecords) {
  ActivitySampler& sampler = ActivitySampler::Global();
  const uint64_t ticks_before = sampler.ticks();

  // Nothing active on this thread: our record contributes no sample.
  (void)sampler.SampleOnce();
  for (const AshSample& s : sampler.Snapshot()) {
    EXPECT_NE(s.collection, "SAMP") << "stale sample leaked into the ring";
  }

  ActivityLease lease =
      ActivityLease::Begin("SAMP", "full-scan", "probe", "SELECT 1");
  size_t retained = sampler.SampleOnce();
  EXPECT_GE(retained, 1u);
  bool found = false;
  for (const AshSample& s : sampler.Snapshot()) {
    if (s.collection != "SAMP") continue;
    found = true;
    EXPECT_EQ(s.state, WaitState::kOnCpu);
    EXPECT_EQ(s.access_path, "full-scan");
    EXPECT_EQ(s.query, "SELECT 1");
    EXPECT_GT(s.ts_us, 0u);
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(sampler.ticks(), ticks_before + 2);
  EXPECT_GE(sampler.db_samples_total(), 1u);
}

TEST_F(SamplerTest, RingWrapsAtCapacityOldestFirst) {
  ActivitySampler& sampler = ActivitySampler::Global();
  sampler.SetRingCapacity(4);
  ActivityLease lease = ActivityLease::Begin("WRAP", "", "op", "");
  for (int i = 0; i < 10; ++i) (void)sampler.SampleOnce();

  std::vector<AshSample> snap = sampler.Snapshot();
  ASSERT_EQ(snap.size(), 4u);  // capped, oldest 6 dropped
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_GE(snap[i].ts_us, snap[i - 1].ts_us) << "ring not oldest-first";
  }
  // Shrinking below the live size also drops the oldest.
  sampler.SetRingCapacity(2);
  EXPECT_LE(sampler.Snapshot().size(), 2u);
}

TEST_F(SamplerTest, AggregateCoversTheWholeRing) {
  ActivitySampler& sampler = ActivitySampler::Global();
  ActivityLease lease = ActivityLease::Begin("AGGR", "", "op", "q");
  (void)sampler.SampleOnce();
  (void)sampler.SampleOnce();
  AshAggregate agg = sampler.Aggregate();
  EXPECT_GE(agg.db_samples, 2u);
  EXPECT_GE(agg.by_collection["AGGR"][static_cast<size_t>(WaitState::kOnCpu)],
            2u);
}

TEST_F(SamplerTest, StartStopRunsTheBackgroundThread) {
  ActivitySampler& sampler = ActivitySampler::Global();
  ASSERT_TRUE(sampler.Start());
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start()) << "double Start must refuse";
  EXPECT_GT(sampler.hz(), 0.0);
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent
}

// --- WorkloadRepository -----------------------------------------------------

class WorkloadRepoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
    ActivitySampler::Global().Stop();
    ActivitySampler::Global().ClearRing();
    WorkloadRepository::Global().Clear();
  }
  void TearDown() override {
    if (kEnabled) {
      ActivitySampler::Global().ClearRing();
      WorkloadRepository::Global().Clear();
      WorkloadRepository::Global().SetCapacity(128);
    }
  }
};

TEST_F(WorkloadRepoTest, SnapshotsWindowTheAshStream) {
  WorkloadRepository& repo = WorkloadRepository::Global();
  ActivitySampler& sampler = ActivitySampler::Global();

  // Phase one: three on-cpu samples against AWR_A.
  {
    ActivityLease lease = ActivityLease::Begin("AWR_A", "", "op", "qa");
    for (int i = 0; i < 3; ++i) (void)sampler.SampleOnce();
  }
  const uint64_t id1 = repo.TakeSnapshot("phase-one");

  // Phase two: two lock-wait samples against AWR_B.
  {
    ActivityLease lease = ActivityLease::Begin("AWR_B", "", "op", "qb");
    ScopedWaitState wait(WaitState::kLockWait);
    for (int i = 0; i < 2; ++i) (void)sampler.SampleOnce();
  }
  const uint64_t id2 = repo.TakeSnapshot("phase-two");

  EXPECT_EQ(id2, id1 + 1);
  ASSERT_EQ(repo.size(), 2u);
  std::vector<WorkloadSnapshot> snaps = repo.Snapshots();
  ASSERT_EQ(snaps.size(), 2u);

  // Each snapshot's window covers only its own phase, not the lifetime.
  EXPECT_EQ(snaps[0].label, "phase-one");
  EXPECT_EQ(snaps[0].ash.db_samples, 3u);
  EXPECT_EQ(snaps[0].ash.by_query.count("qb"), 0u);
  EXPECT_EQ(snaps[1].label, "phase-two");
  EXPECT_EQ(snaps[1].ash.db_samples, 2u);
  EXPECT_EQ(
      snaps[1].ash.by_state[static_cast<size_t>(WaitState::kLockWait)], 2u);
  EXPECT_EQ(snaps[1].ash.by_query.count("qa"), 0u);
  ASSERT_FALSE(snaps[1].TopQueries(1).empty());
  EXPECT_EQ(snaps[1].TopQueries(1)[0].first, "qb");
  EXPECT_GT(snaps[1].ts_us, snaps[0].ts_us);
}

TEST_F(WorkloadRepoTest, SnapshotJsonCarriesAshCountersAndHistograms) {
  MetricsRegistry::Global().GetCounter("fsdm_awr_test_total")->Add(9);
  Histogram* h = MetricsRegistry::Global().GetHistogram("fsdm_awr_test_us");
  h->Reset();
  h->Observe(10);
  h->Observe(30);
  {
    ActivityLease lease = ActivityLease::Begin("AWR_J", "", "op", "qj");
    (void)ActivitySampler::Global().SampleOnce();
  }
  (void)WorkloadRepository::Global().TakeSnapshot("json");

  std::vector<WorkloadSnapshot> snaps = WorkloadRepository::Global().Snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  std::string json = WorkloadRepository::SnapshotJson(snaps[0]);
  EXPECT_NE(json.find("\"label\":\"json\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ash\":{\"db_samples\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"collection\":\"AWR_J\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"fsdm_awr_test_total\":9"), std::string::npos) << json;
  // Histogram (count, sum) pairs: mean deltas derivable from snapshots.
  EXPECT_NE(json.find("\"fsdm_awr_test_us\":{\"count\":2,\"sum\":40"),
            std::string::npos)
      << json;
  // The repository dump wraps them all.
  std::string all = WorkloadRepository::Global().ToJson();
  EXPECT_EQ(all.find("{\"snapshots\":["), 0u) << all;
}

TEST_F(WorkloadRepoTest, CapacityBoundsTheRetainedSnapshots) {
  WorkloadRepository& repo = WorkloadRepository::Global();
  repo.SetCapacity(3);
  for (int i = 0; i < 5; ++i) {
    (void)repo.TakeSnapshot("snap-" + std::to_string(i));
  }
  std::vector<WorkloadSnapshot> snaps = repo.Snapshots();
  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps.front().label, "snap-2");  // the two oldest fell off
  EXPECT_EQ(snaps.back().label, "snap-4");
}

}  // namespace
}  // namespace fsdm::telemetry
