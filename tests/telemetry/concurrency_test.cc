// Thread-safety smoke test for the telemetry handoff the worker pool
// relies on (ISSUE 6). The assertions are mild on purpose — the real
// verdict comes from running this under -DFSDM_SANITIZE=thread in CI,
// where any counter/gauge/histogram/ring race is a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "rdbms/parallel.h"
#include "telemetry/activity.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/sampler.h"
#include "telemetry/telemetry.h"
#include "telemetry/workload_repo.h"

namespace fsdm::telemetry {
namespace {

TEST(TelemetryConcurrencyTest, MetricsHammeredFromWorkerPool) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  MetricsRegistry& reg = MetricsRegistry::Global();
  rdbms::WorkerPool& pool = rdbms::WorkerPool::Global();
  pool.Resize(4);

  Counter* counter = reg.GetCounter("fsdm_test_concurrency_total");
  Gauge* gauge = reg.GetGauge("fsdm_test_concurrency_gauge");
  Histogram* hist = reg.GetHistogram("fsdm_test_concurrency_us");
  counter->Reset();
  gauge->Reset();
  hist->Reset();

  constexpr int kTasks = 64;
  constexpr int kOpsPerTask = 200;
  std::atomic<int> done{0};
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&, t] {
      for (int i = 0; i < kOpsPerTask; ++i) {
        counter->Add(1);
        gauge->Add(1.0);
        hist->Observe(static_cast<double>(i % 50));
        // First-use registration from a worker thread takes the registry
        // map lock concurrently with other workers.
        reg.GetCounter("fsdm_test_concurrency_lazy_" +
                       std::to_string((t + i) % 8))
            ->Add(1);
      }
      done.fetch_add(1);
    });
  }
  // Resize drains the queue before relaunching — a barrier.
  pool.Resize(4);
  ASSERT_EQ(done.load(), kTasks);

  EXPECT_EQ(counter->value(), uint64_t{kTasks} * kOpsPerTask);
  EXPECT_DOUBLE_EQ(gauge->value(), double{kTasks} * kOpsPerTask);
  EXPECT_EQ(hist->count(), uint64_t{kTasks} * kOpsPerTask);
  uint64_t lazy_total = 0;
  for (int b = 0; b < 8; ++b) {
    lazy_total +=
        reg.CounterValue("fsdm_test_concurrency_lazy_" + std::to_string(b));
  }
  EXPECT_EQ(lazy_total, uint64_t{kTasks} * kOpsPerTask);
}

TEST(TelemetryConcurrencyTest, FlightRecorderRingsAcrossWorkers) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Reset();
  // An earlier test in this binary may have shrunk the ring capacity to
  // exercise wrap-around; restore the default before the pool relaunch
  // creates fresh worker rings.
  rec.SetRingCapacity(16384);
  rec.Arm();
  rdbms::WorkerPool& pool = rdbms::WorkerPool::Global();
  pool.Resize(4);

  constexpr int kTasks = 32;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < 50; ++i) {
        FSDM_TRACE_SPAN(span, "test", "concurrency.span");
        span.AddNumberArg("i", i);
        FSDM_TRACE_INSTANT("test", "concurrency.instant");
      }
    });
  }
  // Snapshot WHILE workers are still pushing: the per-ring mutex must
  // make the cross-thread merge safe mid-drain.
  (void)rec.Snapshot();
  (void)rec.ChromeTraceJson();
  pool.Resize(4);  // barrier: all tasks finished
  rec.Disarm();

  std::vector<TraceEvent> events = rec.Snapshot();
  size_t span_ends = 0;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "concurrency.span" &&
        e.phase == TracePhase::kSpanEnd) {
      ++span_ends;
    }
  }
  // Every span completed (rings are big enough not to wrap here).
  EXPECT_EQ(span_ends, size_t{kTasks} * 50);
  EXPECT_EQ(rec.TotalDropped(), 0u);
}

TEST(TelemetryConcurrencyTest, SamplerReadsRaceLeaseChurnSafely) {
  if (!kEnabled) GTEST_SKIP() << "built with -DFSDM_TELEMETRY=OFF";
  // ISSUE 7 satellite: the ASH sampler reads every activity record while
  // pool workers churn leases and flip wait states. The ring, the record
  // identity strings and the relaxed state bytes must all survive TSan.
  ActivitySampler& sampler = ActivitySampler::Global();
  sampler.Stop();
  sampler.ClearRing();
  rdbms::WorkerPool& pool = rdbms::WorkerPool::Global();
  pool.Resize(4);

  std::atomic<bool> stop{false};
  std::thread hammer([&] {
    while (!stop.load()) {
      (void)sampler.SampleOnce();
      (void)sampler.Snapshot();
      (void)sampler.Aggregate();
      (void)ActivityRegistry::Global().Samples();
    }
  });

  constexpr int kTasks = 48;
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([t] {
      for (int i = 0; i < 100; ++i) {
        ActivityLease lease = ActivityLease::Begin(
            "CONC_" + std::to_string(t % 4), "path", "op",
            "q" + std::to_string(i % 8), /*shard=*/t % 4,
            rdbms::WorkerPool::CurrentWorkerIndex());
        ScopedWaitState wait(i % 2 == 0 ? WaitState::kLockWait
                                        : WaitState::kFaultStall);
      }
    });
  }
  // Snapshots taken mid-churn exercise the repo's sampler-then-metrics
  // lock ordering against concurrent first-use registrations.
  (void)WorkloadRepository::Global().TakeSnapshot("conc-mid");
  pool.Resize(4);  // barrier: every task drained
  stop = true;
  hammer.join();
  (void)WorkloadRepository::Global().TakeSnapshot("conc-end");

  // No task leaked a lease: nothing is active once the pool is quiet.
  EXPECT_EQ(ActivityRegistry::Global().ActiveCount(), 0u);
  sampler.ClearRing();
  WorkloadRepository::Global().Clear();
}

}  // namespace
}  // namespace fsdm::telemetry
