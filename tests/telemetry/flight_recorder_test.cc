#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "json/parser.h"
#include "telemetry/slow_query.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_event.h"

namespace fsdm::telemetry {
namespace {

TraceEvent Instant(uint64_t ts, const char* name) {
  TraceEvent e;
  e.ts_us = ts;
  e.tid = 1;
  e.phase = TracePhase::kInstant;
  e.category = "test";
  e.name = name;
  return e;
}

// --- ThreadRing wrap-around -------------------------------------------------

TEST(ThreadRingTest, WrapDropsOldestNeverTorn) {
  ThreadRing ring(1, 8);
  const char* names[20];
  std::vector<std::string> storage;
  storage.reserve(20);
  for (int i = 0; i < 20; ++i) storage.push_back("e" + std::to_string(i));
  for (int i = 0; i < 20; ++i) names[i] = storage[i].c_str();

  for (int i = 0; i < 20; ++i) ring.Push(Instant(100 + i, names[i]));

  EXPECT_EQ(ring.total_pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<TraceEvent> live = ring.Snapshot();
  ASSERT_EQ(live.size(), 8u);
  // Oldest first, and exactly the last 8 pushed — never a half-overwritten
  // slot: each surviving event's ts and name agree.
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i].ts_us, 100u + 12 + i);
    EXPECT_STREQ(live[i].name, names[12 + i]);
  }
}

TEST(ThreadRingTest, BelowCapacityKeepsEverything) {
  ThreadRing ring(2, 8);
  for (int i = 0; i < 5; ++i) ring.Push(Instant(10 + i, "x"));
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.Snapshot().size(), 5u);
  ring.Clear();
  EXPECT_EQ(ring.Snapshot().size(), 0u);
}

// --- Scoped spans through the armed recorder --------------------------------

class ArmedRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    FlightRecorder::Global().Reset();
    FlightRecorder::Global().Arm();
  }
  void TearDown() override {
    if (kEnabled) {
      FlightRecorder::Global().Disarm();
      FlightRecorder::Global().Reset();
    }
  }
};

TEST_F(ArmedRecorderTest, SpanEmitsBalancedBeginEndWithArgs) {
  {
    FSDM_TRACE_SPAN(span, "test", "outer");
    span.AddNumberArg("bytes", 42);
    span.AddTextArg("mode", "unit-test");
    FSDM_TRACE_INSTANT("test", "tick");
  }
  std::vector<TraceEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, TracePhase::kSpanBegin);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[1].phase, TracePhase::kInstant);
  EXPECT_EQ(events[2].phase, TracePhase::kSpanEnd);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_GE(events[2].ts_us, events[0].ts_us);
  ASSERT_TRUE(events[2].has_args());
  EXPECT_STREQ(events[2].args[0].key, "bytes");
  EXPECT_EQ(events[2].args[0].number, 42.0);
  EXPECT_STREQ(events[2].args[1].text, "unit-test");
}

TEST_F(ArmedRecorderTest, DisarmedMacrosEmitNothing) {
  FlightRecorder::Global().Disarm();
  {
    FSDM_TRACE_SPAN(span, "test", "ghost");
    FSDM_TRACE_INSTANT("test", "ghost.tick");
    FSDM_TRACE_COUNTER("test", "ghost.counter", 7);
  }
  EXPECT_TRUE(FlightRecorder::Global().Snapshot().empty());
}

TEST_F(ArmedRecorderTest, TextArgsTruncateAtInlineCapacity) {
  const std::string long_text(100, 'z');
  {
    FSDM_TRACE_SPAN(span, "test", "trunc");
    span.AddTextArg("t", long_text);
  }
  std::vector<TraceEvent> events = FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_TRUE(events[1].has_args());
  EXPECT_EQ(std::string(events[1].args[0].text),
            std::string(TraceArg::kMaxText, 'z'));
}

// --- Chrome trace JSON round-trip -------------------------------------------

// Walks a parsed {"traceEvents": [...]} document checking per-thread B/E
// balance and non-negative durations, and that it holds `want_events`.
void CheckChromeDoc(const json::JsonNode& doc, size_t want_events) {
  const json::JsonNode* events = doc.GetField("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->array_size(), want_events);
  std::map<int64_t, int> depth;
  for (size_t i = 0; i < events->array_size(); ++i) {
    const json::JsonNode* e = events->element(i);
    ASSERT_TRUE(e->is_object()) << "event " << i;
    const json::JsonNode* ph = e->GetField("ph");
    const json::JsonNode* tid = e->GetField("tid");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(tid, nullptr);
    ASSERT_NE(e->GetField("ts"), nullptr);
    ASSERT_NE(e->GetField("cat"), nullptr);
    ASSERT_NE(e->GetField("name"), nullptr);
    const std::string phase = ph->scalar().AsString();
    const int64_t t = tid->scalar().AsInt64();
    if (phase == "B") {
      ++depth[t];
    } else if (phase == "E") {
      --depth[t];
      EXPECT_GE(depth[t], 0) << "unbalanced E at event " << i;
      const json::JsonNode* args = e->GetField("args");
      if (args != nullptr && args->GetField("dur_us") != nullptr) {
        EXPECT_GE(args->GetField("dur_us")->scalar().NumericAsDouble(), 0.0);
      }
    }
  }
  for (const auto& [t, d] : depth) {
    EXPECT_EQ(d, 0) << "thread " << t << " left " << d << " spans open";
  }
}

TEST_F(ArmedRecorderTest, ChromeTraceRoundTripsThroughJsonParser) {
  {
    FSDM_TRACE_SPAN(outer, "test", "outer");
    outer.AddNumberArg("n", 1);
    {
      FSDM_TRACE_SPAN(inner, "test", "inner");
      FSDM_TRACE_INSTANT_TEXT("test", "mark", "why", "nested");
    }
    FSDM_TRACE_COUNTER("test", "gauge", 3.5);
  }
  const std::string text = FlightRecorder::Global().ChromeTraceJson();
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  CheckChromeDoc(*parsed.value(), 6);
}

TEST_F(ArmedRecorderTest, ChromeTraceRepairsUnclosedAndOrphanSpans) {
  ThreadRing* ring = FlightRecorder::Global().RingForThisThread();
  // An orphan end (its begin was overwritten by wrap-around) followed by
  // two begins that never close (snapshot taken mid-span).
  FlightRecorder::Emit(ring, TracePhase::kSpanEnd, "test", "orphan", 5);
  FlightRecorder::Emit(ring, TracePhase::kSpanBegin, "test", "open-a");
  FlightRecorder::Emit(ring, TracePhase::kSpanBegin, "test", "open-b");

  const std::string text = FlightRecorder::Global().ChromeTraceJson();
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  // Orphan E dropped; both unclosed B's got synthetic E's: 2 B + 2 E.
  CheckChromeDoc(*parsed.value(), 4);
}

// --- Metrics snapshot history -----------------------------------------------

TEST(SnapshotHistoryTest, TickCapturesDeltasAndRates) {
  if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
  SnapshotHistory hist(4);
  MetricsRegistry& reg = MetricsRegistry::Global();

  FSDM_COUNT("fr_test_ops_total", 10);
  hist.Tick(reg);
  FSDM_COUNT("fr_test_ops_total", 25);
  hist.Tick(reg);

  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist.CounterDelta("fr_test_ops_total"), 25u);
  EXPECT_EQ(hist.CounterDelta("fr_test_never_seen_total"), 0u);
  EXPECT_GE(hist.CounterRatePerSec("fr_test_ops_total"), 0.0);
  EXPECT_GE(hist.Newest(0).ts_us, hist.Newest(1).ts_us);
}

TEST(SnapshotHistoryTest, RingEvictsOldestAndOutOfRangeIsEmpty) {
  if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
  SnapshotHistory hist(2);
  MetricsRegistry& reg = MetricsRegistry::Global();
  hist.Tick(reg);
  hist.Tick(reg);
  hist.Tick(reg);
  EXPECT_EQ(hist.size(), 2u);  // capacity held, oldest evicted
  // back beyond the ring returns the static empty snapshot.
  EXPECT_EQ(hist.Newest(5).ts_us, 0u);
  EXPECT_TRUE(hist.Newest(5).counters.empty());
  hist.Clear();
  EXPECT_EQ(hist.size(), 0u);
}

// --- Slow-query log ---------------------------------------------------------

SlowQueryRecord MakeRecord(uint64_t ts, const std::string& q) {
  SlowQueryRecord rec;
  rec.ts_us = ts;
  rec.query = q;
  rec.access_path = "full-scan";
  rec.elapsed_us = 12345;
  rec.rows = 7;
  rec.trace_text = "EXPLAIN ANALYZE\n  Scan (T)";
  rec.events_json = "[]";
  return rec;
}

TEST(SlowQueryLogTest, CapacityEvictsOldestButTotalKeepsCounting) {
  SlowQueryLog& log = SlowQueryLog::Global();
  log.Clear();
  log.SetCapacity(3);
  const uint64_t base_total = log.total_captured();

  for (int i = 0; i < 5; ++i) {
    log.Record(MakeRecord(1000 + i, "q" + std::to_string(i)));
  }
  std::vector<SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].query, "q2");  // q0, q1 evicted
  EXPECT_EQ(snap[2].query, "q4");
  EXPECT_EQ(log.total_captured(), base_total + 5);

  log.Clear();
  log.SetCapacity(32);
}

TEST(SlowQueryLogTest, JsonLineParsesAsJson) {
  SlowQueryRecord rec = MakeRecord(99, "SELECT \"x\" FROM t");
  const std::string line = rec.ToJsonLine();
  auto parsed = json::Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  const json::JsonNode* q = parsed.value()->GetField("query");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->scalar().AsString(), "SELECT \"x\" FROM t");
  ASSERT_NE(parsed.value()->GetField("elapsed_us"), nullptr);
  EXPECT_EQ(
      parsed.value()->GetField("elapsed_us")->scalar().NumericAsDouble(),
      12345.0);
}

}  // namespace
}  // namespace fsdm::telemetry
