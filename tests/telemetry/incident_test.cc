#include "telemetry/incident.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/log.h"
#include "telemetry/telemetry.h"

namespace fsdm::telemetry {
namespace {

namespace fs = std::filesystem;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class IncidentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    dir_ = ::testing::TempDir() + "fsdm_incidents_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    IncidentManager& mgr = IncidentManager::Global();
    mgr.Reset();
    mgr.SetDirectory(dir_);
    mgr.SetRetention(32);
    mgr.SetRingCapacity(64);
    mgr.SetFloodIntervalUs(0);
    mgr.SetDedupWindowUs(0);
    mgr.SetLogSlice(256);
    EngineLog::Global().Reset();
    EngineLog::Global().SetLevel(LogLevel::kDebug);
  }

  void TearDown() override {
    if (!kEnabled) return;
    IncidentManager& mgr = IncidentManager::Global();
    mgr.Reset();
    mgr.SetDirectory("");
    mgr.SetFloodIntervalUs(100 * 1000);
    mgr.SetDedupWindowUs(5 * 1000 * 1000);
    EngineLog::Global().Reset();
    EngineLog::Global().SetLevel(LogLevelFromEnv());
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(IncidentTest, RaiseCapturesRingEntryAndBundleOnDisk) {
  FSDM_LOG(LogLevel::kError, "test", 9101, "the failure being captured",
           LogNum("errno", 5));
  const uint64_t id = IncidentManager::Global().Raise(
      "unit-test", "orders", "something broke");
  ASSERT_NE(id, 0u);
  std::vector<Incident> ring = IncidentManager::Global().Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].id, id);
  EXPECT_EQ(ring[0].type, "unit-test");
  EXPECT_EQ(ring[0].subject, "orders");
  EXPECT_EQ(ring[0].reason, "something broke");
  EXPECT_GT(ring[0].log_records, 0u);
  ASSERT_FALSE(ring[0].bundle_path.empty());
  ASSERT_TRUE(fs::exists(ring[0].bundle_path));

  // The bundle is self-contained: all five pillar sections present, the
  // header naming the incident, and the pre-raise log record inside the
  // log slice.
  const std::string json = ReadFile(ring[0].bundle_path);
  EXPECT_NE(json.find("\"incident\""), std::string::npos);
  EXPECT_NE(json.find("\"log\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"ash\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_state\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"something broke\""), std::string::npos);
  EXPECT_NE(json.find("the failure being captured"), std::string::npos);
}

TEST_F(IncidentTest, DedupWindowSuppressesIdenticalIncidents) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetDedupWindowUs(60 * 1000 * 1000);
  EXPECT_NE(mgr.Raise("dup-type", "subj", "first"), 0u);
  EXPECT_EQ(mgr.Raise("dup-type", "subj", "again"), 0u);
  // A different subject is a different incident.
  EXPECT_NE(mgr.Raise("dup-type", "other-subj", "first"), 0u);
  EXPECT_EQ(mgr.Snapshot().size(), 2u);
  EXPECT_EQ(mgr.total_raised(), 2u);
  EXPECT_EQ(mgr.total_suppressed(), 1u);
}

TEST_F(IncidentTest, FloodIntervalThrottlesPerType) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetFloodIntervalUs(60 * 1000 * 1000);
  EXPECT_NE(mgr.Raise("flood-type", "a", "r"), 0u);
  // Same type, different subject — dedup does not apply, flood does.
  EXPECT_EQ(mgr.Raise("flood-type", "b", "r"), 0u);
  // A different type has its own clock.
  EXPECT_NE(mgr.Raise("other-type", "a", "r"), 0u);
  EXPECT_EQ(mgr.total_suppressed(), 1u);
}

TEST_F(IncidentTest, RetentionBoundsOnDiskBundles) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetRetention(2);
  ASSERT_NE(mgr.Raise("t1", "s", "r"), 0u);
  ASSERT_NE(mgr.Raise("t2", "s", "r"), 0u);
  ASSERT_NE(mgr.Raise("t3", "s", "r"), 0u);
  size_t files = 0;
  std::string newest;
  for (const auto& e : fs::directory_iterator(dir_)) {
    ++files;
    if (e.path().filename().string() > newest) {
      newest = e.path().filename().string();
    }
  }
  EXPECT_EQ(files, 2u);
  // The newest bundle survived; the oldest was unlinked.
  EXPECT_NE(newest.find("t3"), std::string::npos);
}

TEST_F(IncidentTest, RingCapacityEvictsOldest) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetRingCapacity(2);
  mgr.SetDirectory("");  // ring-only; disk is covered elsewhere
  ASSERT_NE(mgr.Raise("r1", "s", "r"), 0u);
  ASSERT_NE(mgr.Raise("r2", "s", "r"), 0u);
  ASSERT_NE(mgr.Raise("r3", "s", "r"), 0u);
  std::vector<Incident> ring = mgr.Snapshot();
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].type, "r2");
  EXPECT_EQ(ring[1].type, "r3");
}

TEST_F(IncidentTest, DisabledDirectorySkipsDiskCapture) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetDirectory("");
  const uint64_t id = mgr.Raise("no-disk", "s", "r");
  ASSERT_NE(id, 0u);
  std::vector<Incident> ring = mgr.Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring[0].bundle_path.empty());
}

TEST_F(IncidentTest, StateProvidersRenderUnderEngineState) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.RegisterStateProvider("unit_state",
                            [] { return std::string("{\"answer\":42}"); });
  const uint64_t id = mgr.Raise("provider-test", "s", "r");
  ASSERT_NE(id, 0u);
  std::vector<Incident> ring = mgr.Snapshot();
  ASSERT_EQ(ring.size(), 1u);
  const std::string json = ReadFile(ring[0].bundle_path);
  const size_t engine_state = json.find("\"engine_state\"");
  const size_t provider = json.find("\"unit_state\":{\"answer\":42}");
  ASSERT_NE(engine_state, std::string::npos);
  ASSERT_NE(provider, std::string::npos);
  EXPECT_GT(provider, engine_state);
}

TEST_F(IncidentTest, RaiseEmitsItsOwnLogRecord) {
  EngineLog::Global().Reset();
  ASSERT_NE(IncidentManager::Global().Raise("logged", "s", "why"), 0u);
  bool found = false;
  for (const LogRecord& r : EngineLog::Global().Snapshot()) {
    if (r.event_id == 3301) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(IncidentTest, SuppressionCountsIntoMetrics) {
  IncidentManager& mgr = IncidentManager::Global();
  mgr.SetDedupWindowUs(60 * 1000 * 1000);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t raised_before =
      registry.GetCounter("fsdm_incidents_total")->value();
  const uint64_t suppressed_before =
      registry.GetCounter("fsdm_incidents_suppressed_total")->value();
  mgr.Raise("metrics-type", "s", "r");
  mgr.Raise("metrics-type", "s", "r");
  EXPECT_EQ(registry.GetCounter("fsdm_incidents_total")->value(),
            raised_before + 1);
  EXPECT_EQ(registry.GetCounter("fsdm_incidents_suppressed_total")->value(),
            suppressed_before + 1);
}

}  // namespace
}  // namespace fsdm::telemetry
