#include "telemetry/memory_tracker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/query_monitor.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "telemetry/trace_event.h"

/// Unit tests for the ISSUE 9 resource-accounting subsystem: the
/// MemoryTracker's two charging models (pull reporters / push charges) and
/// the QueryMonitor's register-snapshot-unregister lifecycle.

namespace fsdm::telemetry {
namespace {

class MemoryTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    MemoryTracker::Global().ResetCharges();
    MemoryTracker::Global().ResetPeaks();
  }
  void TearDown() override {
    if (kEnabled) {
      MemoryTracker::Global().ResetCharges();
      MemoryTracker::Global().ResetPeaks();
    }
  }
};

TEST_F(MemoryTrackerTest, SubsystemNamesAreStable) {
  // These strings are the `subsystem` gauge label, the TELEMETRY$MEMORY
  // SUBSYSTEM column and the BENCH_*.json "memory" keys — renaming one is
  // a breaking change to every consumer.
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kTableHeap), "table-heap");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kOsonVc), "oson-vc");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kIndexPostings),
               "index-postings");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kDataGuide), "dataguide");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kImc), "imc");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kPathStats), "path-stats");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kWalBuffers), "wal-buffers");
  EXPECT_STREQ(MemSubsystemName(MemSubsystem::kPlanWorkingSet),
               "plan-working-set");
}

TEST_F(MemoryTrackerTest, OwnedStringBytesUsesSizeNotCapacity) {
  std::string s = "hello";
  const uint64_t before = OwnedStringBytes(s);
  s.reserve(4096);  // capacity grows, accounted size must not
  EXPECT_EQ(OwnedStringBytes(s), before);
  EXPECT_EQ(before, sizeof(std::string) + 5);
}

TEST_F(MemoryTrackerTest, ReporterRefreshRatchetsPeaksAndUnregisters) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t reporters_before = t.reporter_count();
  uint64_t bytes = 1000;
  {
    MemoryScope scope(MemSubsystem::kTableHeap, "MT_TEST",
                      [&bytes]() { return bytes; });
    ASSERT_TRUE(scope.engaged());
    EXPECT_EQ(t.reporter_count(), reporters_before + 1);

    t.Refresh();
    EXPECT_GE(t.SubsystemBytes(MemSubsystem::kTableHeap), 1000u);

    auto find = [&t]() -> MemoryTracker::Entry {
      for (const MemoryTracker::Entry& e : t.Entries()) {
        if (e.collection == "MT_TEST") return e;
      }
      return {};
    };
    MemoryTracker::Entry e = find();
    EXPECT_EQ(e.bytes, 1000u);
    EXPECT_EQ(e.peak_bytes, 1000u);

    // Shrinking keeps the entry peak; growing ratchets it.
    bytes = 400;
    t.Refresh();
    e = find();
    EXPECT_EQ(e.bytes, 400u);
    EXPECT_EQ(e.peak_bytes, 1000u);
    bytes = 2500;
    t.Refresh();
    e = find();
    EXPECT_EQ(e.peak_bytes, 2500u);
  }
  EXPECT_EQ(t.reporter_count(), reporters_before);
  t.Refresh();
  for (const MemoryTracker::Entry& e : t.Entries()) {
    EXPECT_NE(e.collection, "MT_TEST");
  }
}

TEST_F(MemoryTrackerTest, ChargesRatchetPeakWithoutRefresh) {
  MemoryTracker& t = MemoryTracker::Global();
  const uint64_t base = t.CurrentBytes();
  {
    MemoryCharge charge(MemSubsystem::kPlanWorkingSet, 5000);
    EXPECT_EQ(charge.bytes(), 5000u);
    EXPECT_EQ(t.CurrentBytes(), base + 5000);
    // The peak must be visible immediately — a drain's working set is gone
    // before anyone calls Refresh().
    EXPECT_GE(t.PeakBytes(), base + 5000);
    charge.Add(2000);
    EXPECT_EQ(t.CurrentBytes(), base + 7000);
  }
  EXPECT_EQ(t.CurrentBytes(), base);
  // Released charges keep their high-water mark in Entries().
  bool found = false;
  for (const MemoryTracker::Entry& e : t.Entries()) {
    if (e.subsystem == MemSubsystem::kPlanWorkingSet && e.collection == "-") {
      found = true;
      EXPECT_EQ(e.bytes, 0u);
      EXPECT_GE(e.peak_bytes, 7000u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MemoryTrackerTest, SubsystemPeakIsSimultaneousNotSumOfEntryPeaks) {
  MemoryTracker& t = MemoryTracker::Global();
  t.Refresh();
  // Whatever other kImc reporters are alive in this process contribute a
  // stable baseline to the subsystem total.
  const uint64_t others = t.SubsystemBytes(MemSubsystem::kImc);
  // Two reporters whose individual peaks (3000 and 2000) are reached at
  // different times, never summing past 4000 at any single Refresh. The
  // per-subsystem high-water must track the largest simultaneous total,
  // not the 5000 a sum of per-entry peaks would claim.
  uint64_t a = 3000;
  uint64_t b = 1000;
  MemoryScope sa(MemSubsystem::kImc, "MT_PEAK_A", [&a]() { return a; });
  MemoryScope sb(MemSubsystem::kImc, "MT_PEAK_B", [&b]() { return b; });
  t.Refresh();  // a=3000, b=1000 -> 4000
  a = 1000;
  b = 2000;
  t.Refresh();  // a=1000, b=2000 -> 3000
  uint64_t entry_peak_sum = 0;
  for (const MemoryTracker::Entry& e : t.Entries()) {
    if (e.collection == "MT_PEAK_A" || e.collection == "MT_PEAK_B") {
      entry_peak_sum += e.peak_bytes;
    }
  }
  EXPECT_EQ(entry_peak_sum, 5000u);
  EXPECT_EQ(t.SubsystemPeakBytes(MemSubsystem::kImc), others + 4000);
}

TEST_F(MemoryTrackerTest, ChargesRatchetSubsystemPeakWithoutRefresh) {
  MemoryTracker& t = MemoryTracker::Global();
  const uint64_t base = t.SubsystemPeakBytes(MemSubsystem::kPlanWorkingSet);
  {
    MemoryCharge charge(MemSubsystem::kPlanWorkingSet, 6000);
    EXPECT_GE(t.SubsystemPeakBytes(MemSubsystem::kPlanWorkingSet),
              base + 6000);
  }
  // Released, but the subsystem high-water survives until ResetPeaks().
  EXPECT_GE(t.SubsystemPeakBytes(MemSubsystem::kPlanWorkingSet), base + 6000);
  t.ResetPeaks();
  EXPECT_EQ(t.SubsystemPeakBytes(MemSubsystem::kPlanWorkingSet), 0u);
}

TEST_F(MemoryTrackerTest, CurrentBytesCombinesReportersAndLiveCharges) {
  MemoryTracker& t = MemoryTracker::Global();
  MemoryScope scope(MemSubsystem::kImc, "MT_MIX", []() { return 300u; });
  t.Refresh();
  const uint64_t with_reporter = t.CurrentBytes();
  MemoryCharge charge(MemSubsystem::kOsonVc, 77);
  EXPECT_EQ(t.CurrentBytes(), with_reporter + 77);
  EXPECT_GE(t.SubsystemBytes(MemSubsystem::kOsonVc), 77u);
  charge.Reset();
  EXPECT_EQ(t.CurrentBytes(), with_reporter);
}

TEST_F(MemoryTrackerTest, MemoryScopeMoveTransfersOwnership) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t before = t.reporter_count();
  MemoryScope a(MemSubsystem::kWalBuffers, "MT_MOVE", []() { return 1u; });
  MemoryScope b(std::move(a));
  EXPECT_FALSE(a.engaged());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.engaged());
  EXPECT_EQ(t.reporter_count(), before + 1);
  b.Reset();
  EXPECT_EQ(t.reporter_count(), before);
}

TEST_F(MemoryTrackerTest, MemoryChargeMoveReleasesExactlyOnce) {
  MemoryTracker& t = MemoryTracker::Global();
  const uint64_t base = t.SubsystemBytes(MemSubsystem::kPlanWorkingSet);
  {
    MemoryCharge a(MemSubsystem::kPlanWorkingSet, 100);
    {
      MemoryCharge b(std::move(a));
      EXPECT_EQ(t.SubsystemBytes(MemSubsystem::kPlanWorkingSet), base + 100);
    }
    // b released the 100; the moved-from a must not release again.
    EXPECT_EQ(t.SubsystemBytes(MemSubsystem::kPlanWorkingSet), base);
  }
  EXPECT_EQ(t.SubsystemBytes(MemSubsystem::kPlanWorkingSet), base);
}

class QueryMonitorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
  }
};

TEST_F(QueryMonitorTest, AllocateQueryIdIsMonotonicAndNonzero) {
  QueryMonitor& m = QueryMonitor::Global();
  const uint64_t a = m.AllocateQueryId();
  const uint64_t b = m.AllocateQueryId();
  EXPECT_NE(a, 0u);
  EXPECT_GT(b, a);
}

TEST_F(QueryMonitorTest, OperatorLiveStateNames) {
  EXPECT_STREQ(OperatorLiveStateName(OperatorSpan::kPending), "pending");
  EXPECT_STREQ(OperatorLiveStateName(OperatorSpan::kOpen), "open");
  EXPECT_STREQ(OperatorLiveStateName(OperatorSpan::kDone), "done");
  EXPECT_STREQ(OperatorLiveStateName(99), "?");
}

TEST_F(QueryMonitorTest, SnapshotDeepCopiesSpanTreePreOrder) {
  QueryMonitor& m = QueryMonitor::Global();
  const size_t in_flight_before = m.InFlightCount();

  // Root(Filter) -> [Scan -> [Fetch], Probe]: the flattened snapshot must
  // be pre-order with correct depths.
  std::unique_ptr<OperatorSpan> root = MakeSpan("Filter", "$.a > 1");
  root->children.push_back(MakeSpan("Scan", "full"));
  root->children[0]->children.push_back(MakeSpan("Fetch"));
  root->children.push_back(MakeSpan("Probe"));
  root->rows_out.store(42, std::memory_order_relaxed);
  root->live_state.store(OperatorSpan::kOpen, std::memory_order_relaxed);
  root->live_open_ts_us.store(MonotonicNowUs(), std::memory_order_relaxed);
  root->children[0]->live_state.store(OperatorSpan::kDone,
                                      std::memory_order_relaxed);
  root->children[0]->live_elapsed_us.store(123, std::memory_order_relaxed);
  root->children[0]->rows_out.store(50, std::memory_order_relaxed);
  root->children[0]->shard = 2;

  const uint64_t id = m.AllocateQueryId();
  m.Register(id, "QM_TEST", "find a > 1", "indexed-value-scan",
             /*est_rows=*/40, root.get());
  EXPECT_EQ(m.InFlightCount(), in_flight_before + 1);

  std::vector<MonitoredQuery> snap = m.Snapshot();
  const MonitoredQuery* q = nullptr;
  for (const MonitoredQuery& cand : snap) {
    if (cand.query_id == id) q = &cand;
  }
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->collection, "QM_TEST");
  EXPECT_EQ(q->query, "find a > 1");
  EXPECT_EQ(q->access_path, "indexed-value-scan");
  EXPECT_DOUBLE_EQ(q->est_rows, 40.0);
  EXPECT_EQ(q->rows_out, 42u);

  ASSERT_EQ(q->operators.size(), 4u);
  EXPECT_EQ(q->operators[0].name, "Filter");
  EXPECT_EQ(q->operators[0].depth, 0);
  EXPECT_EQ(q->operators[0].state, OperatorSpan::kOpen);
  EXPECT_EQ(q->operators[0].rows_out, 42u);
  EXPECT_EQ(q->operators[1].name, "Scan");
  EXPECT_EQ(q->operators[1].depth, 1);
  EXPECT_EQ(q->operators[1].state, OperatorSpan::kDone);
  EXPECT_EQ(q->operators[1].elapsed_us, 123u);
  EXPECT_EQ(q->operators[1].shard, 2);
  EXPECT_EQ(q->operators[2].name, "Fetch");
  EXPECT_EQ(q->operators[2].depth, 2);
  EXPECT_EQ(q->operators[2].state, OperatorSpan::kPending);
  EXPECT_EQ(q->operators[3].name, "Probe");
  EXPECT_EQ(q->operators[3].depth, 1);

  // Progress written after the snapshot must not be visible in it: the
  // copy is deep.
  root->rows_out.store(1000, std::memory_order_relaxed);
  EXPECT_EQ(q->operators[0].rows_out, 42u);

  m.Unregister(id);
  EXPECT_EQ(m.InFlightCount(), in_flight_before);
  for (const MonitoredQuery& cand : m.Snapshot()) {
    EXPECT_NE(cand.query_id, id);
  }
}

TEST_F(QueryMonitorTest, ReRegisteringAnIdReplacesTheStaleEntry) {
  QueryMonitor& m = QueryMonitor::Global();
  const uint64_t id = m.AllocateQueryId();
  m.Register(id, "QM_TWICE", "first", "full-scan", -1, nullptr);
  m.Register(id, "QM_TWICE", "second", "full-scan", -1, nullptr);
  int seen = 0;
  for (const MonitoredQuery& q : m.Snapshot()) {
    if (q.query_id != id) continue;
    ++seen;
    EXPECT_EQ(q.query, "second");
  }
  EXPECT_EQ(seen, 1);
  m.Unregister(id);
}

}  // namespace
}  // namespace fsdm::telemetry
