#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace fsdm::telemetry {
namespace {

// --- Histogram percentile math (exact-value pins) ---------------------------

TEST(HistogramTest, PercentilesExactWithUnitBuckets) {
  // Bounds 1..100 with one observation per bucket: every percentile is
  // exactly its rank after linear interpolation.
  std::vector<double> bounds;
  for (int i = 1; i <= 100; ++i) bounds.push_back(i);
  Histogram h(bounds);
  for (int i = 1; i <= 100; ++i) h.Observe(i);

  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
}

TEST(HistogramTest, PercentileClampsToObservedRange) {
  // One observation: whatever the bucket interpolation says, the result
  // must be the single observed value.
  Histogram h({1, 10, 100});
  h.Observe(7);
  EXPECT_DOUBLE_EQ(h.Percentile(1), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 7.0);
}

TEST(HistogramTest, OverflowBucketReportsMax) {
  Histogram h({10});
  h.Observe(5);
  h.Observe(1000);  // past the last bound -> +Inf bucket
  EXPECT_EQ(h.bucket_counts().size(), 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, SingleObservationAllPercentilesReportIt) {
  Histogram h({10, 100});
  h.Observe(42);
  // With one sample every percentile must land on it — the interpolation
  // is clamped to [min, max] so it can't drift below the observed value.
  for (double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 42.0) << "p" << p;
  }
}

TEST(HistogramTest, AllObservationsInOverflowBucketReportMax) {
  Histogram h({10});
  h.Observe(500);
  h.Observe(1000);
  h.Observe(2000);
  EXPECT_EQ(h.bucket_counts()[1], 3u);
  // The overflow bucket has no upper bound to interpolate toward; every
  // mid percentile reports the observed max rather than a fabricated
  // bound-derived value.
  EXPECT_DOUBLE_EQ(h.Percentile(10), 2000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 2000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 2000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 500.0);  // p<=0 still reports min
}

TEST(HistogramTest, EmptyAndBoundaryPercentiles) {
  Histogram h({1, 2, 3});
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // empty
  h.Observe(1);
  h.Observe(3);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);    // p<=0 -> min
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3.0);  // p>=100 -> max
}

TEST(HistogramTest, ResetZeroesWithoutInvalidating) {
  Histogram h({1, 10});
  h.Observe(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  h.Observe(2);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 2.0);
}

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndResettable) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("test_registry_counter_total");
  EXPECT_EQ(c, reg.GetCounter("test_registry_counter_total"));
  c->Add(3);
  EXPECT_EQ(reg.CounterValue("test_registry_counter_total"), 3u);
  reg.Reset();
  EXPECT_EQ(reg.CounterValue("test_registry_counter_total"), 0u);
  c->Add(1);  // the old handle still works after Reset
  EXPECT_EQ(reg.CounterValue("test_registry_counter_total"), 1u);
}

TEST(MetricsRegistryTest, ExposuresContainRegisteredMetrics) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("test_exposure_counter_total")->Add(7);
  reg.GetGauge("test_exposure_gauge")->Set(2.5);
  reg.GetHistogram("test_exposure_us")->Observe(42);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test_exposure_counter_total\":7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"test_exposure_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test_exposure_us\""), std::string::npos);

  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_exposure_counter_total counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_exposure_counter_total 7"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.95\""), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramExposuresCarrySumAndDerivableMean) {
  // Mean latency must be derivable from every exposure surface: the JSON
  // dump carries sum and a precomputed mean, the Prometheus text carries
  // the classic _sum/_count pair, and MetricsSnapshot carries (count, sum)
  // so snapshot deltas yield per-window means.
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* h = reg.GetHistogram("test_mean_pin_us");
  h->Reset();
  h->Observe(10);
  h->Observe(20);
  h->Observe(60);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"test_mean_pin_us\":{\"count\":3,\"sum\":90,"
                      "\"mean\":30"),
            std::string::npos)
      << json;

  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("test_mean_pin_us_sum 90"), std::string::npos) << prom;
  EXPECT_NE(prom.find("test_mean_pin_us_count 3"), std::string::npos) << prom;

  MetricsSnapshot snap = TakeMetricsSnapshot(reg);
  auto it = snap.histograms.find("test_mean_pin_us");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_EQ(it->second.count, 3u);
  EXPECT_DOUBLE_EQ(it->second.sum, 90.0);

  // Empty histogram: mean reports 0, not NaN.
  h->Reset();
  json = reg.ToJson();
  EXPECT_NE(json.find("\"test_mean_pin_us\":{\"count\":0,\"sum\":0,"
                      "\"mean\":0"),
            std::string::npos)
      << json;
}

TEST(MetricsRegistryTest, MacrosFeedTheGlobalRegistry) {
  if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t before = reg.CounterValue("test_macro_counter_total");
  FSDM_COUNT("test_macro_counter_total", 2);
  FSDM_COUNT("test_macro_counter_total", 3);
  EXPECT_EQ(reg.CounterValue("test_macro_counter_total"), before + 5);

  const Histogram* h = reg.FindHistogram("test_macro_scope_us");
  const uint64_t h_before = h == nullptr ? 0 : h->count();
  { FSDM_TIME_SCOPE_US("test_macro_scope_us"); }
  h = reg.FindHistogram("test_macro_scope_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), h_before + 1);
}

// --- Trace rendering --------------------------------------------------------

TEST(TraceTest, RouterDecisionRenderListsCandidates) {
  RouterDecision d;
  d.winner = "indexed-value-scan";
  d.reason = "equality on scalar path $.tag";
  d.candidates.resize(2);
  d.candidates[0].access_path = "imc-filter-scan";
  d.candidates[0].detail = "no valid IMC store";
  d.candidates[1].access_path = "indexed-value-scan";
  d.candidates[1].eligible = true;
  d.candidates[1].chosen = true;
  d.candidates[1].detail = "DataGuide frequency 5/50 on $.tag";

  std::string text = d.Render();
  EXPECT_NE(text.find("access path: indexed-value-scan"), std::string::npos)
      << text;
  EXPECT_NE(text.find("equality on scalar path $.tag"), std::string::npos);
  EXPECT_NE(text.find("[ ] imc-filter-scan"), std::string::npos);
  EXPECT_NE(text.find("[x] indexed-value-scan"), std::string::npos);
  EXPECT_NE(text.find("no valid IMC store"), std::string::npos);
}

TEST(TraceTest, SpanTreeRowsInSumsChildren) {
  std::unique_ptr<OperatorSpan> leaf = MakeSpan("Scan", "T");
  leaf->rows_out = 40;
  std::unique_ptr<OperatorSpan> root = MakeSpan("Filter", "$.x = 1");
  root->rows_out = 4;
  root->children.push_back(std::move(leaf));
  EXPECT_EQ(root->RowsIn(), 40u);
  EXPECT_EQ(root->children[0]->RowsIn(), 0u);

  QueryTrace trace;
  trace.decision.winner = "full-scan";
  trace.decision.reason = "no predicates; full scan";
  trace.root = std::move(root);
  std::string text = trace.Render();
  EXPECT_NE(text.find("EXPLAIN ANALYZE"), std::string::npos) << text;
  EXPECT_NE(text.find("rows_in=40"), std::string::npos);
  EXPECT_NE(text.find("rows_out=4"), std::string::npos);
  EXPECT_NE(text.find("  Scan (T)"), std::string::npos);  // indented child
}

}  // namespace
}  // namespace fsdm::telemetry
