#include "telemetry/log.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/telemetry.h"

namespace fsdm::telemetry {
namespace {

class EngineLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kEnabled) GTEST_SKIP() << "built with FSDM_TELEMETRY=OFF";
    EngineLog& log = EngineLog::Global();
    log.Reset();
    log.SetLevel(LogLevel::kDebug);
    log.SetRateLimit(64, 32);
    log.SetJsonlSink("");
  }

  void TearDown() override {
    if (!kEnabled) return;
    EngineLog& log = EngineLog::Global();
    log.Reset();
    log.SetLevel(LogLevelFromEnv());
    log.SetRateLimit(64, 32);
    log.SetJsonlSink("");
  }
};

TEST_F(EngineLogTest, EmitLandsInSnapshotWithArgs) {
  FSDM_LOG(LogLevel::kWarn, "test", 9001, "something happened",
           LogNum("count", 3), LogText("name", "orders"));
  std::vector<LogRecord> records = EngineLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  EXPECT_EQ(r.level, LogLevel::kWarn);
  EXPECT_STREQ(r.component, "test");
  EXPECT_EQ(r.event_id, 9001);
  EXPECT_STREQ(r.message, "something happened");
  ASSERT_TRUE(r.has_args());
  EXPECT_NE(r.ArgsJson().find("\"count\":3"), std::string::npos);
  EXPECT_NE(r.ArgsJson().find("\"name\":\"orders\""), std::string::npos);
  EXPECT_GT(r.ts_us, 0u);
  EXPECT_GT(r.tid, 0u);
}

TEST_F(EngineLogTest, LevelGateSuppressesBelowThreshold) {
  EngineLog& log = EngineLog::Global();
  log.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(log.ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(log.ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(log.ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(log.ShouldLog(LogLevel::kError));
  FSDM_LOG(LogLevel::kInfo, "test", 9002, "suppressed");
  FSDM_LOG(LogLevel::kError, "test", 9003, "admitted");
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].event_id, 9003);
  // kOff suppresses everything, including error.
  log.SetLevel(LogLevel::kOff);
  EXPECT_FALSE(log.ShouldLog(LogLevel::kError));
}

TEST_F(EngineLogTest, MessageOnlyEvaluatedWhenAdmitted) {
  EngineLog::Global().SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("built");
  };
  FSDM_LOG(LogLevel::kDebug, "test", 9004, expensive());
  EXPECT_EQ(evaluations, 0);
  FSDM_LOG(LogLevel::kError, "test", 9005, expensive());
  EXPECT_EQ(evaluations, 1);
}

TEST_F(EngineLogTest, RingWrapKeepsNewestAndCountsDropped) {
  EngineLog& log = EngineLog::Global();
  // New capacity applies to rings created afterwards — emit from a fresh
  // thread so its ring is built small.
  log.SetRingCapacity(4);
  std::thread emitter([] {
    for (int i = 0; i < 10; ++i) {
      FSDM_LOG(LogLevel::kInfo, "test", 9006,
               "record " + std::to_string(i), LogNum("i", i));
    }
  });
  emitter.join();
  log.SetRingCapacity(4096);
  std::vector<LogRecord> records = log.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest first; the six earliest were overwritten.
  EXPECT_STREQ(records.front().message, "record 6");
  EXPECT_STREQ(records.back().message, "record 9");
  EXPECT_EQ(log.total_records(), 10u);
  EXPECT_EQ(log.TotalDropped(), 6u);
}

TEST_F(EngineLogTest, SnapshotLastTruncatesFromTheFront) {
  for (int i = 0; i < 5; ++i) {
    FSDM_LOG(LogLevel::kInfo, "test", 9007, "r" + std::to_string(i));
  }
  std::vector<LogRecord> last = EngineLog::Global().SnapshotLast(2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_STREQ(last[0].message, "r3");
  EXPECT_STREQ(last[1].message, "r4");
  EXPECT_EQ(EngineLog::Global().SnapshotLast(100).size(), 5u);
}

TEST_F(EngineLogTest, PerEventRateLimitDropsTheFlood) {
  EngineLog& log = EngineLog::Global();
  log.SetRateLimit(3, 0);  // 3 tokens, no refill
  for (int i = 0; i < 10; ++i) {
    FSDM_LOG(LogLevel::kWarn, "test", 9008, "flooding");
  }
  // A different event id has its own bucket.
  FSDM_LOG(LogLevel::kWarn, "test", 9009, "unrelated");
  std::vector<LogRecord> records = log.Snapshot();
  size_t flood = 0, other = 0;
  for (const LogRecord& r : records) {
    if (r.event_id == 9008) ++flood;
    if (r.event_id == 9009) ++other;
  }
  EXPECT_EQ(flood, 3u);
  EXPECT_EQ(other, 1u);
  EXPECT_EQ(log.rate_limited(), 7u);
  EXPECT_EQ(log.TotalDropped(), 7u);
}

TEST_F(EngineLogTest, LongMessageTruncatesAtFixedWidth) {
  std::string longmsg(500, 'x');
  FSDM_LOG(LogLevel::kInfo, "test", 9010, longmsg);
  std::vector<LogRecord> records = EngineLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::string(records[0].message).size(), LogRecord::kMaxMessage);
}

TEST_F(EngineLogTest, JsonlSinkAppendsOneObjectPerLine) {
  const std::string path = ::testing::TempDir() + "fsdm_log_sink_test.jsonl";
  std::remove(path.c_str());
  EngineLog& log = EngineLog::Global();
  log.SetJsonlSink(path);
  FSDM_LOG(LogLevel::kError, "test", 9011, "sink me", LogNum("n", 7));
  FSDM_LOG(LogLevel::kInfo, "test", 9012, "me too");
  log.SetJsonlSink("");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"level\":\"error\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"event_id\":9011"), std::string::npos);
  EXPECT_NE(lines[0].find("\"message\":\"sink me\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"n\":7"), std::string::npos);
  EXPECT_NE(lines[1].find("\"event_id\":9012"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(EngineLogTest, SnapshotMergesThreadsInTimestampOrder) {
  FSDM_LOG(LogLevel::kInfo, "test", 9013, "main before");
  std::thread other([] {
    FSDM_LOG(LogLevel::kInfo, "test", 9014, "worker");
  });
  other.join();
  FSDM_LOG(LogLevel::kInfo, "test", 9015, "main after");
  std::vector<LogRecord> records = EngineLog::Global().Snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].ts_us, records[i - 1].ts_us);
  }
  // Two distinct tids took part.
  EXPECT_NE(records[0].tid == records[1].tid && records[1].tid == records[2].tid,
            true);
}

TEST_F(EngineLogTest, LevelNamesAndEnvParsing) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
  EXPECT_STREQ(LogLevelName(LogLevel::kOff), "off");
  ::setenv("FSDM_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(LogLevelFromEnv(), LogLevel::kDebug);
  ::setenv("FSDM_LOG_LEVEL", "error", 1);
  EXPECT_EQ(LogLevelFromEnv(), LogLevel::kError);
  ::setenv("FSDM_LOG_LEVEL", "off", 1);
  EXPECT_EQ(LogLevelFromEnv(), LogLevel::kOff);
  ::setenv("FSDM_LOG_LEVEL", "bogus", 1);
  EXPECT_EQ(LogLevelFromEnv(LogLevel::kWarn), LogLevel::kWarn);
  ::unsetenv("FSDM_LOG_LEVEL");
  EXPECT_EQ(LogLevelFromEnv(), LogLevel::kInfo);
}

TEST_F(EngineLogTest, CountersTrackEmits) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t before =
      registry.GetCounter("fsdm_log_records_total")->value();
  FSDM_LOG(LogLevel::kInfo, "test", 9016, "counted");
  EXPECT_EQ(registry.GetCounter("fsdm_log_records_total")->value(),
            before + 1);
}

}  // namespace
}  // namespace fsdm::telemetry
